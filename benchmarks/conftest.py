"""Shared benchmark fixtures.

``REPRO_BENCH_SCALE`` selects the run size:

* ``smoke``   — small corpus, one grid cell, tiny training budgets,
* ``default`` — full-size benchmark (500 products/set); the experiment
  grid covers the paper's Figure-4/5/6 slices (5 of the 9 (cc, dev)
  cells) with one seed,
* ``full``    — all 9 cells, three seeds, larger budgets (the paper's
  protocol; takes hours).

The heavy artifacts (benchmark build, trained-system result grids) are
session-scoped so every bench file shares them.  ``wdc_benchmark`` is the
benchmark *artifact*; the name ``benchmark`` stays reserved for
pytest-benchmark's timing fixture.
"""

from __future__ import annotations

import os

import pytest

from repro.core import BenchmarkBuilder, BuildConfig
from repro.eval import EvalSettings, ExperimentRunner
from repro.eval.experiments import run_table3_and_4, run_table5


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower()


@pytest.fixture(scope="session")
def build_config() -> BuildConfig:
    if bench_scale() == "smoke":
        return BuildConfig.small()
    return BuildConfig()


@pytest.fixture(scope="session")
def artifacts(build_config):
    """The complete benchmark build (Figure-2 pipeline)."""
    print(f"\n[bench] building the benchmark (scale={bench_scale()}) ...", flush=True)
    return BenchmarkBuilder(build_config).build()


@pytest.fixture(scope="session")
def wdc_benchmark(artifacts):
    return artifacts.benchmark


@pytest.fixture(scope="session")
def eval_settings() -> EvalSettings:
    return EvalSettings.from_env()


@pytest.fixture(scope="session")
def runner(artifacts, eval_settings):
    return ExperimentRunner(artifacts, settings=eval_settings)


@pytest.fixture(scope="session")
def pairwise_results(runner):
    """Trained/evaluated pair-wise grid shared by Tables 3-4, Figures 4-6."""
    print(
        f"\n[bench] training pair-wise systems (scale={bench_scale()}) ...",
        flush=True,
    )
    return run_table3_and_4(runner, progress=True)


@pytest.fixture(scope="session")
def multiclass_results(runner):
    """Trained/evaluated multi-class grid shared by Table 5."""
    print(
        f"\n[bench] training multi-class systems (scale={bench_scale()}) ...",
        flush=True,
    )
    return run_table5(runner, progress=True)
