"""Figure 1 — example hard/easy matches and non-matches.

Samples the most extreme pairs from the 80%-corner-case test set: the most
dissimilar positive (hard match), most similar positive (easy match), most
similar negative (hard non-match) and most dissimilar negative (easy
non-match), mirroring the figure's four quadrants.
"""

from repro.core.dimensions import CornerCaseRatio, UnseenRatio
from repro.similarity import jaccard_similarity


def _extreme_pairs(dataset):
    scored = [
        (jaccard_similarity(pair.offer_a.title, pair.offer_b.title), pair)
        for pair in dataset.pairs
    ]
    positives = sorted(
        (item for item in scored if item[1].label == 1), key=lambda x: x[0]
    )
    negatives = sorted(
        (item for item in scored if item[1].label == 0), key=lambda x: x[0]
    )
    return {
        "hard match (dissimilar offers, same product)": positives[0],
        "easy match (similar offers, same product)": positives[-1],
        "hard non-match (similar offers, different products)": negatives[-1],
        "easy non-match (dissimilar offers, different products)": negatives[0],
    }


def test_figure1_example_pairs(benchmark, wdc_benchmark):
    dataset = wdc_benchmark.test_sets[(CornerCaseRatio.CC80, UnseenRatio.SEEN)]
    quadrants = benchmark.pedantic(
        _extreme_pairs, args=(dataset,), rounds=1, iterations=1
    )

    print("\n=== Figure 1: example matching and non-matching offer pairs ===")
    for caption, (similarity, pair) in quadrants.items():
        print(f"\n[{caption}]  (title Jaccard = {similarity:.2f})")
        print(f"  offer A: {pair.offer_a.title}")
        print(f"           brand={pair.offer_a.brand}  price={pair.offer_a.price}")
        print(f"  offer B: {pair.offer_b.title}")
        print(f"           brand={pair.offer_b.brand}  price={pair.offer_b.price}")

    hard_match = quadrants["hard match (dissimilar offers, same product)"][0]
    easy_match = quadrants["easy match (similar offers, same product)"][0]
    hard_nonmatch = quadrants["hard non-match (similar offers, different products)"][0]
    assert hard_match < easy_match
    assert hard_nonmatch > 0.3  # corner negatives are textually similar
