"""Section 4 label-quality study — noise estimate and Cohen's kappa.

Paper: 600 sampled test pairs, noise estimated at 4.00% / 4.17% by two
annotators, inter-annotator kappa 0.91.
"""

from repro.core import LabelQualityStudy


def test_label_quality_study(benchmark, wdc_benchmark):
    study = LabelQualityStudy(annotator_error=0.02, seed=1234)
    result = benchmark.pedantic(
        study.run, args=(wdc_benchmark,), rounds=1, iterations=1
    )

    print("\n=== Section 4: label-quality study ===")
    print(f"sampled pairs:          {result.n_pairs}")
    print(f"noise est. annotator 1: {result.noise_estimate_annotator_one:.2%} (paper: 4.00%)")
    print(f"noise est. annotator 2: {result.noise_estimate_annotator_two:.2%} (paper: 4.17%)")
    print(f"true injected noise:    {result.true_noise_rate:.2%}")
    print(f"Cohen's kappa:          {result.kappa:.2f} (paper: 0.91)")

    assert result.n_pairs >= 100
    assert 0.0 <= result.true_noise_rate < 0.15
    assert result.kappa > 0.6
