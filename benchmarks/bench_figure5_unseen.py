"""Figure 5 — F1 versus fraction of unseen products (50% cc, medium dev).

Paper shape: all systems drop from seen to unseen; the contrastive
R-SupCon — best on seen — suffers the largest drop.
"""

from repro.core.dimensions import CornerCaseRatio, DevSetSize
from repro.eval.reporting import figure_series, format_figure


def test_figure5_unseen_dimension(benchmark, pairwise_results):
    series = benchmark.pedantic(
        lambda: figure_series(
            pairwise_results,
            vary="unseen",
            corner_cases=CornerCaseRatio.CC50,
            dev_size=DevSetSize.MEDIUM,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(series, title="=== Figure 5: F1 vs unseen fraction "
                                      "(cc=50%, medium dev) ==="))

    drops = {}
    for system, points in series.items():
        values = dict(points)
        if "Seen" in values and "Unseen" in values:
            drops[system] = values["Seen"] - values["Unseen"]
            assert values["Unseen"] <= values["Seen"] + 0.08, system
    if drops:
        print("\nF1 drop seen -> unseen:")
        for system, drop in sorted(drops.items(), key=lambda kv: -kv[1]):
            print(f"  {system:10s} {drop * 100:+.1f} points")
