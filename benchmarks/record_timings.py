"""Record build-stage, sharding and matcher timings into a JSON baseline.

Runs the Figure-2 pipeline at smoke scale (``BuildConfig.small``) with the
blocking stage enabled, records every named build stage (including the
``cleansing:*`` sub-stages and the corpus-level ``blocking`` join), the
blocking recall of one split against its materialized pair sets, then
times the symbolic matchers' fit/predict — with featurization broken out —
on one benchmark cell.  With ``--shards N`` a sharded recording rides
along (the ``sharding`` section): an N-shard
:class:`ShardedBenchmarkSession` over the same small base config builds
its shards in worker processes, runs the signature-pruned cross-shard
sweep, and records the ``shard:*`` / ``sweep:*`` stage rows (schema 5
adds ``sweep:signatures`` / ``sweep:prune`` / ``sweep:rescore``), the
session's :class:`~repro.shard.SweepPruneStats` with per-pair pruning
ratios, the sharded-vs-single build wall-clock, and the *merged* blocking
recall that ``check_regression.py`` gates with the same floors as the
single-corpus join.

Schema 5 also reorders the phases: every process-pool section runs
*before* the parent materializes the small single build, the runner and
the matcher featurizations.  The old order forked pool workers from a
parent already holding the full artifact graph — copy-on-write storms
(every child GC touches inherited refcount pages) billed the pool for
tens of seconds of memory traffic the shards never use.  The recorded
``pool_start_method`` says which fork regime the numbers come from.

``--sweep-scaling N`` runs the default-scale sweep-scaling probe (the
``sweep_scaling`` section, gated by ``check_regression.py``): one
N-shard signature-mode session over the partitioned default scale, and
one *exhaustive* cross-shard sweep over the same shards paired into N/2
universes — same merged corpus, half the shard count, no extra builds.
The probe asserts the tentpole economics: the signature sweep at N
shards must beat the exhaustive sweep at N/2 shards on wall-clock, and
must prune at least half of the shard pairs or rescored rows.

``--chaos N`` runs the chaos smoke (the ``chaos`` section, gated by
``check_regression.py``): an N-shard (N ≥ 3) small-scale session with an
injected worker crash (shard 1, attempt 1) and an injected hang pushing
shard 2 past its wall-clock budget, run serially so the attempt ledger
is deterministic.  The session must self-heal — complete via exactly one
retry per fault, undegraded, with checkpoints written and the merged
recall floors intact — which CI asserts on every push, not only when a
fault happens to occur in the wild.

``--store-rss N`` runs the out-of-core memory probe (the ``store``
section, gated by ``check_regression.py``): the same N-shard
default-scale session twice — once in-memory (workers return whole
``BuildArtifacts``), once store-backed (``store_backend="sqlite"``:
workers persist into the artifact store and return path handles, the
parent opens shards lazily over mmap and streams merged candidates into
SQLite).  Each run happens in its own spawned subprocess so
``resource.getrusage`` peak-RSS readings are clean per mode, with
per-phase deltas around build / sweep / merged access.  The gate:
store-backed peak RSS strictly below in-memory at the same scale, with
identical candidate counts.

``--serve N`` runs the online-serving probe (the ``serve`` section,
schema 8, gated by ``check_regression.py``): two live shards over a
cleansed small corpus serve N mixed operations — matches, appends,
retires — from 32 concurrent clients through one async
:class:`~repro.serve.MatchService`, recording sustained QPS, per-query
p50/p99 latency and the shed rate, then asserting the serving layer's
two structural claims in the same run: *delta determinism* (every
mutated shard's clusters and scores equal a cold rebuild of its
surviving offers) and *typed backpressure* (a deliberate overload burst
against a tiny admission queue must shed with
:class:`~repro.errors.ServiceOverloadError`).

``--shard-scaling N`` additionally runs the default-scale scaling probe
and stores it under ``shard_scaling`` (informational: CI smoke runs never
record it, so it is compared by humans, not gated).  The probe records
two equal-total-offers comparisons: the *partitioned* one (N shards over
the default scale vs the default single build — on a multi-core machine
the process pool wins this outright; on one core the linear per-offer
work just moves between processes, and the recorded ``cpu_count`` says
which regime the numbers come from) and the *scale-out* one (N shards at
2× the default scale vs the equal-size single-corpus build, which
**cannot complete at all**: single-corpus corner-case selection exhausts
its pool just past the default scale, while every shard selects locally
and never does — the recorded ``single_build_error`` is the monolith's
actual failure).

    PYTHONPATH=src python benchmarks/record_timings.py --shards 2 \
        --sweep-scaling 8 --output BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import gc
import json
import multiprocessing
import os
import platform
import time
from pathlib import Path

from repro.blocking import CandidateBlocker, blocking_recall
from repro.core.builder import BenchmarkBuilder, BuildConfig
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.core.profiling import build_profile
from repro.eval.runner import EvalSettings, ExperimentRunner
from repro.shard import (
    FaultPlan,
    FaultSpec,
    ShardPlan,
    ShardedBenchmarkSession,
)

BLOCKING_K = 25

# Chaos smoke fault geometry: the injected hang must overshoot the shard
# timeout, and the timeout must leave honest small-scale shard builds
# (~2-3s here) a generous margin on slow CI runners.
CHAOS_TIMEOUT = 15.0
CHAOS_SLEEP = 18.0


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _memoize_features(matcher) -> None:
    """Cache ``matcher._features`` per dataset object.

    The featurization stages are timed explicitly below; without the memo,
    ``fit`` would silently featurize the same datasets again, double-doing
    the work and folding it into the ``fit`` timing — the recorded stages
    are only additive when each dataset is featurized exactly once.
    """
    base = matcher._features
    cache: dict[int, object] = {}

    def cached(dataset):
        key = id(dataset)
        if key not in cache:
            cache[key] = base(dataset)
        return cache[key]

    matcher._features = cached


def _blocking_recall(runner: ExperimentRunner) -> dict:
    """Split-level blocking recall vs the materialized CC50/medium train set.

    Two recordings: the raw top-k join union over all engine metrics, and
    the training-shaped variant with ground-truth group positives
    completed (the acceptance gate: 100% positives, ≥95% corner
    negatives).
    """
    artifacts = runner.artifacts
    engine, offer_rows = runner.featurization_backend()
    entries = artifacts.splits[CornerCaseRatio.CC50].train_offers(DevSetSize.MEDIUM)
    reference = artifacts.benchmark.train_sets[
        (CornerCaseRatio.CC50, DevSetSize.MEDIUM)
    ]
    blocker = CandidateBlocker.over_entries(engine, entries, offer_rows)
    metrics = blocker.engine.metric_names

    def _both_shapes():
        # One raw join serves both recordings (with_group_positives
        # completes it without re-running the top-k sweep).
        join = blocker.candidates(k=BLOCKING_K, metrics=metrics)
        return (
            blocking_recall(join.with_group_positives(), reference),
            blocking_recall(join, reference),
        )

    seconds, reports = _timed(_both_shapes)
    completed, join_only = reports
    return {
        "k": BLOCKING_K,
        "seconds": seconds,
        "recall": completed.as_dict(),
        "join_recall": join_only.as_dict(),
    }


def _merged_recall(session) -> tuple[dict, dict]:
    """Merged split-scoped recall of the CC50/medium cell (both shapes)."""
    completed, join_only = session.split_candidates(
        CornerCaseRatio.CC50, DevSetSize.MEDIUM, k=BLOCKING_K
    )
    reference = session.merged_benchmark.train_sets[
        (CornerCaseRatio.CC50, DevSetSize.MEDIUM)
    ]
    return (
        blocking_recall(completed, reference).as_dict(),
        blocking_recall(join_only, reference).as_dict(),
    )


def _record_sharding(
    n_shards: int, seed: int, base: BuildConfig, scale: str
) -> dict:
    """One sharded session vs one single-corpus build of the same base.

    The plan partitions the base scale across shards (exact balanced
    shares), so the session covers the single build's total offers; the
    single build runs without a blocking stage so ``single_build_seconds``
    vs ``sharded_build_seconds`` compares pure corpus-pipeline work (the
    sweep is reported separately — it has no single-corpus counterpart).
    The session runs *first*: its workers fork from a parent that has not
    yet materialized the single build's multi-GB object graph — forking
    after it would trigger copy-on-write storms (every child GC touches
    inherited refcount pages) that bill the pool for memory the shards
    never use.
    """
    plan = ShardPlan.create(n_shards, base_config=base, seed=seed)
    session_seconds, session = _timed(
        lambda: ShardedBenchmarkSession(plan, executor="process").build()
    )
    single_seconds, single = _timed(lambda: BenchmarkBuilder(base).build())
    recall, join_recall = _merged_recall(session)
    timings = session.stage_timings
    return {
        "n_shards": n_shards,
        "scale": scale,
        "k": BLOCKING_K,
        "cpu_count": os.cpu_count(),
        "pool_start_method": multiprocessing.get_start_method(),
        "single_build_seconds": single_seconds,
        "single_total_offers": len(single.cleansed.offers),
        "sharded_build_seconds": timings["shards"],
        "sweep_seconds": timings["sweep"],
        "session_wall_seconds": session_seconds,
        "build_speedup": single_seconds / timings["shards"],
        "sharded_total_offers": session.total_offers(),
        "sweep_mode": session.sweep_mode,
        "sweep_stats": session.sweep_stats.as_dict(),
        "build_stages": dict(timings),
        "merged_candidates": session.merged_candidates.summary(),
        "recall": recall,
        "join_recall": join_recall,
    }


def _record_sweep_scaling(n_shards: int, seed: int) -> dict:
    """The sweep-scaling probe: signature at N shards vs exhaustive at N/2.

    One signature-mode session builds the partitioned default scale N
    ways and sweeps it; the *same* shard universes are then paired into
    N/2 combined universes (byte-identical corpus, half the shard count,
    zero extra builds) and swept exhaustively.  Comparing the two
    cross-shard sweep wall-clocks isolates exactly the quadratic
    component the signature index targets: per-shard self joins are
    identical per row in both modes and excluded from both numbers.
    ``check_regression.py`` asserts ``signature_sweep_seconds <
    exhaustive_paired_sweep_seconds`` and the ≥50% pruning floor —
    within one recording, so the gate is machine-independent.
    """
    if n_shards < 4 or n_shards % 2:
        raise ValueError(
            f"--sweep-scaling needs an even shard count >= 4, got {n_shards}"
        )
    from repro.shard import cross_shard_candidates, shard_universe
    from repro.shard.sweep import ShardUniverse
    from repro.similarity import SimilarityEngine

    plan = ShardPlan.create(n_shards, base_config=BuildConfig(seed=seed), seed=seed)
    session = ShardedBenchmarkSession(plan, executor="process").build()
    timings = session.stage_timings
    signature_sweep = (
        timings.get("sweep:signatures", 0.0)
        + timings["sweep:prune"]
        + timings["sweep:rescore"]
    )

    universes = [
        shard_universe(artifacts, shard)
        for shard, artifacts in enumerate(session.shards)
    ]
    paired = [
        ShardUniverse(
            shard=first.shard,
            engine=SimilarityEngine.concat(
                [first.engine, second.engine], strict_embeddings=False
            ),
            offers=first.offers + second.offers,
            labels=first.labels + second.labels,
        )
        for first, second in zip(universes[0::2], universes[1::2])
    ]
    exhaustive_sweep = 0.0
    for i in range(len(paired)):
        for j in range(i + 1, len(paired)):
            seconds, _ = _timed(
                lambda a=paired[i], b=paired[j]: cross_shard_candidates(
                    a, b, k=BLOCKING_K, metrics=session.sweep_metrics
                )
            )
            exhaustive_sweep += seconds
    return {
        "n_shards": n_shards,
        "paired_shards": n_shards // 2,
        "scale": "default",
        "k": BLOCKING_K,
        "cpu_count": os.cpu_count(),
        "pool_start_method": multiprocessing.get_start_method(),
        "sharded_build_seconds": timings["shards"],
        "signature_sweep_seconds": signature_sweep,
        "signature_session_sweep_seconds": timings["sweep"],
        "exhaustive_paired_sweep_seconds": exhaustive_sweep,
        "sweep_speedup": (
            exhaustive_sweep / signature_sweep if signature_sweep else None
        ),
        "sweep_stats": session.sweep_stats.as_dict(),
    }


def _record_chaos(n_shards: int, seed: int) -> dict:
    """The chaos smoke: a fault-injected session must self-heal.

    Injects a worker crash (shard 1, attempt 1) and a hang that drives
    shard 2 past the ``CHAOS_TIMEOUT`` wall-clock budget, then requires
    the session to complete through the supervisor's retries: exactly
    one retry per fault (serial execution keeps the ledger
    deterministic), no degradation, checkpoints saved, merged recall at
    the same floors the healthy sharding section is held to.
    ``check_regression.py`` gates all of that from the recorded section.
    """
    if n_shards < 3:
        raise ValueError(
            f"--chaos needs at least 3 shards (faults target shards 1 "
            f"and 2), got {n_shards}"
        )
    import tempfile

    # 30 products over 3 shards (the geometry the session determinism
    # tests pin): the small corpus partitioned 3 ways can sustain 10
    # selected products per shard, where the full small quota cannot.
    plan = ShardPlan.create(
        n_shards,
        base_config=BuildConfig.small(seed=seed, n_products=30),
        seed=seed,
    )
    faults = FaultPlan(
        (
            FaultSpec(shard=1, attempt=1, kind="crash"),
            FaultSpec(shard=2, attempt=1, kind="sleep", seconds=CHAOS_SLEEP),
        )
    )
    section: dict = {
        "n_shards": n_shards,
        "scale": "small",
        "k": BLOCKING_K,
        "injected_faults": len(faults.faults),
        "shard_timeout": CHAOS_TIMEOUT,
        "fault_plan": json.loads(faults.to_json()),
    }
    try:
        with tempfile.TemporaryDirectory() as scratch:
            seconds, session = _timed(
                lambda: ShardedBenchmarkSession(
                    plan,
                    executor="serial",
                    fault_plan=faults,
                    shard_timeout=CHAOS_TIMEOUT,
                    max_attempts=3,
                    retry_backoff=0.1,
                    checkpoint_dir=Path(scratch) / "checkpoints",
                ).build()
            )
            recall, join_recall = _merged_recall(session)
    except Exception as error:
        section["completed"] = False
        section["error"] = f"{type(error).__name__}: {error}"
        return section
    health = session.health
    timings = session.stage_timings
    section.update(
        {
            "completed": True,
            "degraded": health.degraded,
            "retries": health.retries,
            "session_wall_seconds": seconds,
            "health": health.as_dict(),
            "build_stages": {
                "shard:retries": timings["shard:retries"],
                "checkpoint:load": timings["checkpoint:load"],
                "checkpoint:save": timings["checkpoint:save"],
            },
            "recall": recall,
            "join_recall": join_recall,
        }
    )
    return section


def _store_rss_probe(
    mode: str, n_shards: int, seed: int, store_dir: str | None, queue
) -> None:
    """Child-process body of the out-of-core memory probe.

    Runs one session end to end (build, sweep, merged access) and
    reports this process's ``ru_maxrss`` after each phase.  ``ru_maxrss``
    is a high-water mark, so the phase deltas say how much *new* peak
    each phase added; the pool workers' RSS is theirs alone — exactly
    the accounting the store is supposed to win: in-memory mode ships
    every shard's artifact graph back into this process, store-backed
    mode ships path handles and mmaps.
    """
    import resource

    def peak_kb() -> int:
        # Prefer VmHWM from /proc/self/status: some sandbox kernels keep
        # struct-rusage maxrss as a separate counter that neither exec
        # nor clear_refs resets, so getrusage would report the *parent's*
        # watermark forever.  VmHWM honors the clear_refs reset below.
        # Fall back to ru_maxrss where /proc is absent (non-Linux; Linux
        # reports KB, macOS bytes — both modes record on one machine, so
        # the comparison holds either way).
        try:
            with open("/proc/self/status") as status:
                for line in status:
                    if line.startswith("VmHWM:"):
                        return int(line.split()[1])
        except OSError:
            pass
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    # Not every kernel resets the peak-RSS watermark across exec — some
    # sandbox kernels hand the spawned child the parent's watermark,
    # which would mask every measurement below it.  Writing "5" to
    # clear_refs resets VmHWM to the current RSS; where the file is
    # absent (non-Linux) the fresh spawn watermark is already correct.
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:
        pass

    plan = ShardPlan.create(
        n_shards, base_config=BuildConfig(seed=seed), seed=seed
    )
    kwargs: dict = {}
    if mode == "sqlite":
        kwargs = {"store_dir": store_dir, "store_backend": "sqlite"}
    session = ShardedBenchmarkSession(plan, executor="process", **kwargs)
    phases: dict[str, int] = {}
    baseline = peak_kb()
    timings: dict[str, float] = {}
    shard_ids, shards, summaries, health, _ = session._build_shards()
    after_build = peak_kb()
    phases["build"] = after_build - baseline
    merged, merged_join, _ = session._sweep(
        shard_ids, shards, timings, summaries
    )
    after_sweep = peak_kb()
    phases["sweep"] = after_sweep - after_build
    # Merged access: counting + summarizing walks every candidate — the
    # in-memory path over Python lists, the store path over windowed
    # SQL queries.
    candidates = len(merged)
    join_candidates = len(merged_join)
    summary = merged.summary()
    after_merge = peak_kb()
    phases["merge"] = after_merge - after_sweep
    queue.put(
        {
            "mode": mode,
            "degraded": health.degraded,
            "peak_rss_kb": after_merge,
            "baseline_rss_kb": baseline,
            "phases": phases,
            "candidates": candidates,
            "join_candidates": join_candidates,
            "positives": summary["pos"],
        }
    )


def _record_store_rss(n_shards: int, seed: int) -> dict:
    """The out-of-core probe: in-memory vs store-backed peak RSS.

    Each mode runs in its own *spawned* subprocess: spawn (not fork)
    keeps the child's baseline RSS independent of whatever the parent
    has already materialized, and per-process ``ru_maxrss`` high-water
    marks never bleed between modes.  ``check_regression.py`` gates the
    comparison: store-backed peak strictly below in-memory, identical
    candidate counts.
    """
    import tempfile

    context = multiprocessing.get_context("spawn")
    section: dict = {
        "n_shards": n_shards,
        "scale": "default",
        "cpu_count": os.cpu_count(),
    }
    for mode in ("in_memory", "sqlite"):
        with tempfile.TemporaryDirectory() as scratch:
            store_dir = (
                str(Path(scratch) / "store") if mode == "sqlite" else None
            )
            queue = context.SimpleQueue()
            child = context.Process(
                target=_store_rss_probe,
                args=(mode, n_shards, seed, store_dir, queue),
            )
            child.start()
            # Join before get: the payload is a tiny dict (no pipe-full
            # deadlock), and a crashed child must raise here instead of
            # leaving the parent blocked on an empty queue forever.
            child.join()
            if child.exitcode:
                raise RuntimeError(
                    f"store-rss probe ({mode}) exited with "
                    f"{child.exitcode}"
                )
            payload = queue.get()
        section[payload.pop("mode")] = payload
    return section


def _serve_cold_parity(shards) -> dict:
    """Live-vs-cold parity of each mutated shard, pinned exactly.

    After the workload, every shard's live state (incremental clusters +
    external cosine scores over probe queries) must equal a cold rebuild
    over its surviving offers — the delta-determinism claim, asserted in
    the benchmark itself so CI re-proves it at workload scale on every
    push.
    """
    from repro.serve import LiveShard
    from repro.similarity.engine import SimilarityEngine
    from repro.text.tokenize import tokenize

    clusters_equal = True
    scores_equal = True
    for shard in shards:
        offers = shard.live_offers()
        cold = LiveShard(
            SimilarityEngine([offer.title for offer in offers]), offers
        )
        if shard.clusters_sha() != cold.clusters_sha():
            clusters_equal = False
        probe = [set(tokenize(offer.title)) for offer in offers[:8]]
        alive = [int(row) for row in shard.engine.live_rows()]
        live_scores = shard.engine.external_scores_batch(probe, "cosine")
        cold_scores = cold.engine.external_scores_batch(probe, "cosine")
        if not (live_scores[:, alive] == cold_scores).all():
            scores_equal = False
    return {"clusters_equal": clusters_equal, "scores_equal": scores_equal}


def _record_serve(n_ops: int, seed: int) -> dict:
    """The online-serving probe: sustained mixed match/append/retire load.

    Two live shards over a cleansed small corpus serve ``n_ops``
    operations from 32 concurrent clients — mostly ``match`` queries,
    with an append every 8th operation and a retire (of an earlier
    append) every 16th — through one :class:`MatchService`.  Recorded:
    sustained QPS, per-query p50/p99 latency, shed/deadline counters,
    micro-batch count, then the delta-determinism parity booleans (live
    mutated shards vs cold rebuilds) and a deliberate overload burst
    against a ``max_pending=2`` service proving typed backpressure
    sheds.  ``check_regression.py`` gates p99 and QPS against the
    baseline and requires parity + shedding outright.
    """
    import asyncio
    import random

    from repro.cleansing import CleansingPipeline
    from repro.corpus import CorpusConfig, CorpusGenerator
    from repro.errors import ServiceOverloadError
    from repro.serve import LiveShard, MatchService
    from repro.similarity.engine import SimilarityEngine

    corpus = CleansingPipeline().run(
        CorpusGenerator(CorpusConfig.small(seed=seed)).generate().corpus
    )
    offers = list(corpus.offers)
    half = len(offers) // 2
    shards = [
        LiveShard(
            SimilarityEngine([offer.title for offer in offers[:half]]),
            offers[:half],
            shard=0,
        ),
        LiveShard(
            SimilarityEngine([offer.title for offer in offers[half:]]),
            offers[half:],
            shard=1,
        ),
    ]
    rng = random.Random(seed)
    titles = [offer.title for offer in offers]
    concurrency = 32

    async def workload() -> dict:
        from repro.corpus.schema import ProductOffer

        service = MatchService(
            shards, max_batch=64, max_pending=4 * concurrency
        )
        latencies: list[float] = []
        appended: list[str] = []
        counters = {"queries": 0, "appends": 0, "retires": 0, "shed": 0}
        next_op = iter(range(n_ops))

        async def client() -> None:
            loop = asyncio.get_running_loop()
            for op in next_op:
                try:
                    if op % 16 == 15 and appended:
                        await service.retire([appended.pop(0)])
                        counters["retires"] += 1
                    elif op % 8 == 7:
                        fresh = ProductOffer(
                            offer_id=f"srv-{op}",
                            cluster_id=f"srvc-{op}",
                            title=rng.choice(titles),
                        )
                        await service.append([fresh])
                        appended.append(fresh.offer_id)
                        counters["appends"] += 1
                    else:
                        started = loop.time()
                        await service.match(
                            [rng.choice(titles)], k=10
                        )
                        latencies.append(loop.time() - started)
                        counters["queries"] += 1
                except ServiceOverloadError:
                    counters["shed"] += 1

        async with service:
            started = time.perf_counter()
            await asyncio.gather(*[client() for _ in range(concurrency)])
            wall = time.perf_counter() - started
            stats = service.stats()

        # The overload burst: a deliberately tiny admission queue must
        # shed with the typed error rather than queueing without bound.
        burst_service = MatchService(shards, max_pending=2, max_batch=1)
        async with burst_service:
            burst = await asyncio.gather(
                *[
                    burst_service.match([titles[0]], k=1)
                    for _ in range(64)
                ],
                return_exceptions=True,
            )
        burst_shed = sum(
            isinstance(result, ServiceOverloadError) for result in burst
        )

        ordered = sorted(latencies)
        def quantile(q: float) -> float:
            return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

        return {
            "n_ops": n_ops,
            "n_shards": len(shards),
            "concurrency": concurrency,
            "corpus_offers": len(offers),
            "wall_seconds": wall,
            "completed_queries": counters["queries"],
            "appends": counters["appends"],
            "retires": counters["retires"],
            "shed": counters["shed"],
            "shed_rate": counters["shed"] / n_ops,
            "deadline_expired": stats.deadline_expired,
            "batches": stats.batches,
            "qps": counters["queries"] / wall if wall else 0.0,
            "p50_ms": quantile(0.50) * 1000.0,
            "p99_ms": quantile(0.99) * 1000.0,
            "overload_burst": {"attempted": 64, "shed": burst_shed},
        }

    section = asyncio.run(workload())
    section["parity"] = _serve_cold_parity(shards)
    return section


def _scaled_config(base: BuildConfig, factor: int) -> BuildConfig:
    from dataclasses import replace

    return replace(
        base,
        corpus=replace(
            base.corpus,
            families_per_category_seen=(
                base.corpus.families_per_category_seen * factor
            ),
            families_per_category_unseen=(
                base.corpus.families_per_category_unseen * factor
            ),
        ),
        n_products=base.n_products * factor,
    )


def _record_shard_scaling(n_shards: int, seed: int) -> dict:
    """The default-scale probe: partitioned parity + scale-out feasibility.

    ``partitioned`` shards the default scale N ways (equal total offers to
    the default build); ``scale_out`` doubles the scale and shows the
    structural result: the equal-size *single-corpus* build fails corner
    selection (its selectable corner-case pool grows sublinearly and is
    exhausted just past the default scale), while the N-shard session —
    each shard selecting locally at a proven per-corpus ratio — completes
    build and cross-shard sweep with the merged recall floors intact.
    """
    result: dict = {
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "partitioned": _record_sharding(
            n_shards, seed, BuildConfig(seed=seed), "default"
        ),
    }
    factor = 2
    scaled = _scaled_config(BuildConfig(seed=seed), factor)
    plan = ShardPlan.create(n_shards, base_config=scaled, seed=seed)
    session_seconds, session = _timed(
        lambda: ShardedBenchmarkSession(plan, executor="process").build()
    )
    recall, join_recall = _merged_recall(session)
    scale_out: dict = {
        "scale_factor": factor,
        "sharded_build_seconds": session.stage_timings["shards"],
        "sweep_seconds": session.stage_timings["sweep"],
        "session_wall_seconds": session_seconds,
        "sharded_total_offers": session.total_offers(),
        "merged_candidates": session.merged_candidates.summary(),
        "recall": recall,
        "join_recall": join_recall,
    }
    try:
        single_seconds, single = _timed(
            lambda: BenchmarkBuilder(scaled).build()
        )
        scale_out["single_build_seconds"] = single_seconds
        scale_out["single_total_offers"] = len(single.cleansed.offers)
    except ValueError as error:
        scale_out["single_build_seconds"] = None
        scale_out["single_build_error"] = str(error)
    result["scale_out"] = scale_out
    return result


def record(
    seed: int = 42,
    shards: int = 0,
    shard_scaling: int = 0,
    sweep_scaling: int = 0,
    chaos: int = 0,
    store_rss: int = 0,
    serve: int = 0,
) -> dict:
    record: dict = {
        # 8: online serving — the serve section (sustained mixed
        #    match/append/retire workload over live shards: QPS,
        #    p50/p99, shed rate, delta-determinism parity, gated)
        # 7: out-of-core — the store section (in-memory vs sqlite-backed
        #    session peak RSS with per-phase deltas, gated)
        # 6: fault tolerance — the chaos smoke section (fault-injected
        #    session that must self-heal via supervised retries, gated),
        #    and sessions record shard:retries (+ checkpoint:load/save
        #    when checkpointing) stage rows
        # 5: pool phases run before the parent builds anything big (fork
        #    CoW bias fix), sweep:signatures/prune/rescore stage rows,
        #    sweep_stats pruning ratios, the sweep_scaling probe and
        #    pool_start_method
        # 4: --shards rides a sharded session along (shard:*/sweep:* rows,
        #    merged recall, sharded-vs-single build wall-clock)
        # 3: build runs the blocking stage; blocking recall is recorded
        # 2: featurize/fit stages are additive (no double work)
        "schema": 8,
        "scale": "small",
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "pool_start_method": multiprocessing.get_start_method(),
    }

    # Every process-pool phase runs first, while the parent is still
    # small: forking from a parent that already holds the single build's
    # artifact graph, the runner and two featurized matchers made the
    # workers inherit (and CoW-copy, refcount write by refcount write)
    # hundreds of MB they never read — the measured pool penalty was
    # nearly half the sharded build wall-clock.
    if shards > 0:
        record["sharding"] = _record_sharding(
            shards, seed, BuildConfig.small(seed=seed), "small"
        )
    if sweep_scaling > 0:
        record["sweep_scaling"] = _record_sweep_scaling(sweep_scaling, seed)
    if shard_scaling > 0:
        record["shard_scaling"] = _record_shard_scaling(shard_scaling, seed)
    if chaos > 0:
        record["chaos"] = _record_chaos(chaos, seed)
    if store_rss > 0:
        record["store"] = _record_store_rss(store_rss, seed)
    if serve > 0:
        record["serve"] = _record_serve(serve, seed)
    # Drop the pool sections' object graphs before the serial phases so
    # their allocations don't skew the single-build measurement either.
    gc.collect()

    build_seconds, artifacts = _timed(
        lambda: BenchmarkBuilder(
            BuildConfig.small(seed=seed, blocking_top_k=BLOCKING_K)
        ).build()
    )
    record["build_wall_seconds"] = build_seconds
    record["build_stages"] = {
        row.stage: row.seconds for row in build_profile(artifacts)
    }

    runner = ExperimentRunner(artifacts, settings=EvalSettings.smoke())
    record["blocking"] = _blocking_recall(runner)
    task = artifacts.benchmark.pairwise(
        CornerCaseRatio.CC50, DevSetSize.MEDIUM, UnseenRatio.SEEN
    )
    matchers: dict[str, dict[str, float]] = {}
    for system in ("word_cooc", "magellan"):
        matcher = runner.make_pairwise(system, seed=0)
        _memoize_features(matcher)
        timings: dict[str, float] = {}
        timings["featurize_train"], _ = _timed(lambda: matcher._features(task.train))
        timings["featurize_valid"], _ = _timed(lambda: matcher._features(task.valid))
        # Featurization is memoized above, so this times model fitting only.
        timings["fit"], _ = _timed(lambda: matcher.fit(task.train, task.valid))
        timings["predict_test"], _ = _timed(lambda: matcher.predict(task.test))
        timings["n_train_pairs"] = len(task.train)
        timings["n_test_pairs"] = len(task.test)
        matchers[system] = timings
    record["matchers"] = matchers
    return record


def _print_sharding(label: str, section: dict) -> None:
    print(
        f"  {label}: {section['n_shards']} shards ({section['scale']} scale) "
        f"build {section['sharded_build_seconds']:.2f}s vs single "
        f"{section['single_build_seconds']:.2f}s "
        f"({section['build_speedup']:.2f}x), sweep "
        f"{section['sweep_seconds']:.2f}s, offers "
        f"{section['sharded_total_offers']} vs "
        f"{section['single_total_offers']}"
    )
    print(
        f"    merged recall @k={section['k']}: "
        f"positives={section['recall']['positive_recall']:.4f} "
        f"corner={section['recall']['corner_negative_recall']:.4f} "
        f"(join only: {section['join_recall']['positive_recall']:.4f}/"
        f"{section['join_recall']['corner_negative_recall']:.4f})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_baseline.json"),
        help="where to write the timing baseline (default: BENCH_baseline.json)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="record an N-shard small-scale session alongside the single "
        "build (schema 4 'sharding' section, gated by check_regression)",
    )
    parser.add_argument(
        "--shard-scaling",
        type=int,
        default=0,
        help="also run the default-scale scaling probe with N shards "
        "('shard_scaling' section, informational — takes minutes)",
    )
    parser.add_argument(
        "--sweep-scaling",
        type=int,
        default=0,
        help="run the sweep-scaling probe: an N-shard signature-mode "
        "session at the partitioned default scale vs an exhaustive sweep "
        "over the same shards paired N/2 ways ('sweep_scaling' section, "
        "gated by check_regression)",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=0,
        help="run the chaos smoke: an N-shard (N >= 3) small session with "
        "an injected worker crash and an injected over-budget hang that "
        "must self-heal via supervised retries ('chaos' section, gated by "
        "check_regression)",
    )
    parser.add_argument(
        "--store-rss",
        type=int,
        default=0,
        help="run the out-of-core memory probe: the same N-shard "
        "default-scale session in-memory and store-backed, each in its "
        "own spawned subprocess, recording peak RSS with per-phase "
        "deltas ('store' section, gated by check_regression)",
    )
    parser.add_argument(
        "--serve",
        type=int,
        default=0,
        help="run the online-serving probe: N mixed match/append/retire "
        "operations from 32 concurrent clients against two live shards, "
        "recording QPS, p50/p99 latency, shed rate and the "
        "delta-determinism parity booleans ('serve' section, gated by "
        "check_regression)",
    )
    args = parser.parse_args()

    result = record(
        seed=args.seed,
        shards=args.shards,
        shard_scaling=args.shard_scaling,
        sweep_scaling=args.sweep_scaling,
        chaos=args.chaos,
        store_rss=args.store_rss,
        serve=args.serve,
    )
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for stage, seconds in sorted(
        result["build_stages"].items(), key=lambda item: -item[1]
    ):
        print(f"  {stage:24s} {seconds:8.3f}s")
    blocking = result["blocking"]
    print(
        f"  blocking recall @k={blocking['k']}: "
        f"positives={blocking['recall']['positive_recall']:.4f} "
        f"corner={blocking['recall']['corner_negative_recall']:.4f} "
        f"(join only: {blocking['join_recall']['positive_recall']:.4f}/"
        f"{blocking['join_recall']['corner_negative_recall']:.4f})"
    )
    for system, timings in result["matchers"].items():
        print(
            f"  {system:24s} featurize={timings['featurize_train']:.3f}s"
            f"+{timings['featurize_valid']:.3f}s "
            f"fit={timings['fit']:.3f}s predict={timings['predict_test']:.3f}s"
        )
    if "sharding" in result:
        _print_sharding("sharding", result["sharding"])
        stats = result["sharding"]["sweep_stats"]
        print(
            f"    sweep mode {stats['mode']}"
            + (
                f" @tau={stats['threshold']}: pairs skipped "
                f"{stats['pairs_skipped']}/{stats['pairs_total']}, rows "
                f"pruned {stats['row_prune_ratio']:.1%}, cells pruned "
                f"{stats['cell_prune_ratio']:.1%}"
                if stats["mode"] == "signature"
                else ""
            )
        )
    if "sweep_scaling" in result:
        probe = result["sweep_scaling"]
        stats = probe["sweep_stats"]
        print(
            f"  sweep_scaling: signature@{probe['n_shards']} "
            f"{probe['signature_sweep_seconds']:.2f}s vs exhaustive@"
            f"{probe['paired_shards']} "
            f"{probe['exhaustive_paired_sweep_seconds']:.2f}s "
            f"({probe['sweep_speedup']:.2f}x); rows pruned "
            f"{stats['row_prune_ratio']:.1%}, cells pruned "
            f"{stats['cell_prune_ratio']:.1%}"
        )
    if "chaos" in result:
        chaos = result["chaos"]
        if chaos.get("completed"):
            print(
                f"  chaos: {chaos['n_shards']} shards, "
                f"{chaos['injected_faults']} faults injected, "
                f"{chaos['retries']} retries, degraded={chaos['degraded']}, "
                f"wall {chaos['session_wall_seconds']:.2f}s"
            )
            print(
                f"    merged recall @k={chaos['k']}: "
                f"positives={chaos['recall']['positive_recall']:.4f} "
                f"corner={chaos['recall']['corner_negative_recall']:.4f} "
                f"(join only: {chaos['join_recall']['positive_recall']:.4f}/"
                f"{chaos['join_recall']['corner_negative_recall']:.4f})"
            )
        else:
            print(f"  chaos: session FAILED — {chaos.get('error')}")
    if "store" in result:
        store = result["store"]
        memory, sqlite = store["in_memory"], store["sqlite"]
        ratio = sqlite["peak_rss_kb"] / memory["peak_rss_kb"]
        print(
            f"  store: {store['n_shards']} shards ({store['scale']} scale) "
            f"peak RSS sqlite {sqlite['peak_rss_kb'] / 1024:.0f}MB vs "
            f"in-memory {memory['peak_rss_kb'] / 1024:.0f}MB "
            f"({ratio:.2f}x), candidates {sqlite['candidates']} vs "
            f"{memory['candidates']}"
        )
        for mode, section in (("in_memory", memory), ("sqlite", sqlite)):
            phases = section["phases"]
            print(
                f"    {mode:9s} phase deltas: build "
                f"{phases['build'] / 1024:.0f}MB sweep "
                f"{phases['sweep'] / 1024:.0f}MB merge "
                f"{phases['merge'] / 1024:.0f}MB"
            )
    if "serve" in result:
        serve = result["serve"]
        parity = serve["parity"]
        print(
            f"  serve: {serve['completed_queries']} queries over "
            f"{serve['n_shards']} shards in {serve['wall_seconds']:.2f}s "
            f"({serve['qps']:.0f} QPS, p50 {serve['p50_ms']:.1f}ms, "
            f"p99 {serve['p99_ms']:.1f}ms), {serve['appends']} appends, "
            f"{serve['retires']} retires, shed rate "
            f"{serve['shed_rate']:.1%}"
        )
        print(
            f"    delta parity: clusters={parity['clusters_equal']} "
            f"scores={parity['scores_equal']}; overload burst shed "
            f"{serve['overload_burst']['shed']}/"
            f"{serve['overload_burst']['attempted']}"
        )
    if "shard_scaling" in result:
        scaling = result["shard_scaling"]
        _print_sharding("shard_scaling (partitioned)", scaling["partitioned"])
        scale_out = scaling["scale_out"]
        if scale_out.get("single_build_seconds") is None:
            single = f"single FAILED: {scale_out.get('single_build_error')}"
        else:
            single = f"single {scale_out['single_build_seconds']:.2f}s"
        print(
            f"  shard_scaling (scale-out {scale_out['scale_factor']}x): "
            f"build {scale_out['sharded_build_seconds']:.2f}s, sweep "
            f"{scale_out['sweep_seconds']:.2f}s, offers "
            f"{scale_out['sharded_total_offers']} — {single}"
        )


if __name__ == "__main__":
    main()
