"""Record build-stage and matcher timings into a JSON perf baseline.

Runs the Figure-2 pipeline at smoke scale (``BuildConfig.small``) with the
blocking stage enabled, records every named build stage (including the
``cleansing:*`` sub-stages and the corpus-level ``blocking`` join), the
blocking recall of one split against its materialized pair sets, then
times the symbolic matchers' fit/predict — with featurization broken out —
on one benchmark cell.  The output (``BENCH_baseline.json`` by default) is
uploaded as a CI artifact on every run, giving future PRs a perf and
recall trajectory to compare against:

    PYTHONPATH=src python benchmarks/record_timings.py --output BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.blocking import CandidateBlocker, blocking_recall
from repro.core.builder import BenchmarkBuilder, BuildConfig
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.core.profiling import build_profile
from repro.eval.runner import EvalSettings, ExperimentRunner

BLOCKING_K = 25


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _memoize_features(matcher) -> None:
    """Cache ``matcher._features`` per dataset object.

    The featurization stages are timed explicitly below; without the memo,
    ``fit`` would silently featurize the same datasets again, double-doing
    the work and folding it into the ``fit`` timing — the recorded stages
    are only additive when each dataset is featurized exactly once.
    """
    base = matcher._features
    cache: dict[int, object] = {}

    def cached(dataset):
        key = id(dataset)
        if key not in cache:
            cache[key] = base(dataset)
        return cache[key]

    matcher._features = cached


def _blocking_recall(runner: ExperimentRunner) -> dict:
    """Split-level blocking recall vs the materialized CC50/medium train set.

    Two recordings: the raw top-k join union over all engine metrics, and
    the training-shaped variant with ground-truth group positives
    completed (the acceptance gate: 100% positives, ≥95% corner
    negatives).
    """
    artifacts = runner.artifacts
    engine, offer_rows = runner.featurization_backend()
    entries = artifacts.splits[CornerCaseRatio.CC50].train_offers(DevSetSize.MEDIUM)
    reference = artifacts.benchmark.train_sets[
        (CornerCaseRatio.CC50, DevSetSize.MEDIUM)
    ]
    blocker = CandidateBlocker.over_entries(engine, entries, offer_rows)
    metrics = blocker.engine.metric_names
    seconds, reports = _timed(
        lambda: (
            blocking_recall(
                blocker.candidates(
                    k=BLOCKING_K, metrics=metrics, include_group_positives=True
                ),
                reference,
            ),
            blocking_recall(
                blocker.candidates(k=BLOCKING_K, metrics=metrics), reference
            ),
        )
    )
    completed, join_only = reports
    return {
        "k": BLOCKING_K,
        "seconds": seconds,
        "recall": completed.as_dict(),
        "join_recall": join_only.as_dict(),
    }


def record(seed: int = 42) -> dict:
    record: dict = {
        # 3: build runs the blocking stage; blocking recall is recorded
        # 2: featurize/fit stages are additive (no double work)
        "schema": 3,
        "scale": "small",
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    build_seconds, artifacts = _timed(
        lambda: BenchmarkBuilder(
            BuildConfig.small(seed=seed, blocking_top_k=BLOCKING_K)
        ).build()
    )
    record["build_wall_seconds"] = build_seconds
    record["build_stages"] = {
        row.stage: row.seconds for row in build_profile(artifacts)
    }

    runner = ExperimentRunner(artifacts, settings=EvalSettings.smoke())
    record["blocking"] = _blocking_recall(runner)
    task = artifacts.benchmark.pairwise(
        CornerCaseRatio.CC50, DevSetSize.MEDIUM, UnseenRatio.SEEN
    )
    matchers: dict[str, dict[str, float]] = {}
    for system in ("word_cooc", "magellan"):
        matcher = runner.make_pairwise(system, seed=0)
        _memoize_features(matcher)
        timings: dict[str, float] = {}
        timings["featurize_train"], _ = _timed(lambda: matcher._features(task.train))
        timings["featurize_valid"], _ = _timed(lambda: matcher._features(task.valid))
        # Featurization is memoized above, so this times model fitting only.
        timings["fit"], _ = _timed(lambda: matcher.fit(task.train, task.valid))
        timings["predict_test"], _ = _timed(lambda: matcher.predict(task.test))
        timings["n_train_pairs"] = len(task.train)
        timings["n_test_pairs"] = len(task.test)
        matchers[system] = timings
    record["matchers"] = matchers
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_baseline.json"),
        help="where to write the timing baseline (default: BENCH_baseline.json)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    result = record(seed=args.seed)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for stage, seconds in sorted(
        result["build_stages"].items(), key=lambda item: -item[1]
    ):
        print(f"  {stage:24s} {seconds:8.3f}s")
    blocking = result["blocking"]
    print(
        f"  blocking recall @k={blocking['k']}: "
        f"positives={blocking['recall']['positive_recall']:.4f} "
        f"corner={blocking['recall']['corner_negative_recall']:.4f} "
        f"(join only: {blocking['join_recall']['positive_recall']:.4f}/"
        f"{blocking['join_recall']['corner_negative_recall']:.4f})"
    )
    for system, timings in result["matchers"].items():
        print(
            f"  {system:24s} featurize={timings['featurize_train']:.3f}s"
            f"+{timings['featurize_valid']:.3f}s "
            f"fit={timings['fit']:.3f}s predict={timings['predict_test']:.3f}s"
        )


if __name__ == "__main__":
    main()
