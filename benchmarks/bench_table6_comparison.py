"""Table 6 — WDC Products in the benchmark landscape.

The static rows are the paper's; the final row is computed live from this
reproduction's artifact, so paper-vs-measured totals sit side by side.
"""

from repro.eval.comparison import format_table6, table6_rows


def test_table6_benchmark_landscape(benchmark, wdc_benchmark):
    rows = benchmark.pedantic(
        table6_rows, args=(wdc_benchmark,), rounds=1, iterations=1
    )
    print("\n=== Table 6: benchmark comparison ===")
    print(format_table6(rows))

    ours = rows[-1]
    assert "reproduction" in ours.benchmark
    # Structural properties the paper's row also satisfies.
    assert ours.n_matches > 0 and ours.n_non_matches > ours.n_matches
    assert ours.avg_matches_per_entity > 5  # many matches per entity
    assert ours.fixed_splits == "yes (3)"
