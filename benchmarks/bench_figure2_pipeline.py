"""Figure 2 — the six-step creation pipeline, with stage-by-stage counts.

Times the full build (extraction -> cleansing -> grouping -> selection ->
splitting -> pair generation) on a fresh small corpus and prints the
funnel each stage produces.
"""

from repro.core import BenchmarkBuilder, BuildConfig, build_profile
from repro.core.dimensions import CornerCaseRatio


def test_figure2_creation_pipeline(benchmark):
    config = BuildConfig.small(seed=77)  # fresh small build: timing target
    artifacts = benchmark.pedantic(
        lambda: BenchmarkBuilder(config).build(), rounds=1, iterations=1
    )

    print("\n=== Figure 2: benchmark creation pipeline ===")
    print(f"(1) extraction: {len(artifacts.generated.corpus):,} offers "
          f"({artifacts.generated.n_dirty_offers:,} dirty)")
    for stage, count in artifacts.cleansing_report.rows():
        print(f"(2) cleansing — {stage:<26} {count:>8,}")
    stats = artifacts.grouped.stats()
    print(f"(3) grouping: {stats['seen_groups']} seen groups "
          f"({stats['seen_useful']} useful), {stats['unseen_groups']} unseen "
          f"({stats['unseen_useful']} useful)")
    for (cc, part), selection in sorted(
        artifacts.selections.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
    ):
        print(f"(4) selection {cc.label:>4} {part:<7}: {len(selection)} products "
              f"({selection.n_corner} corner)")
    split = artifacts.splits[CornerCaseRatio.CC80]
    print(f"(5) splitting: {len(split.seen)} seen products split, "
          f"{len(split.test_sets)} test sets materialized")
    n_train = sum(len(d) for d in artifacts.benchmark.train_sets.values())
    n_test = sum(len(d) for d in artifacts.benchmark.test_sets.values())
    print(f"(6) pair generation: {n_train:,} training pairs, {n_test:,} test pairs")

    print("--- stage wall-clock ---")
    for row in build_profile(artifacts):
        share = f"{row.share:6.1%}" if not row.stage.startswith("ratio:") else ""
        print(f"    {row.stage:<12} {row.seconds:8.3f}s {share}")

    assert artifacts.cleansing_report.after_outlier_removal > 0
    assert len(artifacts.benchmark.train_sets) == 9
    assert len(artifacts.benchmark.test_sets) == 9
    assert artifacts.stage_timings["ratios"] > 0.0
