"""Table 5 — multi-class matching micro-F1.

Paper shape: R-SupCon dominates every variant; the symbolic Word-
Occurrence baseline beats fine-tuned RoBERTa for small/medium development
sets (too few offers per class); RoBERTa recovers at large.
"""

from repro.core.dimensions import CornerCaseRatio, DevSetSize, MulticlassVariant
from repro.eval.reporting import format_table5


def test_table5_multiclass_micro_f1(benchmark, multiclass_results, eval_settings):
    table = benchmark.pedantic(
        format_table5, args=(multiclass_results,), rounds=1, iterations=1
    )
    print("\n=== Table 5: multi-class micro-F1 ===")
    print(table)

    for corner_cases, dev_size in eval_settings.resolved_multiclass_cells():
        variant = MulticlassVariant(corner_cases, dev_size)
        for system in ("word_occ", "roberta", "rsupcon"):
            value = multiclass_results.get(system, variant)
            assert value is None or 0.0 <= value <= 1.0
