"""Figure 4 — F1 versus corner-case ratio (medium dev, 0% unseen).

Paper shape: every system loses F1 as the corner-case ratio rises from
20% to 80%, with the ranking of systems unchanged.
"""

from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.eval.reporting import figure_series, format_figure


def test_figure4_corner_case_dimension(benchmark, pairwise_results):
    series = benchmark.pedantic(
        lambda: figure_series(
            pairwise_results,
            vary="corner_cases",
            dev_size=DevSetSize.MEDIUM,
            unseen=UnseenRatio.SEEN,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(series, title="=== Figure 4: F1 vs corner-case ratio "
                                      "(medium dev, seen test) ==="))

    for system, points in series.items():
        values = dict(points)
        if "20%" in values and "80%" in values:
            # Corner cases make the task harder (small tolerance for noise).
            assert values["80%"] <= values["20%"] + 0.1, system
