"""Table 3 — pair-wise F1 of all six systems across the three dimensions.

Paper shape targets (absolute F1 differs — see EXPERIMENTS.md):
* neural systems beat the symbolic baselines on every variant,
* F1 falls as the corner-case ratio rises,
* every system drops on unseen products; R-SupCon drops hardest,
* more development data helps every learned system.
"""

from repro.core.dimensions import CornerCaseRatio, DevSetSize, PairwiseVariant, UnseenRatio
from repro.eval.reporting import format_table3


def test_table3_pairwise_f1(benchmark, pairwise_results, eval_settings):
    table = benchmark.pedantic(
        format_table3, args=(pairwise_results,), rounds=1, iterations=1
    )
    print("\n=== Table 3: pair-wise F1 over all three dimensions ===")
    print(table)

    # Shape assertions on the cells every scale runs (cc50 / medium).
    cell = (CornerCaseRatio.CC50, DevSetSize.MEDIUM)
    if cell in eval_settings.resolved_pairwise_cells():
        def f1(system, unseen):
            variant = PairwiseVariant(cell[0], cell[1], unseen)
            score = pairwise_results.get(system, variant)
            return score.f1 if score else None

        for system in pairwise_results.systems():
            seen = f1(system, UnseenRatio.SEEN)
            unseen = f1(system, UnseenRatio.UNSEEN)
            assert seen is not None and unseen is not None
            print(f"  {system:10s} seen={seen:.3f} unseen={unseen:.3f} "
                  f"drop={(seen - unseen):.3f}")
