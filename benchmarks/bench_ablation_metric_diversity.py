"""Ablation — why corner-case selection alternates similarity metrics.

Section 3.4 argues that selecting corner-cases with a *single* metric
would yield a benchmark "that can be easily solved using the DBSCAN
algorithm" (or that one metric).  This ablation quantifies the rationale
on the built benchmark: for each similarity metric, how separable are the
corner negatives from the positives using that metric alone?  With
alternating selection, no single metric should separate them well.
"""

import numpy as np

from repro.core.dimensions import CornerCaseRatio, UnseenRatio
from repro.ml.metrics import precision_recall_f1
from repro.similarity import (
    cosine_similarity,
    dice_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
)

_METRICS = {
    "cosine": cosine_similarity,
    "dice": dice_similarity,
    "jaccard": jaccard_similarity,
    "generalized_jaccard": generalized_jaccard_similarity,
}


def _best_threshold_f1(scores, labels):
    """Best achievable F1 of a single-metric threshold classifier."""
    order = np.argsort(scores)
    best = 0.0
    candidates = np.unique(np.round(scores, 3))
    for threshold in candidates:
        predictions = (scores >= threshold).astype(int)
        best = max(best, precision_recall_f1(labels, predictions.tolist()).f1)
    return best


def _evaluate_metrics(dataset):
    labels = dataset.labels()
    results = {}
    for name, metric in _METRICS.items():
        scores = np.array(
            [metric(p.offer_a.title, p.offer_b.title) for p in dataset.pairs]
        )
        results[name] = _best_threshold_f1(scores, labels)
    return results


def test_ablation_single_metric_cannot_solve_benchmark(benchmark, wdc_benchmark):
    dataset = wdc_benchmark.test_sets[(CornerCaseRatio.CC80, UnseenRatio.SEEN)]
    results = benchmark.pedantic(
        _evaluate_metrics, args=(dataset,), rounds=1, iterations=1
    )

    print("\n=== Ablation: best single-metric threshold F1 on the cc=80% test set ===")
    print("(the alternating-metric selection should defeat every single metric)")
    for name, f1 in sorted(results.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<22} best-threshold F1 = {f1 * 100:5.1f}")

    # No single similarity metric should come close to solving the
    # benchmark — the paper's design goal for metric alternation.
    for name, f1 in results.items():
        assert f1 < 0.85, f"{name} alone nearly solves the benchmark"
