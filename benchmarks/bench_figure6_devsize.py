"""Figure 6 — F1 versus development-set size (50% cc, 0% unseen).

Paper shape: all learned systems improve with more development data;
R-SupCon is the most data-efficient (highest at small).
"""

from repro.core.dimensions import CornerCaseRatio, UnseenRatio
from repro.eval.reporting import figure_series, format_figure


def test_figure6_devsize_dimension(benchmark, pairwise_results):
    series = benchmark.pedantic(
        lambda: figure_series(
            pairwise_results,
            vary="dev_size",
            corner_cases=CornerCaseRatio.CC50,
            unseen=UnseenRatio.SEEN,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(series, title="=== Figure 6: F1 vs development set size "
                                      "(cc=50%, seen test) ==="))

    for system, points in series.items():
        values = dict(points)
        if "Small" in values and "Large" in values:
            assert values["Large"] >= values["Small"] - 0.1, system
