"""Fail CI when a recorded build stage regresses past the committed baseline.

``record_timings.py`` writes the per-stage build timings of a smoke-scale
run; this script compares such a fresh recording against the baseline
committed in-tree (``BENCH_baseline.json``) and exits non-zero when any
build stage exceeds ``tolerance`` times its baseline.  The tolerance is
deliberately generous (default 2.5x) because CI runners are noisy and
slower than the machines baselines are recorded on — the gate is meant to
catch order-of-magnitude regressions (an accidentally de-vectorized hot
loop), not single-digit-percent drift.  Stages below ``--floor`` seconds
in the baseline are held to the floor instead of their own tiny timing,
so sub-millisecond stages cannot trip the gate on scheduler jitter:

    PYTHONPATH=src python benchmarks/record_timings.py --output BENCH_current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json --current BENCH_current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(
    baseline: dict, current: dict, *, tolerance: float, floor: float
) -> list[str]:
    """Human-readable failure lines, empty when every stage is in budget."""
    failures: list[str] = []
    baseline_stages = baseline.get("build_stages", {})
    current_stages = current.get("build_stages", {})
    for stage, base_seconds in sorted(baseline_stages.items()):
        seconds = current_stages.get(stage)
        if seconds is None:
            failures.append(f"{stage}: missing from the current recording")
            continue
        budget = tolerance * max(base_seconds, floor)
        if seconds > budget:
            failures.append(
                f"{stage}: {seconds:.3f}s exceeds {budget:.3f}s "
                f"({tolerance}x baseline {base_seconds:.3f}s)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_baseline.json"))
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="maximum allowed current/baseline ratio per stage (default 2.5)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="baseline seconds floor per stage, absorbs timing jitter on "
        "near-instant stages (default 0.05)",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = compare(
        baseline, current, tolerance=args.tolerance, floor=args.floor
    )
    stages = len(baseline.get("build_stages", {}))
    if failures:
        print(f"perf regression: {len(failures)} of {stages} stages over budget")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"all {stages} build stages within {args.tolerance}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
