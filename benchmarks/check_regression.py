"""Fail CI when a recorded build stage regresses past the committed baseline.

``record_timings.py`` writes the per-stage build timings of a smoke-scale
run; this script compares such a fresh recording against the baseline
committed in-tree (``BENCH_baseline.json``) and exits non-zero when any
build stage exceeds ``tolerance`` times its baseline.  The tolerance is
deliberately generous (default 2.5x) because CI runners are noisy and
slower than the machines baselines are recorded on — the gate is meant to
catch order-of-magnitude regressions (an accidentally de-vectorized hot
loop), not single-digit-percent drift.  Stages below ``--floor`` seconds
in the baseline are held to the floor instead of their own tiny timing,
so sub-millisecond stages cannot trip the gate on scheduler jitter.

Schema-4 baselines with a ``sharding`` section additionally gate the
sharded session: its ``shard:*`` / ``sweep:*`` stage rows get the same
per-stage budgets (schema 5 adds the signature sweep's
``sweep:signatures`` / ``sweep:prune`` / ``sweep:rescore`` rows, so a
de-vectorized index build or a silently disabled prune trips the gate
like any other stage), and the *merged* blocking recall (per-shard split
joins + cross-shard sweeps against the merged benchmark) is held to the
same floors as the single-corpus join.

Schema-6 baselines with a ``chaos`` section gate the fault-injected
chaos smoke *within the current recording*: the session with an injected
worker crash and an injected over-budget hang must have completed
through supervised retries (at least one retry per injected fault),
undegraded, with the merged recall floors intact.

Schema-7 baselines with a ``store`` section gate the out-of-core
economics *within the current recording* (same machine, same run, so no
tolerance): the store-backed session's peak RSS must be strictly below
the in-memory session's at the same recorded scale, with identical
candidate counts — lazy worker opens and SQL-windowed merges have to
actually save memory, not just move it.

Schema-8 baselines with a ``serve`` section gate the online serving
layer: delta-determinism parity (the mutated live shards must equal a
cold rebuild — an exactness claim checked *within* the current
recording) and bounded admission (the overload burst must shed with the
typed error) are strict; the sustained p99 latency and QPS compare
against the baseline under the same generous ``tolerance`` as the stage
budgets, with sub-floor baseline p99s held to a 50ms floor so scheduler
noise on loaded runners cannot trip the gate.

Baselines with a ``sweep_scaling`` section gate the sweep-scaling
economics *within the current recording* (machine-independent, so no
tolerance is involved): the N-shard signature sweep must beat the
exhaustive sweep of the same corpus paired into N/2 shards on
wall-clock, and must prune at least ``--min-prune-ratio`` of the shard
pairs or of the rescored rows.  The default-scale ``shard_scaling``
section is informational only (CI smoke runs never record it) and is
ignored here.

    PYTHONPATH=src python benchmarks/record_timings.py --shards 2 \
        --output BENCH_current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json --current BENCH_current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Oldest recording schema this gate understands.  Schema 8 added the
# serve section (online match-serving QPS/p99 with delta-determinism
# parity); older recordings are missing the fields the gates below
# read, so they fail up front with a regenerate message instead of a
# KeyError mid-compare.
MIN_SCHEMA = 8

# Baselines below this p99 are held to the floor instead: sub-floor
# latencies are scheduler noise, and gating 2.5x of a 3ms baseline
# would fail healthy runs on any loaded CI machine.
SERVE_P99_FLOOR_MS = 50.0


def _load_recording(path: Path, role: str) -> dict | str:
    """The parsed recording, or a one-line refusal naming what is wrong.

    Every refusal is actionable on its own: which file (baseline vs
    current), what is broken (missing, truncated, pre-schema, stale
    schema) and what to run to fix it.
    """
    regenerate = (
        "regenerate it with: PYTHONPATH=src python "
        "benchmarks/record_timings.py --shards 2 --sweep-scaling 8 "
        f"--chaos 3 --store-rss 8 --serve 400 --output {path}"
    )
    if not path.exists():
        return f"{role} recording {path} does not exist — {regenerate}"
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        return f"{role} recording {path} is unreadable ({error}) — {regenerate}"
    except json.JSONDecodeError as error:
        return (
            f"{role} recording {path} is not valid JSON (truncated "
            f"write? {error.msg} at line {error.lineno}) — {regenerate}"
        )
    if not isinstance(payload, dict):
        return (
            f"{role} recording {path} is a JSON "
            f"{type(payload).__name__}, not an object — {regenerate}"
        )
    schema = payload.get("schema")
    if not isinstance(schema, int):
        return (
            f"{role} recording {path} carries no schema marker (predates "
            f"schema versioning) — {regenerate}"
        )
    if schema < MIN_SCHEMA:
        return (
            f"{role} recording {path} uses schema {schema}, older than "
            f"the oldest supported schema {MIN_SCHEMA} — {regenerate}"
        )
    return payload


def _stage_failures(
    baseline_stages: dict,
    current_stages: dict,
    *,
    tolerance: float,
    floor: float,
    label: str = "",
) -> list[str]:
    failures: list[str] = []
    prefix = f"{label}:" if label else ""
    for stage, base_seconds in sorted(baseline_stages.items()):
        seconds = current_stages.get(stage)
        if seconds is None:
            failures.append(
                f"{prefix}{stage}: missing from the current recording"
            )
            continue
        budget = tolerance * max(base_seconds, floor)
        if seconds > budget:
            failures.append(
                f"{prefix}{stage}: {seconds:.3f}s exceeds {budget:.3f}s "
                f"({tolerance}x baseline {base_seconds:.3f}s)"
            )
    return failures


def _recall_failures(
    section: dict,
    *,
    label: str,
    min_positive_recall: float,
    min_corner_recall: float,
    min_join_positive_recall: float,
) -> list[str]:
    """Floor checks for one {recall, join_recall} recording.

    Two recordings are gated: the training-shaped ``recall`` (group
    positives completed — its positive recall is 1.0 by construction, so
    its gate only catches a broken completion) and the raw ``join_recall``
    (no completion), which is where a degraded top-k join would actually
    show up.  Recall is deterministic for a fixed seed, so these floors
    are tight, not noise-padded.
    """
    recall = section.get("recall")
    join = section.get("join_recall")
    if recall is None or join is None:
        return [f"{label}: recall missing from the current recording"]
    failures: list[str] = []
    positives = recall.get("positive_recall", 0.0)
    if positives < min_positive_recall:
        failures.append(
            f"{label}: completed positive recall {positives:.4f} "
            f"below {min_positive_recall} (group completion broken)"
        )
    join_positives = join.get("positive_recall", 0.0)
    if join_positives < min_join_positive_recall:
        failures.append(
            f"{label}: join positive recall {join_positives:.4f} "
            f"below {min_join_positive_recall}"
        )
    corners = join.get("corner_negative_recall", 0.0)
    if corners < min_corner_recall:
        failures.append(
            f"{label}: join corner-negative recall {corners:.4f} "
            f"below {min_corner_recall}"
        )
    return failures


def _sweep_scaling_failures(
    section: dict | None, *, min_prune_ratio: float
) -> list[str]:
    """The sweep-scaling assertions, evaluated on the current recording.

    Both are intra-recording comparisons (signature vs exhaustive on the
    same machine in the same run), so they are strict — a slower CI
    runner slows both sides alike and cannot flip them.
    """
    if section is None:
        return [
            "sweep_scaling: missing from the current recording "
            "(run record_timings.py --sweep-scaling N)"
        ]
    failures: list[str] = []
    signature = section.get("signature_sweep_seconds")
    exhaustive = section.get("exhaustive_paired_sweep_seconds")
    if signature is None or exhaustive is None:
        return ["sweep_scaling: sweep seconds missing from the recording"]
    if signature >= exhaustive:
        failures.append(
            f"sweep_scaling: signature sweep at {section.get('n_shards')} "
            f"shards took {signature:.2f}s, not below the exhaustive "
            f"{section.get('paired_shards')}-shard sweep's "
            f"{exhaustive:.2f}s — the signature index no longer pays for "
            "itself"
        )
    stats = section.get("sweep_stats", {})
    pruned = max(
        stats.get("pair_prune_ratio", 0.0), stats.get("row_prune_ratio", 0.0)
    )
    if pruned < min_prune_ratio:
        failures.append(
            f"sweep_scaling: pruned {pruned:.1%} of shard pairs / rescored "
            f"rows, below the {min_prune_ratio:.0%} floor"
        )
    return failures


def _chaos_failures(section: dict | None, *, recall_floors: dict) -> list[str]:
    """The chaos-smoke assertions, evaluated on the current recording.

    All intra-recording (no baseline timing involved): the fault-injected
    session must have completed, recovered every injected fault through a
    retry (so ``retries >= injected_faults``) without degrading, and its
    merged recall must clear the same floors as the healthy session.
    """
    if section is None:
        return [
            "chaos: missing from the current recording "
            "(run record_timings.py --chaos N)"
        ]
    if not section.get("completed"):
        return [
            "chaos: the fault-injected session did not complete — "
            f"{section.get('error', 'no error recorded')}"
        ]
    failures: list[str] = []
    expected = section.get("injected_faults", 1)
    retries = section.get("retries", 0)
    if retries < expected:
        failures.append(
            f"chaos: {retries} retries recorded for {expected} injected "
            "faults — the supervisor did not retry every fault"
        )
    if section.get("degraded"):
        failures.append(
            "chaos: session completed degraded — a fault exhausted its "
            "retry budget instead of recovering"
        )
    failures.extend(_recall_failures(section, label="chaos", **recall_floors))
    return failures


def _store_failures(section: dict | None) -> list[str]:
    """The out-of-core assertions, evaluated on the current recording.

    Intra-recording comparisons (both modes ran on this machine in this
    run, in their own spawned subprocesses), so they are strict: the
    store-backed session must use strictly less peak RSS than the
    in-memory one, and must have produced the identical candidate sets
    — a memory win bought by dropping candidates is a correctness bug,
    not an optimization.
    """
    if section is None:
        return [
            "store: missing from the current recording "
            "(run record_timings.py --store-rss N)"
        ]
    memory = section.get("in_memory")
    sqlite = section.get("sqlite")
    if memory is None or sqlite is None:
        return ["store: probe modes missing from the recording"]
    failures: list[str] = []
    for mode, probe in (("in_memory", memory), ("sqlite", sqlite)):
        if probe.get("degraded"):
            failures.append(
                f"store: the {mode} probe session completed degraded"
            )
    memory_peak = memory.get("peak_rss_kb", 0)
    sqlite_peak = sqlite.get("peak_rss_kb", 0)
    if sqlite_peak >= memory_peak:
        failures.append(
            f"store: store-backed peak RSS {sqlite_peak} KB is not below "
            f"the in-memory session's {memory_peak} KB at "
            f"{section.get('n_shards')} shards ({section.get('scale')} "
            "scale) — the out-of-core path no longer saves memory"
        )
    for count in ("candidates", "join_candidates", "positives"):
        if memory.get(count) != sqlite.get(count):
            failures.append(
                f"store: {count} differ between modes "
                f"(in_memory={memory.get(count)}, "
                f"sqlite={sqlite.get(count)}) — the store-backed merge "
                "is not byte-equivalent"
            )
    return failures


def _serve_failures(
    section: dict | None,
    baseline_section: dict,
    *,
    tolerance: float,
) -> list[str]:
    """The online-serving gates: parity outright, QPS/p99 vs baseline.

    The structural claims are intra-recording and strict — the mutated
    shards must equal their cold rebuilds (delta determinism) and the
    overload burst must shed with the typed error (bounded admission
    works).  The performance claims compare against the baseline with
    the same generous ``tolerance`` as the stage budgets: p99 no worse
    than ``tolerance``× the (floored) baseline p99, sustained QPS no
    lower than baseline/``tolerance``.
    """
    if section is None:
        return [
            "serve: missing from the current recording "
            "(run record_timings.py --serve N)"
        ]
    failures: list[str] = []
    parity = section.get("parity", {})
    for claim in ("clusters_equal", "scores_equal"):
        if parity.get(claim) is not True:
            failures.append(
                f"serve: delta-determinism parity broken — {claim} is "
                f"{parity.get(claim)!r}; live mutated shards no longer "
                "equal a cold rebuild"
            )
    if not section.get("completed_queries"):
        failures.append("serve: no queries completed during the workload")
    if section.get("shed"):
        failures.append(
            f"serve: {section['shed']} operations shed during the "
            "sustained workload — with concurrency below max_pending the "
            "admission queue must never fill"
        )
    burst = section.get("overload_burst", {})
    if not burst.get("shed"):
        failures.append(
            "serve: the overload burst shed nothing — bounded admission "
            "is not applying backpressure"
        )
    baseline_p99 = max(
        float(baseline_section.get("p99_ms", 0.0)), SERVE_P99_FLOOR_MS
    )
    current_p99 = float(section.get("p99_ms", 0.0))
    if current_p99 > tolerance * baseline_p99:
        failures.append(
            f"serve: p99 latency {current_p99:.1f}ms exceeds "
            f"{tolerance}x the baseline's {baseline_p99:.1f}ms "
            "(floored) — the query path regressed"
        )
    baseline_qps = float(baseline_section.get("qps", 0.0))
    current_qps = float(section.get("qps", 0.0))
    if current_qps * tolerance < baseline_qps:
        failures.append(
            f"serve: sustained throughput {current_qps:.0f} QPS fell "
            f"below baseline {baseline_qps:.0f} QPS / {tolerance} — "
            "the micro-batching path regressed"
        )
    return failures


def compare(
    baseline: dict,
    current: dict,
    *,
    tolerance: float,
    floor: float,
    min_positive_recall: float = 0.999,
    min_corner_recall: float = 0.95,
    min_join_positive_recall: float = 0.95,
    min_prune_ratio: float = 0.5,
) -> list[str]:
    """Human-readable failure lines, empty when every stage is in budget.

    Besides the per-stage timing budgets, a baseline that records a
    ``blocking`` section gates the blocking *recall* (candidate blocking
    is only a valid pair-set replacement while it keeps recovering the
    materialized positives and ≥95% of the corner negatives), and a
    baseline with a ``sharding`` section gates the sharded session's
    stage rows and merged recall with the same budgets and floors.
    """
    failures = _stage_failures(
        baseline.get("build_stages", {}),
        current.get("build_stages", {}),
        tolerance=tolerance,
        floor=floor,
    )
    recall_floors = dict(
        min_positive_recall=min_positive_recall,
        min_corner_recall=min_corner_recall,
        min_join_positive_recall=min_join_positive_recall,
    )
    if "blocking" in baseline:
        failures.extend(
            _recall_failures(
                current.get("blocking", {}), label="blocking", **recall_floors
            )
        )
    if "sharding" in baseline:
        sharding = current.get("sharding")
        if sharding is None:
            failures.append(
                "sharding: missing from the current recording "
                "(run record_timings.py --shards N)"
            )
        else:
            base_sharding = baseline["sharding"]
            if sharding.get("n_shards") != base_sharding.get("n_shards"):
                failures.append(
                    f"sharding: recorded {sharding.get('n_shards')} shards, "
                    f"baseline has {base_sharding.get('n_shards')} — stage "
                    "rows are not comparable"
                )
            else:
                failures.extend(
                    _stage_failures(
                        base_sharding.get("build_stages", {}),
                        sharding.get("build_stages", {}),
                        tolerance=tolerance,
                        floor=floor,
                        label="sharding",
                    )
                )
                failures.extend(
                    _recall_failures(
                        sharding, label="sharding", **recall_floors
                    )
                )
    if "sweep_scaling" in baseline:
        failures.extend(
            _sweep_scaling_failures(
                current.get("sweep_scaling"),
                min_prune_ratio=min_prune_ratio,
            )
        )
    if "chaos" in baseline:
        failures.extend(
            _chaos_failures(
                current.get("chaos"), recall_floors=recall_floors
            )
        )
    if "store" in baseline:
        failures.extend(_store_failures(current.get("store")))
    if "serve" in baseline:
        failures.extend(
            _serve_failures(
                current.get("serve"),
                baseline["serve"],
                tolerance=tolerance,
            )
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_baseline.json"))
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="maximum allowed current/baseline ratio per stage (default 2.5)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="baseline seconds floor per stage, absorbs timing jitter on "
        "near-instant stages (default 0.05)",
    )
    parser.add_argument(
        "--min-positive-recall",
        type=float,
        default=0.999,
        help="minimum blocking positive recall (default 0.999; the group "
        "completion makes 1.0 the deterministic expectation)",
    )
    parser.add_argument(
        "--min-corner-recall",
        type=float,
        default=0.95,
        help="minimum blocking corner-negative recall of the raw join "
        "(default 0.95)",
    )
    parser.add_argument(
        "--min-join-positive-recall",
        type=float,
        default=0.95,
        help="minimum positive recall of the raw top-k join, before "
        "group-positive completion (default 0.95)",
    )
    parser.add_argument(
        "--min-prune-ratio",
        type=float,
        default=0.5,
        help="minimum fraction of shard pairs or rescored rows the "
        "signature sweep must prune in the sweep_scaling probe "
        "(default 0.5)",
    )
    args = parser.parse_args()

    baseline = _load_recording(args.baseline, "baseline")
    current = _load_recording(args.current, "current")
    load_errors = [
        recording
        for recording in (baseline, current)
        if isinstance(recording, str)
    ]
    if load_errors:
        for line in load_errors:
            print(line)
        return 1
    failures = compare(
        baseline,
        current,
        tolerance=args.tolerance,
        floor=args.floor,
        min_positive_recall=args.min_positive_recall,
        min_corner_recall=args.min_corner_recall,
        min_join_positive_recall=args.min_join_positive_recall,
        min_prune_ratio=args.min_prune_ratio,
    )
    stages = len(baseline.get("build_stages", {})) + len(
        baseline.get("sharding", {}).get("build_stages", {})
    )
    if failures:
        print(f"perf regression: {len(failures)} checks failed over {stages} stages")
        for line in failures:
            print(f"  {line}")
        return 1
    recall_summary = (
        f"pos>={args.min_positive_recall}, "
        f"join-pos>={args.min_join_positive_recall}, "
        f"corner>={args.min_corner_recall}"
    )
    print(
        f"checked {stages} stage budgets at {args.tolerance}x baseline "
        f"(floor {args.floor}s)"
    )
    if "blocking" in baseline:
        print(f"checked blocking recall floors ({recall_summary})")
    if "sharding" in baseline:
        print(
            "checked sharded session stages + merged recall "
            f"(same budgets, {recall_summary})"
        )
    if "sweep_scaling" in baseline:
        print(
            "checked sweep scaling (signature beats exhaustive, "
            f"prune>={args.min_prune_ratio:.0%})"
        )
    if "chaos" in baseline:
        chaos = current.get("chaos", {})
        print(
            "checked chaos smoke (completed via "
            f"{chaos.get('retries', '?')} retries for "
            f"{chaos.get('injected_faults', '?')} injected faults, "
            f"undegraded, {recall_summary})"
        )
    if "store" in baseline:
        store = current.get("store", {})
        memory_peak = store.get("in_memory", {}).get("peak_rss_kb", 0)
        sqlite_peak = store.get("sqlite", {}).get("peak_rss_kb", 0)
        ratio = sqlite_peak / memory_peak if memory_peak else float("nan")
        print(
            "checked out-of-core store (peak RSS "
            f"{sqlite_peak} KB vs {memory_peak} KB in-memory, "
            f"{ratio:.2f}x, identical candidate counts)"
        )
    if "serve" in baseline:
        serve = current.get("serve", {})
        print(
            "checked online serving "
            f"({serve.get('qps', 0):.0f} QPS, "
            f"p99 {serve.get('p99_ms', 0):.1f}ms, "
            "delta-determinism parity, overload sheds)"
        )
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
