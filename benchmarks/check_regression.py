"""Fail CI when a recorded build stage regresses past the committed baseline.

``record_timings.py`` writes the per-stage build timings of a smoke-scale
run; this script compares such a fresh recording against the baseline
committed in-tree (``BENCH_baseline.json``) and exits non-zero when any
build stage exceeds ``tolerance`` times its baseline.  The tolerance is
deliberately generous (default 2.5x) because CI runners are noisy and
slower than the machines baselines are recorded on — the gate is meant to
catch order-of-magnitude regressions (an accidentally de-vectorized hot
loop), not single-digit-percent drift.  Stages below ``--floor`` seconds
in the baseline are held to the floor instead of their own tiny timing,
so sub-millisecond stages cannot trip the gate on scheduler jitter:

    PYTHONPATH=src python benchmarks/record_timings.py --output BENCH_current.json
    python benchmarks/check_regression.py \
        --baseline BENCH_baseline.json --current BENCH_current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(
    baseline: dict,
    current: dict,
    *,
    tolerance: float,
    floor: float,
    min_positive_recall: float = 0.999,
    min_corner_recall: float = 0.95,
    min_join_positive_recall: float = 0.95,
) -> list[str]:
    """Human-readable failure lines, empty when every stage is in budget.

    Besides the per-stage timing budgets, a baseline that records a
    ``blocking`` section gates the blocking *recall*: candidate blocking
    is only a valid pair-set replacement while it keeps recovering the
    materialized positives and ≥95% of the corner negatives.  Two
    recordings are gated: the training-shaped ``recall`` (group
    positives completed — its positive recall is 1.0 by construction, so
    its gate only catches a broken completion) and the raw ``join_recall``
    (no completion), which is where a degraded top-k join would actually
    show up.  Recall is deterministic for a fixed seed, so these floors
    are tight, not noise-padded.
    """
    failures: list[str] = []
    baseline_stages = baseline.get("build_stages", {})
    current_stages = current.get("build_stages", {})
    for stage, base_seconds in sorted(baseline_stages.items()):
        seconds = current_stages.get(stage)
        if seconds is None:
            failures.append(f"{stage}: missing from the current recording")
            continue
        budget = tolerance * max(base_seconds, floor)
        if seconds > budget:
            failures.append(
                f"{stage}: {seconds:.3f}s exceeds {budget:.3f}s "
                f"({tolerance}x baseline {base_seconds:.3f}s)"
            )
    if "blocking" in baseline:
        blocking = current.get("blocking", {})
        recall = blocking.get("recall")
        join = blocking.get("join_recall")
        if recall is None or join is None:
            failures.append("blocking: recall missing from the current recording")
        else:
            positives = recall.get("positive_recall", 0.0)
            if positives < min_positive_recall:
                failures.append(
                    f"blocking: completed positive recall {positives:.4f} "
                    f"below {min_positive_recall} (group completion broken)"
                )
            join_positives = join.get("positive_recall", 0.0)
            if join_positives < min_join_positive_recall:
                failures.append(
                    f"blocking: join positive recall {join_positives:.4f} "
                    f"below {min_join_positive_recall}"
                )
            corners = join.get("corner_negative_recall", 0.0)
            if corners < min_corner_recall:
                failures.append(
                    f"blocking: join corner-negative recall {corners:.4f} "
                    f"below {min_corner_recall}"
                )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_baseline.json"))
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="maximum allowed current/baseline ratio per stage (default 2.5)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="baseline seconds floor per stage, absorbs timing jitter on "
        "near-instant stages (default 0.05)",
    )
    parser.add_argument(
        "--min-positive-recall",
        type=float,
        default=0.999,
        help="minimum blocking positive recall (default 0.999; the group "
        "completion makes 1.0 the deterministic expectation)",
    )
    parser.add_argument(
        "--min-corner-recall",
        type=float,
        default=0.95,
        help="minimum blocking corner-negative recall of the raw join "
        "(default 0.95)",
    )
    parser.add_argument(
        "--min-join-positive-recall",
        type=float,
        default=0.95,
        help="minimum positive recall of the raw top-k join, before "
        "group-positive completion (default 0.95)",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = compare(
        baseline,
        current,
        tolerance=args.tolerance,
        floor=args.floor,
        min_positive_recall=args.min_positive_recall,
        min_corner_recall=args.min_corner_recall,
        min_join_positive_recall=args.min_join_positive_recall,
    )
    stages = len(baseline.get("build_stages", {}))
    if failures:
        print(f"perf regression: {len(failures)} checks failed over {stages} stages")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"all {stages} build stages within {args.tolerance}x of baseline"
        + ("; blocking recall in budget" if "blocking" in baseline else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
