"""Table 2 — attribute density, median lengths and vocabulary.

Paper profile: title 100% dense / median 8 words; description ~75% / ~32
words; price ~93%, priceCurrency ~90%, brand ~35% (all median 1 word);
17-20k unique words per merged set.
"""

from repro.core import table2_profile


def test_table2_attribute_profile(benchmark, wdc_benchmark):
    rows = benchmark.pedantic(
        table2_profile, args=(wdc_benchmark,), rounds=1, iterations=1
    )

    print("\n=== Table 2: attribute density / median length / vocabulary ===")
    header = (
        f"{'Size':<7} {'CC':<4} {'#Ent':>5} | "
        f"{'title':>9} {'descr':>9} {'price':>9} {'curr':>9} {'brand':>9} | "
        f"{'words':>7} {'tokens':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = " ".join(
            f"{row.density[attr]:>4.0f}/{row.median_length[attr]:<3}"
            for attr in ("title", "description", "price", "priceCurrency", "brand")
        )
        print(
            f"{row.dev_size:<7} {row.corner_cases:<4} {row.n_entities:>5} | "
            f"{cells} | {row.vocabulary_words:>7} {row.vocabulary_tokens:>7}"
        )

    for row in rows:
        assert row.density["title"] == 100.0
        assert row.median_length["title"] <= row.median_length["description"]
        assert row.density["brand"] < row.density["price"]
        assert row.vocabulary_words > 0
