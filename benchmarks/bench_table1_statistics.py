"""Table 1 — split statistics of the benchmark.

Regenerates the pair-wise (all/pos/neg) and multi-class split sizes per
corner-case ratio and development-set size.  Paper values (500 products):
small train 2,500/500/2,000; medium 6,000/1,500/4,500; large
~19.8k/~8.5k/~11.4k; every test set exactly 4,500/500/4,000.
"""

from repro.core import table1_statistics


def test_table1_split_statistics(benchmark, wdc_benchmark, artifacts):
    rows = benchmark.pedantic(
        table1_statistics, args=(wdc_benchmark,), rounds=1, iterations=1
    )

    print("\n=== Table 1: benchmark split statistics ===")
    header = (
        f"{'Type':<11} {'CC':<4} | {'pair small':>17} {'pair medium':>17} "
        f"{'pair large':>17} | {'mc S':>6} {'mc M':>6} {'mc L':>6}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        pairwise = " ".join(
            f"{counts[0]:>6}/{counts[1]:>4}/{counts[2]:>5}"
            for counts in (
                row.pairwise["small"], row.pairwise["medium"], row.pairwise["large"]
            )
        )
        multiclass = " ".join(
            f"{row.multiclass[size]:>6}" for size in ("small", "medium", "large")
        )
        print(f"{row.split_type:<11} {row.corner_cases:<4} | {pairwise} | {multiclass}")

    # Structural assertions mirroring the paper's fixed sizes (scaled to
    # the configured product count).
    n = artifacts.config.n_products
    for row in rows:
        if row.split_type == "Test":
            for all_, pos, neg in row.pairwise.values():
                assert all_ == 9 * n and pos == n and neg == 8 * n
        if row.split_type == "Training":
            assert row.pairwise["small"] == (5 * n, n, 4 * n)
            assert row.pairwise["medium"] == (12 * n, 3 * n, 9 * n)
        if row.split_type == "Validation":
            assert row.pairwise["small"] == (5 * n, n, 4 * n)
            assert row.pairwise["medium"] == (7 * n, n, 6 * n)
            assert row.pairwise["large"] == (9 * n, n, 8 * n)
