"""Table 4 — precision and recall of the neural matching systems.

Paper shape: the unseen dimension hits *precision* hard while recall stays
high for the cross-encoders; R-SupCon loses on both, explaining its large
F1 drop.
"""

from repro.core.dimensions import CornerCaseRatio, DevSetSize, PairwiseVariant, UnseenRatio
from repro.eval.reporting import format_table4


def test_table4_precision_recall(benchmark, pairwise_results, eval_settings):
    table = benchmark.pedantic(
        format_table4, args=(pairwise_results,), rounds=1, iterations=1
    )
    print("\n=== Table 4: precision/recall of the neural systems ===")
    print(table)

    cell = (CornerCaseRatio.CC50, DevSetSize.MEDIUM)
    if cell in eval_settings.resolved_pairwise_cells():
        for system in pairwise_results.systems():
            seen = pairwise_results.get(
                system, PairwiseVariant(cell[0], cell[1], UnseenRatio.SEEN)
            )
            unseen = pairwise_results.get(
                system, PairwiseVariant(cell[0], cell[1], UnseenRatio.UNSEEN)
            )
            if seen and unseen:
                print(
                    f"  {system:10s} precision {seen.precision:.3f} -> "
                    f"{unseen.precision:.3f} | recall {seen.recall:.3f} -> "
                    f"{unseen.recall:.3f}"
                )
