"""Figure 3 — cluster sizes and offer-to-split distribution.

The paper depicts seen clusters of size 7-15 contributing 2 offers to
validation, 2 to test and the rest to training, and unseen clusters of
size 2-6 contributing exactly 2 test offers.
"""

from collections import Counter

from repro.core.dimensions import CornerCaseRatio, UnseenRatio


def _histogram(split):
    sizes = Counter()
    assignment = Counter()
    for product in split.seen:
        total = len(product.train_large) + len(product.valid) + len(product.test)
        sizes[total] += 1
        assignment["train"] += len(product.train_large)
        assignment["valid"] += len(product.valid)
        assignment["test"] += len(product.test)
    unseen_sizes = Counter(
        len(tp.offers) for tp in split.test_sets[UnseenRatio.UNSEEN]
    )
    return sizes, assignment, unseen_sizes


def test_figure3_cluster_sizes_and_split_assignment(benchmark, artifacts):
    split = artifacts.splits[CornerCaseRatio.CC80]
    sizes, assignment, unseen_sizes = benchmark.pedantic(
        _histogram, args=(split,), rounds=1, iterations=1
    )

    print("\n=== Figure 3: cluster sizes and split distribution (cc=80%) ===")
    print("seen cluster sizes (after 15-offer cap):")
    for size in sorted(sizes):
        print(f"  {size:>3} offers: {'#' * sizes[size]} ({sizes[size]})")
    total = sum(assignment.values())
    print("offer assignment across splits:")
    for name in ("train", "valid", "test"):
        print(f"  {name:<6} {assignment[name]:>6,} ({assignment[name] / total:.0%})")
    print("unseen test products use exactly "
          f"{set(unseen_sizes)} offers each (paper: 2)")

    assert min(sizes) >= 7 and max(sizes) <= 15
    n = len(split.seen)
    assert assignment["valid"] == 2 * n
    assert assignment["test"] == 2 * n
    assert set(unseen_sizes) == {2}
