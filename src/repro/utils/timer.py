"""A small wall-clock timer used by the pipeline stage reports."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start
