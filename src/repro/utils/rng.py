"""Deterministic random-number helpers.

Every stochastic stage of the benchmark-creation pipeline (corpus
generation, corner-case selection, splitting, pair generation) receives its
own named random stream derived from a single master seed.  This makes the
whole benchmark build reproducible bit-for-bit while keeping the stages
statistically independent: changing how many random draws one stage makes
does not perturb any other stage.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngStream"]

_SEED_MODULUS = 2**32


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``master_seed`` and a path of stream names.

    The derivation hashes the names so that streams are independent of the
    order in which they are created and of one another.

    >>> derive_seed(7, "selection", "80cc") != derive_seed(7, "splitting", "80cc")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") % _SEED_MODULUS


def spawn_rng(master_seed: int, *names: str | int) -> np.random.Generator:
    """Create a numpy Generator for the stream identified by ``names``."""
    return np.random.default_rng(derive_seed(master_seed, *names))


class RngStream:
    """A hierarchical factory of named, independent random generators.

    >>> stream = RngStream(42)
    >>> rng_a = stream.generator("corpus")
    >>> rng_b = stream.child("core").generator("selection")
    """

    def __init__(self, master_seed: int, *path: str | int):
        self.master_seed = int(master_seed)
        self.path: tuple[str | int, ...] = tuple(path)

    def child(self, *names: str | int) -> "RngStream":
        """Return a sub-stream rooted at ``path + names``."""
        return RngStream(self.master_seed, *self.path, *names)

    def generator(self, *names: str | int) -> np.random.Generator:
        """Instantiate a numpy Generator for ``path + names``."""
        return spawn_rng(self.master_seed, *self.path, *names)

    def seed(self, *names: str | int) -> int:
        """Return the integer seed for ``path + names``."""
        return derive_seed(self.master_seed, *self.path, *names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(seed={self.master_seed}, path={self.path!r})"
