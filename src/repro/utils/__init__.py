"""Shared utilities: seeded randomness, timing, and configuration helpers."""

from repro.utils.rng import RngStream, derive_seed, spawn_rng
from repro.utils.timer import Timer

__all__ = ["RngStream", "derive_seed", "spawn_rng", "Timer"]
