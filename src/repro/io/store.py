"""The out-of-core artifact store: SQLite schema + mmap sidecar arrays.

Everything a shard build produces used to live as one whole-object
pickle, which forced three expensive shapes on the session layer: worker
processes returned multi-hundred-MB ``BuildArtifacts`` graphs through the
pool, the parent held every shard's graph at once, and resume
verification re-read entire payloads into memory.  This module replaces
the pickle payload with a *queryable* on-disk layout per shard::

    <shard dir>/
      manifest.json            # commit point: schema, fingerprints,
                               # per-file sha256, stage timings
      shard.db                 # SQLite: offers, clusters, tokens,
                               # pair/multiclass datasets, split entries,
                               # selections, blocked candidates
      incidence_data.npy       # CSR token-incidence matrix, verbatim
      incidence_indices.npy    #   (dtypes preserved, mmap-loadable)
      incidence_indptr.npy
      set_sizes.npy            # per-row token-set sizes (float64)
      token_keys.npy           # canonical token-set ids (intp)
      embeddings.npy           # LSA embedding matrix (when fitted)

Write protocol (one writer at a time, enforced with an exclusive
``writer.lock``): every payload file is written to a temp name and
atomically renamed, the manifest last — a writer killed mid-store leaves
either no manifest (store ignored) or a complete pair whose streamed
sha256 verification decides trust.  A store that fails verification is
*refused* with a typed :class:`~repro.errors.StoreError` in strict mode
and treated as missing (rebuild the shard) otherwise — exactly the
checkpoint contract, now queryable.

:class:`StoredShard` is the read side: duck-type compatible with the
slice of :class:`~repro.core.builder.BuildArtifacts` the shard session
consumes (``cleansed`` / ``engine`` / ``benchmark`` / ``splits`` /
``stage_timings`` / ``pretraining_clusters`` / ``blocked_candidates``),
with every piece loaded lazily — the engine's incidence matrix and
signature vectors memory-map straight off the sidecars, so opening a
shard costs metadata, not a deserialized object graph.
:class:`StoredShardHandle` is the picklable token workers hand back
across the pool boundary instead of artifacts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np
from scipy.sparse import csr_matrix

from repro.blocking.candidates import BlockedPair, BlockedPairSet, CandidateBlocker
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.corpus.schema import ProductOffer, SyntheticCorpus
from repro.errors import StoreError
from repro.similarity.engine import SimilarityEngine
from repro.similarity.features import BoundedPairCache
from repro.similarity.signatures import RowSignatures

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (builder imports us)
    from repro.core.builder import BuildArtifacts, BuildConfig

__all__ = [
    "STORE_SCHEMA",
    "ArtifactStore",
    "StoredShard",
    "StoredShardHandle",
    "StoredSplit",
    "write_store",
    "append_store",
    "verify_store",
    "open_store",
    "amend_manifest",
    "config_fingerprint",
    "offer_to_row",
    "row_to_offer",
    "OFFER_COLUMNS",
]

STORE_SCHEMA = 1

_MANIFEST = "manifest.json"
_DB = "shard.db"
_LOCK = "writer.lock"
_HASH_CHUNK = 1 << 20

# The 12 ProductOffer fields, in declaration order — the one column order
# every offers table (per-shard and merged) shares.
OFFER_COLUMNS = tuple(field.name for field in dataclasses.fields(ProductOffer))

_OFFER_COLUMN_SQL = ", ".join(
    f"{name} {'REAL' if name == 'price' else 'TEXT'}" for name in OFFER_COLUMNS
)


def offer_to_row(offer: ProductOffer) -> tuple:
    """The offer's 12 fields as one DB row, in ``OFFER_COLUMNS`` order."""
    return tuple(getattr(offer, name) for name in OFFER_COLUMNS)


def row_to_offer(row: Iterable) -> ProductOffer:
    """Rebuild a :class:`ProductOffer` from one ``OFFER_COLUMNS`` row."""
    return ProductOffer(*row)


# --------------------------------------------------------------------- #
# Config fingerprints (moved here from shard/checkpoint.py — the store is
# the layer both checkpoints and sessions key resume identity on).
# --------------------------------------------------------------------- #
def _jsonable(value: Any) -> Any:
    """A stable, JSON-serializable projection of a config value tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def config_fingerprint(config: "BuildConfig") -> str:
    """sha256 over the config's stable JSON projection.

    Two configs fingerprint equally iff every field (nested dataclasses,
    enums and tuples included) is equal — the identity a checkpoint or
    store is keyed on.
    """
    payload = json.dumps(_jsonable(config), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


# --------------------------------------------------------------------- #
# Low-level file plumbing
# --------------------------------------------------------------------- #
def stream_sha256(path: Path) -> str | None:
    """Chunked sha256 of ``path`` — never loads the file whole.

    Returns ``None`` when the file is missing/unreadable, so callers can
    fold "absent" and "corrupt" into one verification flow.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            while chunk := handle.read(_HASH_CHUNK):
                digest.update(chunk)
    except OSError:
        return None
    return digest.hexdigest()


def _atomic_replace(temp: Path, final: Path) -> None:
    os.replace(temp, final)


def _write_array(path: Path, array: np.ndarray) -> None:
    temp = path.with_suffix(path.suffix + ".tmp")
    with open(temp, "wb") as handle:
        np.save(handle, np.ascontiguousarray(array))
    _atomic_replace(temp, path)


def _write_json(path: Path, payload: dict) -> None:
    temp = path.with_suffix(path.suffix + ".tmp")
    temp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    _atomic_replace(temp, path)


@contextmanager
def _writer_lock(directory: Path):
    """Exclusive write lock: a second concurrent writer refuses, typed."""
    lock_path = directory / _LOCK
    try:
        descriptor = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        raise StoreError(
            f"artifact store at {directory} is locked by another writer "
            f"({_LOCK} exists — concurrent write, or a crashed writer left "
            "a stale lock)"
        ) from None
    os.close(descriptor)
    try:
        yield
    finally:
        try:
            os.unlink(lock_path)
        except OSError:
            pass


# --------------------------------------------------------------------- #
# SQLite schema
# --------------------------------------------------------------------- #
_DDL = f"""
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE offers (oid INTEGER PRIMARY KEY, {_OFFER_COLUMN_SQL});
CREATE INDEX offers_by_id ON offers (offer_id);
CREATE TABLE corpus_rows (
    row INTEGER PRIMARY KEY,
    oid INTEGER NOT NULL REFERENCES offers (oid)
);
CREATE TABLE clusters (
    cluster_id TEXT PRIMARY KEY,
    category TEXT NOT NULL,
    family_id TEXT NOT NULL
);
CREATE TABLE tokens (col INTEGER PRIMARY KEY, token TEXT NOT NULL);
CREATE TABLE datasets (
    did INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    corner TEXT NOT NULL,
    dim TEXT NOT NULL,
    name TEXT NOT NULL,
    position INTEGER NOT NULL,
    UNIQUE (kind, position)
);
CREATE TABLE pairs (
    did INTEGER NOT NULL REFERENCES datasets (did),
    position INTEGER NOT NULL,
    pair_id TEXT NOT NULL,
    oid_a INTEGER NOT NULL,
    oid_b INTEGER NOT NULL,
    label INTEGER NOT NULL,
    provenance TEXT NOT NULL,
    PRIMARY KEY (did, position)
) WITHOUT ROWID;
CREATE TABLE multiclass_members (
    did INTEGER NOT NULL REFERENCES datasets (did),
    position INTEGER NOT NULL,
    oid INTEGER NOT NULL,
    label TEXT NOT NULL,
    PRIMARY KEY (did, position)
) WITHOUT ROWID;
CREATE TABLE split_entries (
    corner TEXT NOT NULL,
    part TEXT NOT NULL,
    position INTEGER NOT NULL,
    cluster_id TEXT NOT NULL,
    oid INTEGER NOT NULL,
    PRIMARY KEY (corner, part, position)
) WITHOUT ROWID;
CREATE TABLE selected_clusters (
    corner TEXT NOT NULL,
    part TEXT NOT NULL,
    position INTEGER NOT NULL,
    cluster_id TEXT NOT NULL,
    PRIMARY KEY (corner, part, position)
) WITHOUT ROWID;
CREATE TABLE blocked_pairs (
    position INTEGER PRIMARY KEY,
    row_a INTEGER NOT NULL,
    row_b INTEGER NOT NULL,
    score REAL NOT NULL,
    metric TEXT NOT NULL,
    query_row INTEGER NOT NULL,
    rank INTEGER NOT NULL
);
"""

_OFFER_SELECT = ", ".join(OFFER_COLUMNS)
_OFFER_PLACEHOLDERS = ", ".join("?" for _ in OFFER_COLUMNS)

# (kind, benchmark attribute, dim enum or None) — the six dataset families
# of a WDCProductsBenchmark, with the dimension each key carries beside
# the corner-case ratio.
_DATASET_KINDS = (
    ("train", "train_sets", DevSetSize),
    ("valid", "valid_sets", DevSetSize),
    ("test", "test_sets", UnseenRatio),
    ("mc_train", "multiclass_train", DevSetSize),
    ("mc_valid", "multiclass_valid", None),
    ("mc_test", "multiclass_test", None),
)
_PAIR_KINDS = {"train", "valid", "test"}


def _split_parts(split) -> list[tuple[str, list]]:
    """Every (part label, entries) list an ``OfferSplit`` materializes."""
    parts = [
        (f"train:{dev.value}", split.train_offers(dev)) for dev in DevSetSize
    ]
    parts.append(("valid", split.valid_offers()))
    parts.extend(
        (f"test:{unseen.name}", split.test_offers(unseen))
        for unseen in UnseenRatio
    )
    return parts


class _OfferInterner:
    """Value-level offer dedup for one DB write: one row per distinct offer."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self._connection = connection
        self._by_value: dict[tuple, int] = {}

    def oid(self, offer: ProductOffer) -> int:
        row = offer_to_row(offer)
        known = self._by_value.get(row)
        if known is None:
            known = len(self._by_value) + 1
            self._by_value[row] = known
            self._connection.execute(
                f"INSERT INTO offers VALUES (?, {_OFFER_PLACEHOLDERS})",
                (known, *row),
            )
        return known


def _populate_db(connection: sqlite3.Connection, artifacts) -> None:
    connection.executescript(_DDL)
    connection.execute(
        "INSERT INTO meta VALUES ('schema', ?)", (str(STORE_SCHEMA),)
    )
    interner = _OfferInterner(connection)

    for row, offer in enumerate(artifacts.cleansed.offers):
        connection.execute(
            "INSERT INTO corpus_rows VALUES (?, ?)", (row, interner.oid(offer))
        )
    for cluster_id, (category, family_id) in (
        artifacts.cleansed._cluster_meta.items()
    ):
        connection.execute(
            "INSERT INTO clusters VALUES (?, ?, ?)",
            (cluster_id, category, family_id),
        )
    if artifacts.engine is not None:
        connection.executemany(
            "INSERT INTO tokens VALUES (?, ?)",
            ((col, token) for token, col in artifacts.engine.vocabulary.items()),
        )

    did = 0
    benchmark = artifacts.benchmark
    for kind, attribute, dim_enum in _DATASET_KINDS:
        for position, (key, dataset) in enumerate(
            getattr(benchmark, attribute).items()
        ):
            corner, dim = (key, "") if dim_enum is None else (key[0], key[1].name)
            did += 1
            connection.execute(
                "INSERT INTO datasets VALUES (?, ?, ?, ?, ?, ?)",
                (did, kind, corner.name, dim, dataset.name, position),
            )
            if kind in _PAIR_KINDS:
                connection.executemany(
                    "INSERT INTO pairs VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        (
                            did,
                            pair_position,
                            pair.pair_id,
                            interner.oid(pair.offer_a),
                            interner.oid(pair.offer_b),
                            pair.label,
                            pair.provenance,
                        )
                        for pair_position, pair in enumerate(dataset.pairs)
                    ),
                )
            else:
                connection.executemany(
                    "INSERT INTO multiclass_members VALUES (?, ?, ?, ?)",
                    (
                        (did, member, interner.oid(offer), label)
                        for member, (offer, label) in enumerate(
                            zip(dataset.offers, dataset.labels)
                        )
                    ),
                )

    for corner, split in artifacts.splits.items():
        for part, entries in _split_parts(split):
            connection.executemany(
                "INSERT INTO split_entries VALUES (?, ?, ?, ?, ?)",
                (
                    (corner.name, part, position, cluster_id, interner.oid(offer))
                    for position, (cluster_id, offer) in enumerate(entries)
                ),
            )

    for (corner, part), selection in artifacts.selections.items():
        connection.executemany(
            "INSERT INTO selected_clusters VALUES (?, ?, ?, ?)",
            (
                (corner.name, part, position, cluster_id)
                for position, cluster_id in enumerate(
                    sorted(selection.cluster_ids())
                )
            ),
        )

    if artifacts.blocked_candidates is not None:
        connection.executemany(
            "INSERT INTO blocked_pairs VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    position,
                    pair.row_a,
                    pair.row_b,
                    pair.score,
                    pair.metric,
                    pair.query_row,
                    pair.rank,
                )
                for position, pair in enumerate(
                    artifacts.blocked_candidates.pairs
                )
            ),
        )


# --------------------------------------------------------------------- #
# Write / verify / open
# --------------------------------------------------------------------- #
def write_store(
    directory: Path | str,
    artifacts,
    *,
    shard: int | None = None,
    base_fingerprint: str | None = None,
    attempt: int = 1,
    elapsed: float = 0.0,
    clock: Callable[[], float] | None = None,
) -> Path:
    """Persist one shard's artifacts into ``directory``; returns the manifest.

    The manifest is the commit point: payload files (sidecars first, then
    the SQLite DB) are written via temp-and-rename, the manifest last, so
    a killed writer leaves either no manifest or a complete verifiable
    store.  ``base_fingerprint`` is the resume key (the plan's config for
    this shard — defaults to the built config's own fingerprint);
    ``shard`` / ``attempt`` / ``elapsed`` are provenance a supervisor may
    amend after adoption.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()
    with _writer_lock(directory):
        files: dict[str, dict] = {}

        engine = artifacts.engine
        engine_info = None
        if engine is not None:
            matrix = engine._matrix.tocsr()
            sidecars: dict[str, np.ndarray] = {
                "incidence_data": matrix.data,
                "incidence_indices": matrix.indices,
                "incidence_indptr": matrix.indptr,
                "set_sizes": engine._set_sizes,
                "token_keys": engine._token_keys,
            }
            if engine._embeddings is not None:
                sidecars["embeddings"] = engine._embeddings
            for name, array in sidecars.items():
                path = directory / f"{name}.npy"
                _write_array(path, array)
                files[path.name] = {
                    "sha256": stream_sha256(path),
                    "bytes": path.stat().st_size,
                }
            engine_info = {
                "rows": len(engine),
                "matrix_shape": [int(side) for side in matrix.shape],
                "prefilter": engine.prefilter,
                "gj_cache_entries": engine._gj_cache.capacity,
                "has_embeddings": engine._embeddings is not None,
            }

        db_path = directory / _DB
        temp_db = db_path.with_suffix(".db.tmp")
        if temp_db.exists():
            temp_db.unlink()
        connection = sqlite3.connect(temp_db)
        try:
            with connection:
                _populate_db(connection, artifacts)
        finally:
            connection.close()
        _atomic_replace(temp_db, db_path)
        files[_DB] = {
            "sha256": stream_sha256(db_path),
            "bytes": db_path.stat().st_size,
        }

        fingerprint = config_fingerprint(artifacts.config)
        blocked = artifacts.blocked_candidates
        # The build's own timer closes after this manifest is committed,
        # so persist the store stage's elapsed as measured here.
        stage_timings = dict(artifacts.stage_timings)
        stage_timings.setdefault("store", time.perf_counter() - start)
        manifest = {
            "schema": STORE_SCHEMA,
            "shard": shard,
            "base_fingerprint": (
                base_fingerprint if base_fingerprint is not None else fingerprint
            ),
            "config_fingerprint": fingerprint,
            "config": _jsonable(artifacts.config),
            "build_seed": artifacts.config.seed,
            "corpus_seed": artifacts.config.corpus.seed,
            "engine": engine_info,
            "blocked": (
                None
                if blocked is None
                else {
                    "k": blocked.k,
                    "metrics": list(blocked.metrics),
                    "n_queries": blocked.n_queries,
                }
            ),
            "stage_timings": stage_timings,
            "attempt": attempt,
            "elapsed_seconds": elapsed,
            "files": files,
            "created_at": (time.time if clock is None else clock)(),
        }
        manifest_path = directory / _MANIFEST
        _write_json(manifest_path, manifest)
    return manifest_path


def amend_manifest(
    directory: Path | str,
    *,
    shard: int | None = None,
    base_fingerprint: str | None = None,
    attempt: int | None = None,
    elapsed: float | None = None,
) -> dict:
    """Rewrite provenance fields of an existing manifest, atomically.

    The adoption step of the lazy-worker flow: workers write a store keyed
    on the config they built with, and the supervising parent re-keys it
    on the *plan's* config fingerprint (plus the attempt ledger) without
    touching any payload file.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise StoreError(
            f"cannot amend artifact store at {directory}: manifest missing "
            f"or unreadable ({error})"
        ) from None
    if shard is not None:
        manifest["shard"] = shard
    if base_fingerprint is not None:
        manifest["base_fingerprint"] = base_fingerprint
    if attempt is not None:
        manifest["attempt"] = attempt
    if elapsed is not None:
        manifest["elapsed_seconds"] = elapsed
    _write_json(manifest_path, manifest)
    return manifest


def append_store(
    directory: Path | str,
    offers: Iterable[ProductOffer],
    *,
    base_fingerprint: str | None = None,
) -> np.ndarray:
    """Append offers to a committed store; returns their new corpus rows.

    The serving layer's persistence path: instead of rebuilding and
    rewriting a whole shard, new offers are inserted into ``shard.db``
    (offers + corpus rows + any new vocabulary tokens) and only the
    engine sidecars an append actually changes — the CSR triplet,
    ``set_sizes`` and ``token_keys`` — are rewritten.  Pair datasets,
    splits, selections and blocked candidates are untouched bytes.

    The commit discipline matches :func:`write_store`: everything lands
    under temp names first, the batch of renames happens together, and
    the manifest — with refreshed sha256 records and engine metadata —
    is rewritten last.  A writer killed mid-append leaves the *old*
    manifest beside partially-renamed payloads, so verification fails
    closed and the store is refused/rebuilt, exactly the checkpoint
    contract.  Appending to a store whose ``base_fingerprint`` does not
    match is refused with :class:`~repro.errors.StoreError` — the
    foreign-manifest rule is unchanged.

    A store fitted with LSA embeddings loses them here (the appended
    rows are outside the fitted space): ``embeddings.npy`` leaves the
    manifest and ``has_embeddings`` flips false, mirroring the live
    engine's staleness contract.  Row retirement is deliberately *not*
    persisted — tombstones are serving-session state; stores always
    hold the full corpus.
    """
    directory = Path(directory)
    start = time.perf_counter()
    verified = verify_store(directory, base_fingerprint=base_fingerprint)
    if isinstance(verified, str):
        raise StoreError(
            f"cannot append to artifact store at {directory}: {verified}"
        )
    if verified.get("engine") is None:
        raise StoreError(
            f"artifact store at {directory} holds no similarity engine; "
            "append_store has nothing to extend"
        )
    new_offers = list(offers)
    if not new_offers:
        return np.empty(0, dtype=np.intp)

    with _writer_lock(directory):
        stored = StoredShard(directory, verified)
        try:
            known_ids = {
                offer_id
                for (offer_id,) in stored._connection.execute(
                    "SELECT o.offer_id FROM corpus_rows c "
                    "JOIN offers o ON o.oid = c.oid"
                )
            }
            batch_ids = [offer.offer_id for offer in new_offers]
            duplicates = sorted(
                set(batch_ids) & known_ids
                | {oid for oid in batch_ids if batch_ids.count(oid) > 1}
            )
            if duplicates:
                raise StoreError(
                    f"cannot append to artifact store at {directory}: "
                    f"offer ids already present (or repeated): {duplicates}"
                )

            engine = stored.engine
            old_vocabulary = len(engine.vocabulary)
            rows = engine.append([offer.title for offer in new_offers])
            matrix = engine._matrix.tocsr()

            files = dict(verified["files"])
            files.pop("embeddings.npy", None)
            sidecars: dict[str, np.ndarray] = {
                "incidence_data": matrix.data,
                "incidence_indices": matrix.indices,
                "incidence_indptr": matrix.indptr,
                "set_sizes": engine._set_sizes,
                "token_keys": engine._token_keys,
            }
            renames: list[tuple[Path, Path]] = []
            for name, array in sidecars.items():
                path = directory / f"{name}.npy"
                temp = path.with_suffix(".npy.tmp")
                with open(temp, "wb") as handle:
                    np.save(handle, np.ascontiguousarray(array))
                files[path.name] = {
                    "sha256": stream_sha256(temp),
                    "bytes": temp.stat().st_size,
                }
                renames.append((temp, path))

            db_path = directory / _DB
            temp_db = db_path.with_suffix(".db.tmp")
            if temp_db.exists():
                temp_db.unlink()
            source = sqlite3.connect(
                f"file:{db_path}?mode=ro", uri=True
            )
            connection = sqlite3.connect(temp_db)
            try:
                source.backup(connection)
                source.close()
                with connection:
                    (max_oid,) = connection.execute(
                        "SELECT COALESCE(MAX(oid), 0) FROM offers"
                    ).fetchone()
                    for position, offer in enumerate(new_offers):
                        oid = max_oid + 1 + position
                        connection.execute(
                            f"INSERT INTO offers VALUES "
                            f"(?, {_OFFER_PLACEHOLDERS})",
                            (oid, *offer_to_row(offer)),
                        )
                        connection.execute(
                            "INSERT INTO corpus_rows VALUES (?, ?)",
                            (int(rows[position]), oid),
                        )
                    connection.executemany(
                        "INSERT INTO tokens VALUES (?, ?)",
                        (
                            (col, token)
                            for token, col in engine.vocabulary.items()
                            if col >= old_vocabulary
                        ),
                    )
            finally:
                connection.close()
            files[_DB] = {
                "sha256": stream_sha256(temp_db),
                "bytes": temp_db.stat().st_size,
            }
            renames.append((temp_db, db_path))
        finally:
            stored.close()

        # Commit: batch rename, then the manifest. A crash between the
        # first rename and the manifest write leaves the old manifest
        # disagreeing with the payload sha256s — verification refuses.
        for temp, path in renames:
            _atomic_replace(temp, path)
        manifest = dict(verified)
        engine_info = dict(manifest["engine"])
        engine_info["rows"] = len(engine)
        engine_info["matrix_shape"] = [int(side) for side in matrix.shape]
        engine_info["has_embeddings"] = False
        manifest["engine"] = engine_info
        manifest["files"] = files
        manifest["appends"] = int(manifest.get("appends", 0)) + 1
        manifest["appended_offers"] = int(
            manifest.get("appended_offers", 0)
        ) + len(new_offers)
        timings = dict(manifest.get("stage_timings", {}))
        timings["append"] = timings.get("append", 0.0) + (
            time.perf_counter() - start
        )
        manifest["stage_timings"] = timings
        _write_json(directory / _MANIFEST, manifest)
        # The dropped embedding sidecar is outside the manifest now; the
        # stray file is inert, but clean it up when we can.
        embeddings_path = directory / "embeddings.npy"
        if embeddings_path.exists():
            try:
                embeddings_path.unlink()
            except OSError:
                pass
    return rows


def verify_store(
    directory: Path | str, *, base_fingerprint: str | None = None
) -> dict | str:
    """The verified manifest of ``directory``, or a rejection reason.

    Verification is streamed: every payload file's sha256 is hashed in
    chunks against the manifest record, so trusting a multi-GB store
    never doubles peak RSS.  A present ``writer.lock`` is a rejection —
    the store is mid-write (or its writer crashed) and must not be
    trusted.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        return "no manifest"
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return "manifest unreadable or truncated"
    if manifest.get("schema") != STORE_SCHEMA:
        return f"store schema {manifest.get('schema')!r} != {STORE_SCHEMA}"
    if (
        base_fingerprint is not None
        and manifest.get("base_fingerprint") != base_fingerprint
    ):
        return (
            "base config fingerprint mismatch (store belongs to a "
            "different plan/config)"
        )
    if (directory / _LOCK).exists():
        return "writer.lock present (store is mid-write or its writer crashed)"
    files = manifest.get("files")
    if not isinstance(files, dict) or _DB not in files:
        return "manifest records no payload files"
    for name, meta in files.items():
        digest = stream_sha256(directory / name)
        if digest is None:
            return f"{name} missing"
        if digest != meta.get("sha256"):
            return f"{name} sha256 mismatch (truncated or corrupt)"
    return manifest


def open_store(
    directory: Path | str,
    *,
    base_fingerprint: str | None = None,
    strict: bool = False,
) -> "StoredShard | None":
    """Open a verified :class:`StoredShard`, or ``None``.

    ``None`` means "no usable store — rebuild the shard".  With
    ``strict=True`` any failure (including an absent store) raises
    :class:`~repro.errors.StoreError` naming what mismatched instead.
    """
    verified = verify_store(directory, base_fingerprint=base_fingerprint)
    if isinstance(verified, str):
        if strict:
            raise StoreError(
                f"artifact store at {directory} failed verification: "
                f"{verified}"
            )
        return None
    return StoredShard(directory, verified)


def _reopen_stored_shard(directory: str) -> "StoredShard":
    return open_store(directory, strict=True)


# --------------------------------------------------------------------- #
# Read side
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class StoredShardHandle:
    """The picklable token a worker returns instead of built artifacts.

    Two small fields cross the pool boundary; the supervising parent
    adopts the handle by (re-)opening the store at ``directory`` — no
    ``BuildArtifacts`` graph is ever pickled back.
    """

    directory: str
    shard: int | None = None

    def open(self, *, strict: bool = True) -> "StoredShard | None":
        return open_store(self.directory, strict=strict)


class StoredSplit:
    """One corner-case ratio's offer split, read lazily from the store.

    Serves the exact ``(cluster_id, offer)`` entry lists
    :class:`~repro.core.splitting.OfferSplit` materializes — the
    interface ``split_universe`` and blocked-split training consume.
    """

    def __init__(self, shard: "StoredShard", corner: CornerCaseRatio) -> None:
        self._shard = shard
        self.corner_cases = corner
        self.corner_case_ratio = corner.value

    def _entries(self, part: str) -> list[tuple[str, ProductOffer]]:
        offers = self._shard._offers_by_oid
        rows = self._shard._connection.execute(
            "SELECT cluster_id, oid FROM split_entries "
            "WHERE corner = ? AND part = ? ORDER BY position",
            (self.corner_cases.name, part),
        )
        return [(cluster_id, offers[oid]) for cluster_id, oid in rows]

    def train_offers(self, dev_size: DevSetSize) -> list[tuple[str, ProductOffer]]:
        return self._entries(f"train:{dev_size.value}")

    def valid_offers(self) -> list[tuple[str, ProductOffer]]:
        return self._entries("valid")

    def test_offers(self, unseen: UnseenRatio) -> list[tuple[str, ProductOffer]]:
        return self._entries(f"test:{unseen.name}")


class StoredShard:
    """One shard's artifacts, opened lazily off its on-disk store.

    Construct through :func:`open_store` (which verifies first).  Every
    property materializes on first access and caches: the similarity
    engine memory-maps its sidecar arrays, the benchmark and splits
    rebuild from windable SQL queries, and nothing is touched until a
    consumer asks — a sweep-only session never deserializes a single
    pair dataset.
    """

    def __init__(self, directory: Path | str, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.shard = manifest.get("shard")

    def __reduce__(self):
        return (_reopen_stored_shard, (str(self.directory),))

    @cached_property
    def _connection(self) -> sqlite3.Connection:
        # Read-only URI open: a committed store is immutable, and a
        # read-only handle can never invalidate the manifest's sha256.
        uri = f"file:{self.directory / _DB}?mode=ro"
        return sqlite3.connect(uri, uri=True, check_same_thread=False)

    def close(self) -> None:
        connection = self.__dict__.pop("_connection", None)
        if connection is not None:
            connection.close()

    # ------------------------------------------------------------------ #
    @property
    def stage_timings(self) -> dict[str, float]:
        return dict(self.manifest.get("stage_timings", {}))

    @cached_property
    def _offers_by_oid(self) -> dict[int, ProductOffer]:
        return {
            oid: row_to_offer(row)
            for oid, *row in self._connection.execute(
                f"SELECT oid, {_OFFER_SELECT} FROM offers ORDER BY oid"
            )
        }

    def offers_by_raw_id(self, offer_ids: Iterable[str]) -> dict[str, ProductOffer]:
        """Offers of this shard's store by their raw (un-namespaced) ids."""
        wanted = set(offer_ids)
        found: dict[str, ProductOffer] = {}
        for offer in self._offers_by_oid.values():
            if offer.offer_id in wanted and offer.offer_id not in found:
                found[offer.offer_id] = offer
        return found

    @cached_property
    def cleansed(self) -> SyntheticCorpus:
        offers = self._offers_by_oid
        corpus = SyntheticCorpus(
            offers[oid]
            for (oid,) in self._connection.execute(
                "SELECT oid FROM corpus_rows ORDER BY row"
            )
        )
        for cluster_id, category, family_id in self._connection.execute(
            "SELECT cluster_id, category, family_id FROM clusters ORDER BY rowid"
        ):
            corpus.register_cluster_meta(
                cluster_id, category=category, family_id=family_id
            )
        return corpus

    # ------------------------------------------------------------------ #
    def _sidecar(self, name: str) -> np.ndarray:
        path = self.directory / f"{name}.npy"
        try:
            return np.load(path, mmap_mode="r")
        except (OSError, ValueError) as error:
            raise StoreError(
                f"sidecar {path.name} of store {self.directory} is "
                f"unreadable: {error}"
            ) from None

    @cached_property
    def _tokens(self) -> list[str]:
        return [
            token
            for (token,) in self._connection.execute(
                "SELECT token FROM tokens ORDER BY col"
            )
        ]

    def engine_parts(self) -> dict | None:
        """Everything :meth:`SimilarityEngine.open` assembles an engine from.

        The incidence matrix's CSR arrays, set sizes, canonical token-set
        keys and (when fitted) embeddings come back memory-mapped; token
        sets are rebuilt from the CSR structure and the token table, so
        no title is re-tokenized.
        """
        info = self.manifest.get("engine")
        if info is None:
            return None
        indptr = self._sidecar("incidence_indptr")
        indices = self._sidecar("incidence_indices")
        matrix = csr_matrix(
            (self._sidecar("incidence_data"), indices, indptr),
            shape=tuple(info["matrix_shape"]),
            copy=False,
        )
        tokens = self._tokens
        token_sets = [
            {tokens[column] for column in indices[start:stop]}
            for start, stop in zip(indptr[:-1], indptr[1:])
        ]
        return {
            "titles": [offer.title for offer in self.cleansed.offers],
            "token_sets": token_sets,
            "matrix": matrix,
            "set_sizes": self._sidecar("set_sizes"),
            "embeddings": (
                self._sidecar("embeddings") if info["has_embeddings"] else None
            ),
            "prefilter": info["prefilter"],
            "token_keys": self._sidecar("token_keys"),
            "vocabulary": {token: column for column, token in enumerate(tokens)},
            "gj_cache": BoundedPairCache(info["gj_cache_entries"]),
        }

    @cached_property
    def engine(self) -> SimilarityEngine | None:
        if self.manifest.get("engine") is None:
            return None
        return SimilarityEngine.open(self)

    def signatures(self) -> RowSignatures | None:
        """The shard's signature summary, rebuilt off the mmap engine."""
        if self.engine is None:
            return None
        return RowSignatures.from_engine(self.engine)

    # ------------------------------------------------------------------ #
    def _pair_dataset(self, did: int, name: str) -> PairDataset:
        offers = self._offers_by_oid
        dataset = PairDataset(name=name)
        dataset.pairs = [
            LabeledPair(
                pair_id=pair_id,
                offer_a=offers[oid_a],
                offer_b=offers[oid_b],
                label=label,
                provenance=provenance,
            )
            for pair_id, oid_a, oid_b, label, provenance in (
                self._connection.execute(
                    "SELECT pair_id, oid_a, oid_b, label, provenance "
                    "FROM pairs WHERE did = ? ORDER BY position",
                    (did,),
                )
            )
        ]
        return dataset

    def _multiclass_dataset(self, did: int, name: str) -> MulticlassDataset:
        offers = self._offers_by_oid
        members = self._connection.execute(
            "SELECT oid, label FROM multiclass_members "
            "WHERE did = ? ORDER BY position",
            (did,),
        ).fetchall()
        return MulticlassDataset(
            name=name,
            offers=[offers[oid] for oid, _ in members],
            labels=[label for _, label in members],
        )

    @cached_property
    def benchmark(self) -> WDCProductsBenchmark:
        benchmark = WDCProductsBenchmark()
        for kind, attribute, dim_enum in _DATASET_KINDS:
            target = getattr(benchmark, attribute)
            for did, corner_name, dim_name, name in self._connection.execute(
                "SELECT did, corner, dim, name FROM datasets "
                "WHERE kind = ? ORDER BY position",
                (kind,),
            ):
                corner = CornerCaseRatio[corner_name]
                key = corner if dim_enum is None else (corner, dim_enum[dim_name])
                if kind in _PAIR_KINDS:
                    target[key] = self._pair_dataset(did, name)
                else:
                    target[key] = self._multiclass_dataset(did, name)
        return benchmark

    @cached_property
    def splits(self) -> dict[CornerCaseRatio, StoredSplit]:
        present = {
            corner
            for (corner,) in self._connection.execute(
                "SELECT DISTINCT corner FROM split_entries"
            )
        }
        return {
            corner: StoredSplit(self, corner)
            for corner in CornerCaseRatio
            if corner.name in present
        }

    # ------------------------------------------------------------------ #
    def selected_cluster_ids(self) -> set[str]:
        return {
            cluster_id
            for (cluster_id,) in self._connection.execute(
                "SELECT DISTINCT cluster_id FROM selected_clusters"
            )
        }

    def pretraining_clusters(
        self, serializer=None
    ) -> list[tuple[str, str, list[str]]]:
        """Identifier clusters usable for checkpoint pre-training.

        Mirrors :meth:`BuildArtifacts.pretraining_clusters`: only clusters
        never selected for the benchmark, serialized with the same
        default (brand + title).
        """
        if serializer is None:
            def serializer(offer):
                if offer.brand:
                    return f"{offer.brand} {offer.title}"
                return offer.title

        selected = self.selected_cluster_ids()
        result: list[tuple[str, str, list[str]]] = []
        for cluster in self.cleansed.clusters(min_size=2):
            if cluster.cluster_id in selected:
                continue
            texts = [serializer(offer) for offer in cluster.offers]
            result.append((cluster.cluster_id, cluster.family_id, texts))
        return result

    @cached_property
    def blocked_candidates(self) -> BlockedPairSet | None:
        info = self.manifest.get("blocked")
        if info is None or self.engine is None:
            return None
        offers = list(self.cleansed.offers)
        blocker = CandidateBlocker(
            self.engine,
            offers=offers,
            group_labels=[offer.cluster_id for offer in offers],
        )
        pairs = [
            BlockedPair(
                row_a=row_a,
                row_b=row_b,
                score=score,
                metric=metric,
                query_row=query_row,
                rank=rank,
            )
            for row_a, row_b, score, metric, query_row, rank in (
                self._connection.execute(
                    "SELECT row_a, row_b, score, metric, query_row, rank "
                    "FROM blocked_pairs ORDER BY position"
                )
            )
        ]
        return BlockedPairSet(
            blocker,
            pairs,
            k=info["k"],
            metrics=tuple(info["metrics"]),
            n_queries=info["n_queries"],
        )

    @property
    def blocker(self) -> CandidateBlocker | None:
        blocked = self.blocked_candidates
        return None if blocked is None else blocked.blocker


# --------------------------------------------------------------------- #
# Multi-shard root
# --------------------------------------------------------------------- #
class ArtifactStore:
    """Directory of per-shard stores plus the session-level merged views.

    One ``ArtifactStore`` roots a sharded session: ``shard-0000/``,
    ``shard-0001/``, … hold each shard's store, and ``merged.db`` (written
    by the sweep's merged-candidate sink) the session-level candidate
    tables.  The per-shard layout is exactly :func:`write_store`'s.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:04d}"

    def merged_path(self) -> Path:
        return self.root / "merged.db"

    def save(
        self,
        shard: int,
        artifacts,
        *,
        base_fingerprint: str | None = None,
        attempt: int = 1,
        elapsed: float = 0.0,
        clock: Callable[[], float] | None = None,
    ) -> Path:
        return write_store(
            self.shard_dir(shard),
            artifacts,
            shard=shard,
            base_fingerprint=base_fingerprint,
            attempt=attempt,
            elapsed=elapsed,
            clock=clock,
        )

    def open_shard(
        self,
        shard: int,
        *,
        base_fingerprint: str | None = None,
        strict: bool = False,
    ) -> StoredShard | None:
        return open_store(
            self.shard_dir(shard),
            base_fingerprint=base_fingerprint,
            strict=strict,
        )

    def completed_shards(self, configs) -> list[int]:
        """Shards of ``configs`` with a verifiable store on disk."""
        return [
            shard
            for shard, config in enumerate(configs)
            if not isinstance(
                verify_store(
                    self.shard_dir(shard),
                    base_fingerprint=config_fingerprint(config),
                ),
                str,
            )
        ]
