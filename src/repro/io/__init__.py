"""Persistence: JSONL serialization of corpora and benchmark datasets."""

from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.datasets import (
    load_benchmark,
    load_corpus,
    load_multiclass_dataset,
    load_pair_dataset,
    save_benchmark,
    save_corpus,
    save_multiclass_dataset,
    save_pair_dataset,
)

__all__ = [
    "read_jsonl",
    "write_jsonl",
    "save_corpus",
    "load_corpus",
    "save_pair_dataset",
    "load_pair_dataset",
    "save_multiclass_dataset",
    "load_multiclass_dataset",
    "save_benchmark",
    "load_benchmark",
]
