"""Persistence: JSONL serialization and the out-of-core artifact store."""

from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.datasets import (
    load_benchmark,
    load_corpus,
    load_multiclass_dataset,
    load_pair_dataset,
    save_benchmark,
    save_corpus,
    save_multiclass_dataset,
    save_pair_dataset,
)
from repro.io.store import (
    STORE_SCHEMA,
    ArtifactStore,
    StoredShard,
    StoredShardHandle,
    StoredSplit,
    amend_manifest,
    append_store,
    config_fingerprint,
    open_store,
    verify_store,
    write_store,
)

__all__ = [
    "read_jsonl",
    "write_jsonl",
    "save_corpus",
    "load_corpus",
    "save_pair_dataset",
    "load_pair_dataset",
    "save_multiclass_dataset",
    "load_multiclass_dataset",
    "save_benchmark",
    "load_benchmark",
    "STORE_SCHEMA",
    "ArtifactStore",
    "StoredShard",
    "StoredShardHandle",
    "StoredSplit",
    "write_store",
    "append_store",
    "verify_store",
    "open_store",
    "amend_manifest",
    "config_fingerprint",
]
