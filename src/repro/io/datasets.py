"""Serialization of offers, pair datasets and whole benchmarks.

The on-disk layout mirrors how WDC Products is distributed: one JSONL file
per split, with offers embedded in the pair records (so a file is
self-contained) plus a manifest describing the variants.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.corpus.schema import ProductOffer, SyntheticCorpus
from repro.io.jsonl import read_jsonl, write_jsonl

__all__ = [
    "save_corpus",
    "load_corpus",
    "save_pair_dataset",
    "load_pair_dataset",
    "save_multiclass_dataset",
    "load_multiclass_dataset",
    "save_benchmark",
    "load_benchmark",
]


def _offer_to_dict(offer: ProductOffer) -> dict:
    return asdict(offer)


def _offer_from_dict(record: dict) -> ProductOffer:
    return ProductOffer(**record)


# --------------------------------------------------------------------- #
# Corpus
# --------------------------------------------------------------------- #
def save_corpus(corpus: SyntheticCorpus, path: str | Path) -> int:
    return write_jsonl(path, (_offer_to_dict(offer) for offer in corpus.offers))


def load_corpus(path: str | Path) -> SyntheticCorpus:
    return SyntheticCorpus(_offer_from_dict(record) for record in read_jsonl(path))


# --------------------------------------------------------------------- #
# Pair datasets
# --------------------------------------------------------------------- #
def save_pair_dataset(dataset: PairDataset, path: str | Path) -> int:
    def records():
        for pair in dataset.pairs:
            yield {
                "pair_id": pair.pair_id,
                "label": pair.label,
                "provenance": pair.provenance,
                "offer_a": _offer_to_dict(pair.offer_a),
                "offer_b": _offer_to_dict(pair.offer_b),
            }

    return write_jsonl(path, records())


def load_pair_dataset(path: str | Path, *, name: str | None = None) -> PairDataset:
    dataset = PairDataset(name=name or Path(path).stem)
    for record in read_jsonl(path):
        dataset.pairs.append(
            LabeledPair(
                pair_id=record["pair_id"],
                offer_a=_offer_from_dict(record["offer_a"]),
                offer_b=_offer_from_dict(record["offer_b"]),
                label=int(record["label"]),
                provenance=record.get("provenance", ""),
            )
        )
    return dataset


# --------------------------------------------------------------------- #
# Multi-class datasets
# --------------------------------------------------------------------- #
def save_multiclass_dataset(dataset: MulticlassDataset, path: str | Path) -> int:
    def records():
        for offer, label in zip(dataset.offers, dataset.labels):
            yield {"label": label, "offer": _offer_to_dict(offer)}

    return write_jsonl(path, records())


def load_multiclass_dataset(
    path: str | Path, *, name: str | None = None
) -> MulticlassDataset:
    offers: list[ProductOffer] = []
    labels: list[str] = []
    for record in read_jsonl(path):
        offers.append(_offer_from_dict(record["offer"]))
        labels.append(record["label"])
    return MulticlassDataset(name=name or Path(path).stem, offers=offers, labels=labels)


# --------------------------------------------------------------------- #
# Whole benchmark
# --------------------------------------------------------------------- #
def save_benchmark(benchmark: WDCProductsBenchmark, directory: str | Path) -> None:
    """Write every split of the benchmark under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for (cc, dev), dataset in benchmark.train_sets.items():
        save_pair_dataset(dataset, directory / f"train_cc{cc.label[:-1]}_{dev.value}.jsonl")
    for (cc, dev), dataset in benchmark.valid_sets.items():
        save_pair_dataset(dataset, directory / f"valid_cc{cc.label[:-1]}_{dev.value}.jsonl")
    for (cc, unseen), dataset in benchmark.test_sets.items():
        save_pair_dataset(
            dataset, directory / f"test_cc{cc.label[:-1]}_{unseen.label.lower()}.jsonl"
        )
    for (cc, dev), dataset in benchmark.multiclass_train.items():
        save_multiclass_dataset(
            dataset, directory / f"mc_train_cc{cc.label[:-1]}_{dev.value}.jsonl"
        )
    for cc, dataset in benchmark.multiclass_valid.items():
        save_multiclass_dataset(dataset, directory / f"mc_valid_cc{cc.label[:-1]}.jsonl")
    for cc, dataset in benchmark.multiclass_test.items():
        save_multiclass_dataset(dataset, directory / f"mc_test_cc{cc.label[:-1]}.jsonl")


def load_benchmark(directory: str | Path) -> WDCProductsBenchmark:
    """Load a benchmark previously written by :func:`save_benchmark`."""
    directory = Path(directory)
    benchmark = WDCProductsBenchmark()
    for cc in CornerCaseRatio:
        tag = cc.label[:-1]
        for dev in DevSetSize:
            train_path = directory / f"train_cc{tag}_{dev.value}.jsonl"
            if train_path.exists():
                benchmark.train_sets[(cc, dev)] = load_pair_dataset(train_path)
            valid_path = directory / f"valid_cc{tag}_{dev.value}.jsonl"
            if valid_path.exists():
                benchmark.valid_sets[(cc, dev)] = load_pair_dataset(valid_path)
            mc_train = directory / f"mc_train_cc{tag}_{dev.value}.jsonl"
            if mc_train.exists():
                benchmark.multiclass_train[(cc, dev)] = load_multiclass_dataset(mc_train)
        for unseen in UnseenRatio:
            test_path = directory / f"test_cc{tag}_{unseen.label.lower()}.jsonl"
            if test_path.exists():
                benchmark.test_sets[(cc, unseen)] = load_pair_dataset(test_path)
        mc_valid = directory / f"mc_valid_cc{tag}.jsonl"
        if mc_valid.exists():
            benchmark.multiclass_valid[cc] = load_multiclass_dataset(mc_valid)
        mc_test = directory / f"mc_test_cc{tag}.jsonl"
        if mc_test.exists():
            benchmark.multiclass_test[cc] = load_multiclass_dataset(mc_test)
    return benchmark
