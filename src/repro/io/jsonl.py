"""Line-delimited JSON reading and writing."""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

__all__ = ["write_jsonl", "read_jsonl"]


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write ``records`` to ``path``; returns the number of lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield one dict per non-empty line of ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
