"""Group construction, seen/unseen partition and expert curation (§3.3).

``group_products`` runs DBSCAN over the cleansed corpus's product clusters,
splits products into the *seen* part (>= 7 offers) and *unseen* part (2-6
offers), and applies a simulated expert review that annotates each group as
*useful* or *avoid*.  The experts' documented criteria are reproduced:

* adult-product groups are avoided outright,
* groups must be clean enough to be useful — we flag groups whose members
  span many unrelated product families (a sign of a bad DBSCAN merge),
* groups too small to yield corner-case negatives (fewer than 5 products)
  cannot serve the 80%-corner-case selection and are marked avoid.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.corpus.schema import ProductCluster, SyntheticCorpus
from repro.grouping.dbscan import DBSCAN, cosine_distance_matrix
from repro.grouping.features import cluster_feature_matrix

__all__ = ["ProductGroup", "GroupedCorpus", "CurationPolicy", "group_products"]

_AVOIDED_CATEGORIES = frozenset({"adult_products"})


@dataclass
class ProductGroup:
    """One DBSCAN group inside one part (seen or unseen)."""

    group_id: str
    part: str  # "seen" | "unseen"
    clusters: list[ProductCluster] = field(default_factory=list)
    useful: bool = True
    avoid_reason: str = ""

    def __len__(self) -> int:
        return len(self.clusters)

    def cluster_ids(self) -> list[str]:
        return [cluster.cluster_id for cluster in self.clusters]


@dataclass
class CurationPolicy:
    """Simulated domain-expert review criteria."""

    avoided_categories: frozenset[str] = _AVOIDED_CATEGORIES
    min_products_for_corner_cases: int = 5
    max_family_entropy_families: int = 6  # more distinct families = messy merge

    def review(self, group: ProductGroup) -> tuple[bool, str]:
        """Return (useful, reason-if-avoided) for ``group``."""
        categories = {cluster.category for cluster in group.clusters}
        if categories & self.avoided_categories:
            return False, "excluded category"
        if len(group) < self.min_products_for_corner_cases:
            return False, "too few similar products"
        families = {cluster.family_id for cluster in group.clusters}
        if len(families) > self.max_family_entropy_families:
            return False, "heterogeneous group"
        return True, ""


@dataclass
class GroupedCorpus:
    """Curated seen/unseen groups plus grouping provenance."""

    seen_groups: list[ProductGroup] = field(default_factory=list)
    unseen_groups: list[ProductGroup] = field(default_factory=list)

    def useful_groups(self, part: str) -> list[ProductGroup]:
        groups = self.seen_groups if part == "seen" else self.unseen_groups
        return [group for group in groups if group.useful]

    def stats(self) -> dict[str, int]:
        return {
            "seen_groups": len(self.seen_groups),
            "seen_useful": len(self.useful_groups("seen")),
            "unseen_groups": len(self.unseen_groups),
            "unseen_useful": len(self.useful_groups("unseen")),
            "seen_products": sum(len(g) for g in self.seen_groups),
            "unseen_products": sum(len(g) for g in self.unseen_groups),
        }


def tune_eps(
    distances: "np.ndarray",
    clusters: list[ProductCluster],
    *,
    grid: tuple[float, ...] = (0.2, 0.25, 0.3, 0.35, 0.4),
    min_samples: int = 1,
    seen_min_offers: int = 7,
    min_group_products: int = 5,
) -> float:
    """Choose eps as the paper did: maximize the number of groups that
    contain at least ``min_group_products`` products with >= 7 offers.

    Ties are broken toward the smaller (stricter) eps.
    """
    best_eps = grid[0]
    best_capable = -1
    for eps in grid:
        labels = DBSCAN(eps=eps, min_samples=min_samples, metric="precomputed").fit_predict(distances)
        members: dict[int, int] = {}
        for cluster, label in zip(clusters, labels.tolist()):
            if len(cluster) >= seen_min_offers:
                members[label] = members.get(label, 0) + 1
        capable = sum(1 for count in members.values() if count >= min_group_products)
        if capable > best_capable:
            best_capable = capable
            best_eps = eps
    return best_eps


def group_products(
    corpus: SyntheticCorpus,
    *,
    eps: float | None = None,
    min_samples: int = 1,
    seen_min_offers: int = 7,
    unseen_offer_range: tuple[int, int] = (2, 6),
    policy: CurationPolicy | None = None,
) -> GroupedCorpus:
    """Run the full Section 3.3 stage on a cleansed corpus.

    With ``eps=None`` the value is tuned with :func:`tune_eps`, mirroring
    how the paper selected eps=0.35 for its corpus.
    """
    policy = policy if policy is not None else CurationPolicy()
    clusters = corpus.clusters(min_size=unseen_offer_range[0])
    if not clusters:
        return GroupedCorpus()

    features = cluster_feature_matrix(clusters)
    distances = cosine_distance_matrix(features)
    if eps is None:
        eps = tune_eps(
            distances,
            clusters,
            min_samples=min_samples,
            seen_min_offers=seen_min_offers,
            min_group_products=policy.min_products_for_corner_cases,
        )
    labels = DBSCAN(eps=eps, min_samples=min_samples, metric="precomputed").fit_predict(distances)

    by_label: dict[int, list[ProductCluster]] = {}
    for cluster, label in zip(clusters, labels.tolist()):
        by_label.setdefault(label, []).append(cluster)

    grouped = GroupedCorpus()
    for label in sorted(by_label):
        members = by_label[label]
        seen_members = [c for c in members if len(c) >= seen_min_offers]
        unseen_members = [
            c
            for c in members
            if unseen_offer_range[0] <= len(c) <= unseen_offer_range[1]
        ]
        if seen_members:
            group = ProductGroup(
                group_id=f"grp-{label:05d}", part="seen", clusters=seen_members
            )
            group.useful, group.avoid_reason = policy.review(group)
            grouped.seen_groups.append(group)
        if unseen_members:
            group = ProductGroup(
                group_id=f"grp-{label:05d}", part="unseen", clusters=unseen_members
            )
            group.useful, group.avoid_reason = policy.review(group)
            grouped.unseen_groups.append(group)
    return grouped


def dominant_category(group: ProductGroup) -> str:
    """The most frequent category among the group's clusters."""
    counts = Counter(cluster.category for cluster in group.clusters)
    if not counts:
        return ""
    return counts.most_common(1)[0][0]
