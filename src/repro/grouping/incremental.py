"""Exact incremental DBSCAN over a live :class:`SimilarityEngine`.

The serving layer mutates its corpus one delta at a time; re-running
:class:`~repro.grouping.dbscan.DBSCAN` per delta is O(n²) per append.
This module keeps cluster assignments *exactly* equal to a cold batch
run on the final corpus while doing per-delta work proportional to the
affected neighbourhood — the FINEX-style "fast, indexed, exact" shape:

* **Neighbor index.** Every row's eps-neighbourhood (``1 - cosine ≤
  eps``) is materialized once and maintained under append/retire.
  Candidate generation reuses the signature machinery from
  :mod:`repro.similarity.signatures`: prefix postings under a fixed
  global token order (ascending engine column id — append-stable, since
  the vocabulary grows append-only) plus the set-size length window,
  both superset-safe for cosine at threshold ``1 - eps``.  Candidates
  are then scored exactly through the engine's own kernels, so the
  neighbour predicate is bit-identical to the batch path.
* **Component-local relabeling.** DBSCAN clusters never span
  eps-connected components, and within a component the textbook
  algorithm is deterministic given the neighbour sets and the ascending
  row order.  Each delta therefore recomputes labels only for the
  affected components, replaying :class:`~repro.grouping.dbscan.DBSCAN`
  verbatim (same BFS, same border-point claiming) — which is why the
  final partition equals the batch partition even for
  ``min_samples > 1``, where border assignment is order-dependent.

Raw label *numbers* are allocation-order artifacts on both sides, so
parity is pinned on :func:`canonical_assignments` /
:func:`partition_sha` — clusters renumbered by their smallest member.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.grouping.dbscan import NOISE
from repro.similarity.signatures import length_window, prefix_lengths

__all__ = [
    "IncrementalDBSCAN",
    "canonical_assignments",
    "partition_sha",
]

_UNVISITED = -2


def canonical_assignments(assignments: Mapping) -> dict:
    """Assignments with clusters renumbered by ascending smallest member.

    Raw cluster ids are allocation artifacts (batch DBSCAN numbers by
    discovery order, the incremental clusterer by a monotone counter
    that survives relabeling); the canonical form is what two exact
    clusterings of the same rows agree on.  Noise stays ``-1``.
    """
    minima: dict[int, object] = {}
    for row in sorted(assignments):
        label = assignments[row]
        if label != NOISE and label not in minima:
            minima[label] = row
    renumber = {
        label: position
        for position, label in enumerate(
            sorted(minima, key=lambda label: minima[label])
        )
    }
    return {
        row: (NOISE if label == NOISE else renumber[label])
        for row, label in assignments.items()
    }


def partition_sha(assignments: Mapping) -> str:
    """sha256 of the canonical partition (cluster member lists + noise).

    Keys may be engine rows or offer-id strings — anything sortable and
    JSON-representable; two clusterings hash equal iff they partition
    the same keys identically.
    """
    clusters: dict[int, list] = {}
    noise: list = []
    for row in sorted(assignments):
        key = row if isinstance(row, str) else int(row)
        if assignments[row] == NOISE:
            noise.append(key)
        else:
            clusters.setdefault(int(assignments[row]), []).append(key)
    body = {"clusters": sorted(clusters.values()), "noise": noise}
    return hashlib.sha256(
        json.dumps(body, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


class IncrementalDBSCAN:
    """Indexed, exact DBSCAN maintained under engine append/retire.

    Bootstraps over ``engine.live_rows()`` and is then kept coherent by
    calling :meth:`append` with the row indices ``engine.append``
    returned and :meth:`retire` with the rows passed to
    ``engine.retire`` (the serving layer's ``LiveShard`` does both).
    ``assignments()`` equals — canonically — what
    ``DBSCAN(metric="precomputed").fit_predict(1 - cosine_block)`` on a
    cold rebuild of the live corpus produces.
    """

    def __init__(
        self,
        engine,
        *,
        eps: float = 0.35,
        min_samples: int = 1,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.engine = engine
        self.eps = eps
        self.min_samples = min_samples
        # Prefix/length pruning is sound for cosine >= threshold with
        # threshold in (0, 1]; eps >= 1 admits pairs with no shared
        # token, so the index degrades to a full candidate scan there.
        self._threshold = 1.0 - eps
        self._postings: dict[int, set[int]] = {}
        self._prefix: dict[int, np.ndarray] = {}
        self._neighbors: dict[int, set[int]] = {}
        self._labels: dict[int, int] = {}
        self._next_cluster = 0
        rows = [int(row) for row in engine.live_rows()]
        self._index_rows(rows)
        self._link_rows(rows)
        self._relabel(set(rows))

    # ------------------------------------------------------------------ #
    # Delta entry points
    # ------------------------------------------------------------------ #
    def append(self, rows: Iterable[int]) -> None:
        """Absorb rows just appended to the engine and relabel locally."""
        new_rows = [int(row) for row in rows]
        for row in new_rows:
            if row in self._neighbors:
                raise ValueError(f"row {row} already clustered")
            if row < 0 or row >= len(self.engine):
                raise IndexError(f"row {row} outside engine of {len(self.engine)}")
        if not new_rows:
            return
        self._index_rows(new_rows)
        self._link_rows(new_rows)
        self._relabel(self._component_of(new_rows))

    def retire(self, rows: Iterable[int]) -> None:
        """Drop retired rows from the index and relabel their components."""
        gone = [int(row) for row in rows]
        for row in gone:
            if row not in self._neighbors:
                raise KeyError(f"row {row} is not clustered")
        if not gone:
            return
        region = self._component_of(gone) - set(gone)
        for row in gone:
            for col in self._prefix.pop(row):
                postings = self._postings[int(col)]
                postings.discard(row)
                if not postings:
                    del self._postings[int(col)]
            for other in sorted(self._neighbors.pop(row)):
                if other != row and other in self._neighbors:
                    self._neighbors[other].discard(row)
            self._labels.pop(row, None)
        self._relabel(region)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._labels)

    def assignments(self) -> dict[int, int]:
        """Canonical ``row -> cluster`` map (noise ``-1``)."""
        return canonical_assignments(self._labels)

    def clusters(self) -> list[list[int]]:
        """Cluster member lists, each ascending, ordered by first member."""
        grouped: dict[int, list[int]] = {}
        for row, label in sorted(self.assignments().items()):
            if label != NOISE:
                grouped.setdefault(label, []).append(row)
        return [grouped[label] for label in sorted(grouped)]

    def noise_rows(self) -> list[int]:
        return sorted(row for row, label in self._labels.items() if label == NOISE)

    def n_clusters(self) -> int:
        return len({label for label in self._labels.values() if label != NOISE})

    def sha(self) -> str:
        """sha256 pin of the current canonical partition."""
        return partition_sha(self._labels)

    def neighbors_of(self, row: int) -> list[int]:
        """The exact eps-neighbourhood of a clustered row (includes self)."""
        return sorted(self._neighbors[int(row)])

    # ------------------------------------------------------------------ #
    # Neighbor index maintenance
    # ------------------------------------------------------------------ #
    def _row_columns(self, row: int) -> np.ndarray:
        matrix = self.engine._matrix
        start, end = int(matrix.indptr[row]), int(matrix.indptr[row + 1])
        return np.sort(np.asarray(matrix.indices[start:end], dtype=np.intp))

    def _index_rows(self, rows: Sequence[int]) -> None:
        use_prefix = self._threshold > 0.0
        for row in rows:
            columns = self._row_columns(row)
            if use_prefix and columns.size:
                length = int(
                    prefix_lengths(
                        np.array([columns.size], dtype=np.float64),
                        self._threshold,
                    )[0]
                )
                prefix = columns[:length]
            else:
                prefix = columns
            self._prefix[row] = prefix
            for col in prefix:
                self._postings.setdefault(int(col), set()).add(row)

    def _candidates(self, row: int) -> np.ndarray:
        if self._threshold <= 0.0:
            # eps >= 1: every pair is admissible regardless of overlap.
            return np.array(sorted(self._neighbors), dtype=np.intp)
        gathered: set[int] = set()
        for col in self._prefix[row]:
            gathered |= self._postings[int(col)]
        if not gathered:
            return np.empty(0, dtype=np.intp)
        candidates = np.array(sorted(gathered), dtype=np.intp)
        sizes = self.engine._set_sizes
        lo, hi = length_window(
            np.array([sizes[row]], dtype=np.float64), self._threshold
        )
        keep = (sizes[candidates] >= lo[0]) & (sizes[candidates] <= hi[0])
        return candidates[keep]

    def _link_rows(self, rows: Sequence[int]) -> None:
        """Compute the new rows' exact neighbour sets, symmetrically.

        Rows must already be indexed (so new↔new pairs are visible from
        either side); existing rows gain the new rows through the
        symmetric insert.  The score path is the engine's own exact
        kernel, so the predicate matches the batch clusterer's
        ``1 - score <= eps`` bit for bit.
        """
        for row in rows:
            self._neighbors.setdefault(row, set())
        for row in rows:
            candidates = self._candidates(row)
            if candidates.size:
                scores = self.engine._exact_subset_scores(
                    row, candidates, "cosine"
                )
                close = candidates[(1.0 - scores) <= self.eps]
            else:
                close = np.empty(0, dtype=np.intp)
            neighbours = {int(other) for other in close}
            self._neighbors[row] |= neighbours
            for other in sorted(neighbours):
                if other != row:
                    self._neighbors[other].add(row)

    def _component_of(self, seeds: Sequence[int]) -> set[int]:
        """Union of the eps-connected components containing ``seeds``."""
        seen: set[int] = set()
        queue: deque[int] = deque()
        for seed in seeds:
            if seed not in seen:
                seen.add(seed)
                queue.append(seed)
        while queue:
            row = queue.popleft()
            for other in sorted(self._neighbors[row]):
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        return seen

    # ------------------------------------------------------------------ #
    # Component-local relabeling (textbook DBSCAN replay)
    # ------------------------------------------------------------------ #
    def _relabel(self, region: set[int]) -> None:
        """Re-run the batch algorithm over whole affected components.

        ``region`` is a union of eps-connected components, so every
        neighbour of a region member is itself in the region; replaying
        the batch BFS in ascending row order therefore reproduces, for
        this slice of the corpus, exactly what a cold batch run over
        the final corpus computes.  Fresh cluster ids come from a
        monotone counter — never reused, so ids of untouched components
        stay valid.
        """
        state: dict[int, int] = {row: _UNVISITED for row in sorted(region)}
        for point in sorted(region):
            if state[point] != _UNVISITED:
                continue
            if len(self._neighbors[point]) < self.min_samples:
                state[point] = NOISE
                continue
            cluster = self._next_cluster
            self._next_cluster += 1
            state[point] = cluster
            queue = deque(
                row for row in sorted(self._neighbors[point]) if row != point
            )
            while queue:
                candidate = queue.popleft()
                if state[candidate] == NOISE:
                    state[candidate] = cluster  # border point
                if state[candidate] != _UNVISITED:
                    continue
                state[candidate] = cluster
                if len(self._neighbors[candidate]) >= self.min_samples:
                    queue.extend(
                        row
                        for row in sorted(self._neighbors[candidate])
                        if state[row] in (_UNVISITED, NOISE)
                    )
        self._labels.update(state)
