"""DBSCAN clustering from scratch (scikit-learn stand-in, §3.3).

The paper runs DBSCAN with ``eps=0.35`` and ``min_samples=1`` on binary
word-occurrence vectors.  With ``min_samples=1`` every point is a core
point, so DBSCAN degenerates to connected components of the eps-
neighbourhood graph — but the implementation below is the general
algorithm and honours larger ``min_samples`` (border points, noise label
-1) so it can be tested against the textbook semantics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["DBSCAN", "cosine_distance_matrix"]

NOISE = -1
_UNVISITED = -2


def cosine_distance_matrix(features: np.ndarray) -> np.ndarray:
    """Dense pairwise cosine distances (1 - cosine similarity)."""
    features = np.asarray(features, dtype=np.float64)
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normalized = features / norms
    similarity = np.clip(normalized @ normalized.T, -1.0, 1.0)
    return 1.0 - similarity


class DBSCAN:
    """Density-based clustering over a precomputed or cosine distance."""

    def __init__(
        self,
        *,
        eps: float = 0.35,
        min_samples: int = 1,
        metric: str = "cosine",
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if metric not in ("cosine", "precomputed"):
            raise ValueError(f"unsupported metric: {metric}")
        self.eps = eps
        self.min_samples = min_samples
        self.metric = metric
        self.labels_: np.ndarray | None = None

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Cluster ``data`` and return integer labels (-1 = noise)."""
        if self.metric == "cosine":
            distances = cosine_distance_matrix(data)
        else:
            distances = np.asarray(data, dtype=np.float64)
            if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
                raise ValueError("precomputed metric requires a square matrix")

        n = distances.shape[0]
        neighbors = [np.flatnonzero(distances[i] <= self.eps) for i in range(n)]
        labels = np.full(n, _UNVISITED, dtype=np.int64)
        cluster_id = 0
        for point in range(n):
            if labels[point] != _UNVISITED:
                continue
            if len(neighbors[point]) < self.min_samples:
                labels[point] = NOISE
                continue
            # Expand a new cluster from this core point (BFS).
            labels[point] = cluster_id
            queue = deque(int(i) for i in neighbors[point] if i != point)
            while queue:
                candidate = queue.popleft()
                if labels[candidate] == NOISE:
                    labels[candidate] = cluster_id  # border point
                if labels[candidate] != _UNVISITED:
                    continue
                labels[candidate] = cluster_id
                if len(neighbors[candidate]) >= self.min_samples:
                    queue.extend(
                        int(i)
                        for i in neighbors[candidate]
                        if labels[i] in (_UNVISITED, NOISE)
                    )
            cluster_id += 1
        self.labels_ = labels
        return labels

    def n_clusters(self) -> int:
        if self.labels_ is None:
            raise RuntimeError("DBSCAN.fit_predict() must be called first")
        return int(self.labels_.max() + 1) if len(self.labels_) else 0
