"""Feature construction for product-cluster grouping.

"As feature vector for each product, we use simple binary word occurrence
after lower-casing and removing tags and punctuation" (§3.3).  A product
cluster is represented by the concatenation of its offer titles so words
from every vendor contribute to the vector.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.schema import ProductCluster
from repro.text.vectorize import BinaryBowVectorizer

__all__ = ["cluster_feature_texts", "cluster_feature_matrix"]


def cluster_feature_texts(clusters: list[ProductCluster]) -> list[str]:
    """One text per cluster: all offer titles joined."""
    return [" ".join(cluster.titles()) for cluster in clusters]


def cluster_feature_matrix(
    clusters: list[ProductCluster],
    *,
    min_count: int = 2,
    max_document_frequency: float = 0.04,
    drop_numeric_tokens: bool = True,
    max_size: int | None = 20000,
) -> np.ndarray:
    """Binary word-occurrence matrix, one row per product cluster.

    Three filters keep the grouping signal clean:

    * ``min_count`` drops hapax words (vendor typos seen once),
    * ``max_document_frequency`` drops near-stopwords of the product domain
      (head nouns, units, marketing boilerplate) that appear in more than
      the given fraction of clusters and would otherwise chain unrelated
      families together under DBSCAN,
    * ``drop_numeric_tokens`` removes model codes and sized spec values
      (``vd-2400``, ``2tb``) which are *unique per product* and would push
      sibling products apart — grouping should cluster a product with its
      near-identical siblings, and brand/line/material words are what
      siblings share.
    """
    texts = cluster_feature_texts(clusters)
    if drop_numeric_tokens:
        texts = [
            " ".join(
                token
                for token in text.split()
                if not any(char.isdigit() for char in token)
            )
            for text in texts
        ]
    vectorizer = BinaryBowVectorizer(min_count=min_count, max_size=max_size)
    matrix = vectorizer.fit_transform(texts)
    if matrix.size and 0.0 < max_document_frequency < 1.0:
        document_frequency = (matrix > 0).mean(axis=0)
        matrix = matrix[:, document_frequency <= max_document_frequency]
    return matrix
