"""Grouping similar products (Section 3.3).

DBSCAN over binary word-occurrence vectors of product-cluster titles
produces coarse groups of similar products; the groups are split into a
*seen* part (products with at least 7 offers) and an *unseen* part
(products with 2-6 offers) and finally curated by simulated domain experts
who annotate each group as useful or avoid.

:mod:`repro.grouping.incremental` adds the serving-layer counterpart:
an indexed, exact DBSCAN kept coherent under engine append/retire.
"""

from repro.grouping.features import cluster_feature_texts, cluster_feature_matrix
from repro.grouping.dbscan import DBSCAN
from repro.grouping.incremental import (
    IncrementalDBSCAN,
    canonical_assignments,
    partition_sha,
)
from repro.grouping.curation import (
    CurationPolicy,
    GroupedCorpus,
    ProductGroup,
    group_products,
    tune_eps,
)

__all__ = [
    "cluster_feature_texts",
    "cluster_feature_matrix",
    "DBSCAN",
    "IncrementalDBSCAN",
    "canonical_assignments",
    "partition_sha",
    "ProductGroup",
    "GroupedCorpus",
    "CurationPolicy",
    "group_products",
    "tune_eps",
]
