"""``python -m repro.analysis`` — the repro-lint command line.

Exit codes: ``0`` clean (or every finding frozen in the baseline),
``1`` new findings or parse errors, ``2`` usage error.

Typical invocations::

    python -m repro.analysis src/
    python -m repro.analysis src/ --baseline analysis/baseline.json
    python -m repro.analysis src/ --baseline analysis/baseline.json \
        --write-baseline          # accept current findings
    python -m repro.analysis src/ --report repro-lint-report.json
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.engine import AnalysisConfig, analyze_paths
from repro.analysis.rules import REGISTRY, all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based invariant checker for determinism, "
            "pickle-safety, lock discipline and ordering hazards"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON freezing pre-existing findings; only new "
        "findings fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write every current finding to --baseline (default "
        "analysis/baseline.json) and exit 0",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a JSON findings report (the CI artifact)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--boundary-glob",
        action="append",
        default=None,
        metavar="GLOB",
        help="override pickle-boundary module globs (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line and new findings",
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        if rule.hint:
            print(f"        fix: {rule.hint}")
    return 0


def _write_report(
    path: Path, result, match: BaselineMatch | None
) -> None:
    payload = {
        "schema": 1,
        "tool": "repro-lint",
        "files_analyzed": result.files_analyzed,
        "rules": sorted(REGISTRY),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "parse_errors": [
            finding.to_dict() for finding in result.parse_errors
        ],
    }
    if match is not None:
        payload["new"] = [finding.to_dict() for finding in match.new]
        payload["baselined"] = [
            finding.to_dict() for finding in match.baselined
        ]
        payload["stale_baseline_entries"] = [
            list(key) for key in match.stale
        ]
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path to analyze is required", file=sys.stderr
        )
        return 2

    select = None
    if args.select:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
    config = AnalysisConfig(select=select)
    if args.boundary_glob:
        config = AnalysisConfig(
            boundary_globs=tuple(args.boundary_glob), select=select
        )

    try:
        result = analyze_paths(args.paths, config)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or Path("analysis/baseline.json")
    if args.write_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        Baseline(entries=list(result.findings)).save(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    match: BaselineMatch | None = None
    failing = list(result.findings)
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(
                f"error: baseline {args.baseline} not found; create it "
                "with --write-baseline",
                file=sys.stderr,
            )
            return 2
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        match = baseline.match(result.findings)
        failing = match.new

    if args.report is not None:
        _write_report(args.report, result, match)

    for finding in result.parse_errors:
        print(finding.render())
    shown = failing if args.quiet else result.findings
    new_keys = {id(finding) for finding in failing}
    for finding in shown:
        marker = "" if id(finding) in new_keys else " [baselined]"
        print(finding.render() + marker)
    if match is not None and match.stale and not args.quiet:
        for rule, path, snippet in match.stale:
            print(
                f"stale baseline entry: {rule} {path} ({snippet!r}) — "
                "finding no longer exists; regenerate with --write-baseline"
            )

    baselined = len(match.baselined) if match is not None else 0
    print(
        f"repro-lint: {result.files_analyzed} file(s), "
        f"{len(result.findings)} finding(s) "
        f"({baselined} baselined, {len(failing)} new, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.parse_errors)} parse error(s))"
    )
    return 1 if failing or result.parse_errors else 0
