"""Ordering hazards: unordered iteration feeding ordered consumers.

Set iteration order depends on element hashes, and ``str`` hashing is
randomized per process (``PYTHONHASHSEED``) — so ``for x in some_set``
yields a *different order in every worker process*.  Anything that
flows from such an iteration into output, a hash, id assignment, or RNG
consumption breaks the byte-identical-build guarantee.  ``dict``
iteration, by contrast, follows insertion order and is deterministic
whenever the insertions were — which is why these rules target sets
(**ORD001**) and filesystem listings (**ORD002**, ``os.listdir`` order
is whatever the OS returns) but not dicts.

The rules are syntactic on purpose: any set iterated in an
order-sensitive position must be wrapped in ``sorted(...)``.  Order-free
reductions (``len``, ``sum``, ``min``, ``max``, ``any``, ``all``,
membership tests, building another set) are recognized and exempt; a
site the checker cannot prove order-free but a human can gets an inline
justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

# Consumers where element order cannot leak into the result.
_ORDER_FREE_CALLS = {
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
    "sorted",
    "bool",
}

# Call results that are directory listings in OS-defined order.
_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_LISTING_METHODS = {"iterdir", "rglob", "glob"}


def _is_set_literalish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _local_set_names(scope: ast.AST) -> set[str]:
    """Names assigned a set-typed value (and never rebound otherwise)."""
    assigned: set[str] = set()
    rebound: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not scope:
                continue  # nested scopes tracked separately
        targets: list[ast.AST] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_set_literalish(value):
                assigned.add(target.id)
            else:
                rebound.add(target.id)
    return assigned - rebound


@register
class SetIterationRule(Rule):
    rule_id = "ORD001"
    title = "order-sensitive iteration over a set"
    hint = (
        "wrap in sorted(...) — set order is hash-randomized per process "
        "and breaks byte-identical builds"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_names = _local_set_names(scope)
            for node in self._scope_walk(scope):
                yield from self._check_node(module, node, set_names)

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function scopes."""
        stack = list(
            ast.iter_child_nodes(scope)
        )
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _is_set_expr(self, node: ast.AST, set_names: set[str]) -> bool:
        if _is_set_literalish(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    def _check_node(
        self, module: ModuleInfo, node: ast.AST, set_names: set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter, set_names):
                yield self._report(module, node.iter, "a for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                if self._is_set_expr(comp.iter, set_names):
                    yield self._report(module, comp.iter, "a comprehension")
        elif isinstance(node, ast.Call):
            yield from self._check_call(module, node, set_names)
        elif isinstance(node, ast.Starred):
            if self._is_set_expr(node.value, set_names):
                yield self._report(module, node.value, "star-unpacking")

    def _check_call(
        self, module: ModuleInfo, call: ast.Call, set_names: set[str]
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_FREE_CALLS:
                return
            if func.id in ("list", "tuple", "enumerate", "iter"):
                for arg in call.args[:1]:
                    if self._is_set_expr(arg, set_names):
                        yield self._report(module, arg, f"{func.id}(...)")
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            for arg in call.args[:1]:
                if self._is_set_expr(arg, set_names):
                    yield self._report(module, arg, "str.join")

    def _report(
        self, module: ModuleInfo, node: ast.AST, context: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"set iterated in order-sensitive position ({context}); "
            "iteration order is hash-randomized per process",
        )


@register
class DirectoryListingRule(Rule):
    rule_id = "ORD002"
    title = "unsorted directory listing"
    hint = (
        "wrap the listing in sorted(...) — os.listdir/glob/iterdir order "
        "is filesystem-defined, not stable"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_listing(module, node):
                continue
            if self._order_free_consumer(module, node):
                continue
            name = module.resolve(node.func) or (
                node.func.attr if isinstance(node.func, ast.Attribute) else "?"
            )
            yield self.finding(
                module,
                node,
                f"`{name}` returns entries in filesystem order; consumed "
                "without sorted(...)",
            )

    @staticmethod
    def _is_listing(module: ModuleInfo, call: ast.Call) -> bool:
        qualified = module.resolve(call.func)
        if qualified in _LISTING_CALLS:
            return True
        return (
            qualified is None
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _LISTING_METHODS
        )

    @staticmethod
    def _order_free_consumer(module: ModuleInfo, call: ast.Call) -> bool:
        parent = module.parent(call)
        # sorted(listing) — or another order-free reduction — directly.
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in _ORDER_FREE_CALLS
        # `x in listing` membership tests are order-free.
        if isinstance(parent, ast.Compare):
            return all(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            )
        return False
