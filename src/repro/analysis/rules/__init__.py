"""The pluggable rule registry.

Every rule is a class with a unique ``rule_id``, registered by the
:func:`register` decorator at import time.  The engine runs every
registered rule over every module; a rule that does not apply (e.g. a
pickle-safety rule on a non-boundary module) returns no findings.

Adding a rule family is: write a module here, decorate the classes,
import it below, add fixtures under ``tests/analysis/fixtures/`` — the
meta-test fails until the fixtures exist.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo

__all__ = ["Rule", "REGISTRY", "register", "all_rules"]


class Rule:
    """Base class: one invariant, one id, one fix hint."""

    rule_id: ClassVar[str]
    title: ClassVar[str]
    hint: ClassVar[str] = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST | int,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            hint=self.hint if hint is None else hint,
            snippet=module.source_line(line),
        )


REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    rule_id = rule_cls.rule_id
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    REGISTRY[rule_id] = rule_cls()
    return rule_cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, id-sorted; ``select`` narrows to a subset."""
    if select is None:
        wanted = sorted(REGISTRY)
    else:
        wanted = sorted({rule_id.upper() for rule_id in select})
        unknown = [rule_id for rule_id in wanted if rule_id not in REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown rule ids {unknown}; known: {sorted(REGISTRY)}"
            )
    return [REGISTRY[rule_id] for rule_id in wanted]


# Importing the rule modules populates the registry.
from repro.analysis.rules import (  # noqa: E402  (registry must exist first)
    async_blocking,
    locks,
    meta,
    ordering,
    pickle_safety,
    rng,
)

_ = (rng, pickle_safety, locks, ordering, meta, async_blocking)
