"""Async discipline: no blocking calls inside ``async def`` bodies.

The serving layer's contract is that the event loop never blocks: one
stalled coroutine freezes every pending ``match()`` and turns the p99
gate red.  The dangerous pattern is invisible at review time — a
``time.sleep`` in a helper, a synchronous ``sqlite3`` query while a
store opens, a ``queue.Queue.get()`` that waits forever — because the
code *works*, it just serializes the loop.

**ASY001** flags, inside the body of an ``async def`` (nested ``def``\\ s
excluded — they run wherever they are called, typically an executor):

* calls resolving to known blocking stdlib entry points
  (``time.sleep``, ``sqlite3.connect``, ``subprocess.run`` and friends,
  ``urllib.request.urlopen``, ``socket.create_connection``);
* blocking methods on locals assigned from ``queue.Queue(...)`` (and
  Lifo/Priority variants): ``.get()`` / ``.put()`` without
  ``block=False``, and ``.join()`` — ``asyncio.Queue`` is the loop-safe
  replacement;
* synchronous statements on locals assigned from ``sqlite3.connect(...)``
  (``execute`` / ``executemany`` / ``executescript`` / ``commit``).

Resolution goes through the module's import table, so an unrelated
local named ``time`` never matches, and alias tracking is scope-local
in document order (a rebind ends the alias), mirroring LCK001.  The
fix is always the same shape: move the blocking work into
``loop.run_in_executor`` (or use the asyncio-native equivalent).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

_BLOCKING_CALLS = {
    "time.sleep",
    "sqlite3.connect",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
    "socket.create_connection",
}

_QUEUE_TYPES = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
}

_QUEUE_BLOCKING_METHODS = {"get", "put", "join"}

_SQLITE_BLOCKING_METHODS = {
    "execute",
    "executemany",
    "executescript",
    "commit",
}

_SCOPE_BOUNDARIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Document-order nodes of one function scope, nested scopes excluded."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _SCOPE_BOUNDARIES):
            continue
        yield child
        yield from _iter_scope(child)


def _is_nonblocking_queue_call(node: ast.Call) -> bool:
    """``.get(block=False)`` / ``.put(item, block=False)`` don't block."""
    for keyword in node.keywords:
        if keyword.arg == "block" and isinstance(keyword.value, ast.Constant):
            if keyword.value.value is False:
                return True
    return False


@register
class AsyncBlockingCallRule(Rule):
    rule_id = "ASY001"
    title = "blocking call inside an async function body"
    hint = (
        "move the blocking work off the event loop — "
        "`await loop.run_in_executor(...)` for CPU/IO calls, "
        "`asyncio.sleep` for delays, `asyncio.Queue` for queues"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: ModuleInfo, function: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # local name -> "queue" | "sqlite" while the alias is live
        aliases: dict[str, str] = {}
        for node in _iter_scope(function):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, function, node, aliases)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                kind = self._alias_kind(module, node.value)
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if kind is None:
                        aliases.pop(target.id, None)
                    else:
                        aliases[target.id] = kind
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    aliases.pop(node.target.id, None)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.pop(target.id, None)

    def _check_call(
        self,
        module: ModuleInfo,
        function: ast.AsyncFunctionDef,
        node: ast.Call,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        resolved = module.resolve(node.func)
        if resolved in _BLOCKING_CALLS:
            yield self.finding(
                module,
                node,
                f"`{resolved}` blocks the event loop inside "
                f"`async def {function.name}`",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        base = node.func.value
        if not isinstance(base, ast.Name):
            return
        kind = aliases.get(base.id)
        method = node.func.attr
        if kind == "queue" and method in _QUEUE_BLOCKING_METHODS:
            if not _is_nonblocking_queue_call(node):
                yield self.finding(
                    module,
                    node,
                    f"`{base.id}.{method}()` on a `queue.Queue` blocks "
                    f"the event loop inside `async def {function.name}` "
                    "— use `asyncio.Queue`",
                )
        elif kind == "sqlite" and method in _SQLITE_BLOCKING_METHODS:
            yield self.finding(
                module,
                node,
                f"synchronous sqlite3 `{base.id}.{method}(...)` inside "
                f"`async def {function.name}`",
            )

    @staticmethod
    def _alias_kind(module: ModuleInfo, value: ast.AST | None) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        resolved = module.resolve(value.func)
        if resolved in _QUEUE_TYPES:
            return "queue"
        if resolved == "sqlite3.connect":
            return "sqlite"
        return None
