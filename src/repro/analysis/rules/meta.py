"""Meta rules about the lint machinery itself.

* **SUP001** — an inline ``# repro-lint: disable=RULE`` without a
  ``-- justification`` trailer.  Unjustified suppressions do not
  suppress anything (the engine ignores them), and this rule makes the
  dead comment visible instead of letting it rot as false confidence.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register


@register
class SuppressionJustificationRule(Rule):
    rule_id = "SUP001"
    title = "suppression missing justification"
    hint = (
        "write `# repro-lint: disable=RULE -- <why this is safe>`; "
        "unjustified suppressions are ignored"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for suppression in module.suppressions:
            if suppression.valid:
                continue
            rules = ",".join(suppression.rules)
            yield self.finding(
                module,
                suppression.line,
                f"suppression of {rules} has no `-- justification` trailer "
                "and is ignored",
            )
