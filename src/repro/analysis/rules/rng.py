"""RNG discipline rules.

Every pinned sha256 in this repository — byte-identical shard builds
across worker counts (PR 5), crash-retry reproducing the no-fault merge
(PR 7), checkpoint fingerprints — assumes randomness flows exclusively
from seeded ``numpy.random.Generator`` objects threaded through call
signatures.  These rules reject every other entry point for entropy:

* **RNG001** — the stdlib ``random`` module's ambient global state.
* **RNG002** — numpy's legacy module-level convenience API
  (``np.random.rand``, ``np.random.seed``, …), which mutates a hidden
  global ``RandomState``.
* **RNG003** — constructing a generator with no seed
  (``default_rng()``, ``Generator()``, ``PCG64()``, ``random.Random()``),
  which pulls OS entropy and is different every run.
* **RNG004** — ambient nondeterminism reads: ``time.time()``,
  ``os.urandom``, ``uuid.uuid4``, ``datetime.now`` and any use of
  ``os.environ``.  Values like these must be passed in by the caller
  (or justified with an inline suppression, the allowlist mechanism:
  ``# repro-lint: disable=RNG004 -- <why this read is safe>``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

# numpy.random attributes that are legitimate, seedable construction
# surface rather than legacy global-state conveniences.
_NUMPY_CONSTRUCTION = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",
}

# Constructors whose *argless* call means "seed from the OS".
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.RandomState",
    "random.Random",
}

_AMBIENT_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _iter_calls(module: ModuleInfo) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            qualified = module.resolve(node.func)
            if qualified is not None:
                yield node, qualified


@register
class StdlibRandomRule(Rule):
    rule_id = "RNG001"
    title = "stdlib random module call"
    hint = (
        "thread a seeded numpy.random.Generator (or random.Random(seed)) "
        "in as a parameter instead of the ambient random module"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call, qualified in _iter_calls(module):
            if not qualified.startswith("random."):
                continue
            # Seeded random.Random(x) instances are RNG003's concern.
            if qualified == "random.Random":
                continue
            yield self.finding(
                module,
                call,
                f"call to ambient `{qualified}` uses hidden global RNG state",
            )


@register
class NumpyLegacyRandomRule(Rule):
    rule_id = "RNG002"
    title = "numpy legacy module-level random call"
    hint = (
        "use a seeded generator: rng = numpy.random.default_rng(seed); "
        "rng.<method>(...)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call, qualified in _iter_calls(module):
            prefix, _, attribute = qualified.rpartition(".")
            if prefix != "numpy.random":
                continue
            if attribute in _NUMPY_CONSTRUCTION:
                continue
            yield self.finding(
                module,
                call,
                f"`{qualified}` mutates numpy's hidden global RandomState",
            )


@register
class UnseededGeneratorRule(Rule):
    rule_id = "RNG003"
    title = "unseeded RNG construction"
    hint = (
        "pass an explicit seed or spawn from a SeedSequence: "
        "default_rng(seed) / SeedSequence(seed).spawn(n)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call, qualified in _iter_calls(module):
            if qualified not in _SEEDABLE_CONSTRUCTORS:
                continue
            if self._is_unseeded(call):
                yield self.finding(
                    module,
                    call,
                    f"`{qualified}` constructed without a seed draws OS "
                    "entropy and differs every run",
                )

    @staticmethod
    def _is_unseeded(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        if call.keywords:
            return False
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None


@register
class AmbientNondeterminismRule(Rule):
    rule_id = "RNG004"
    title = "ambient nondeterminism read"
    hint = (
        "pass the value (clock, environ mapping, id) in from the caller; "
        "if this read is genuinely safe, suppress with a justification: "
        "# repro-lint: disable=RNG004 -- <why>"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call, qualified in _iter_calls(module):
            if qualified in _AMBIENT_CALLS:
                yield self.finding(
                    module,
                    call,
                    f"`{qualified}()` is wall-clock/OS entropy — "
                    "nondeterministic across runs",
                )
        yield from self._environ_reads(module)

    def _environ_reads(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = module.resolve(node)
            if qualified != "os.environ" and not (
                qualified or ""
            ).startswith("os.environ."):
                continue
            # Report each chain once, at its outermost os.environ node.
            parent = module.parent(node)
            if isinstance(parent, ast.Attribute):
                parent_qualified = module.resolve(parent)
                if parent_qualified and parent_qualified.startswith(
                    "os.environ"
                ):
                    continue
            yield self.finding(
                module,
                node,
                f"`{qualified}` read binds behavior to the ambient "
                "environment",
            )
