"""Pickle-safety rules for process-pool boundary modules.

Shard builds run in worker processes: ``build_one_corpus`` arguments and
returns, the ``ReproError`` hierarchy, fault plans and checkpoint
payloads all cross the pool boundary through ``pickle``.  These rules
apply only to *boundary* modules — selected by the engine's
``boundary_globs`` configuration (by default ``repro/errors.py``,
``repro/core/builder.py`` and everything under ``repro/shard/``) or by
an explicit ``# repro-lint: boundary`` marker comment in the file.

* **PKL001** — a class defined inside a function pickles by qualified
  name, which the unpickling process cannot resolve: boundary classes
  must live at module (or class-body) level.
* **PKL002** — a lambda stored on an instance (``self.x = lambda …``)
  or as a dataclass field default makes every instance unpicklable;
  module-level functions pickle by reference.
* **PKL003** — an exception ``__init__`` that takes keyword-only or
  extra positional state breaks the default ``Exception`` reduction
  (which replays ``self.args`` only), so the class must define
  ``__reduce__`` (directly or via an in-module base).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

_REDUCERS = {"__reduce__", "__reduce_ex__", "__getstate__"}


def _class_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class LocalClassRule(Rule):
    rule_id = "PKL001"
    title = "function-local class in a boundary module"
    hint = (
        "move the class to module level so pickle can resolve it by "
        "qualified name in the worker process"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.boundary:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if module.enclosing_function(node) is not None:
                yield self.finding(
                    module,
                    node,
                    f"class `{node.name}` is defined inside a function and "
                    "cannot cross the process-pool boundary",
                )


@register
class StoredLambdaRule(Rule):
    rule_id = "PKL002"
    title = "lambda stored in picklable state"
    hint = (
        "replace the lambda with a module-level function (pickles by "
        "reference) or make the attribute injectable and non-pickled"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.boundary:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Lambda):
                continue
            context = self._storage_context(module, node)
            if context is not None:
                yield self.finding(
                    module,
                    node,
                    f"lambda stored {context} is not picklable",
                )

    def _storage_context(
        self, module: ModuleInfo, node: ast.Lambda
    ) -> str | None:
        parent = module.parent(node)
        # field(default=lambda ...) / field(default_factory=lambda ...)
        if isinstance(parent, ast.keyword) and parent.arg in (
            "default",
            "default_factory",
        ):
            call = module.parent(parent)
            if isinstance(call, ast.Call):
                qualified = module.resolve(call.func) or ""
                name = qualified.rpartition(".")[2] or (
                    call.func.id if isinstance(call.func, ast.Name) else ""
                )
                if name == "field":
                    return "as a dataclass field default"
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return f"on instance attribute `self.{target.attr}`"
            enclosing = module.parent(parent)
            if isinstance(enclosing, ast.ClassDef):
                return f"as a class attribute of `{enclosing.name}`"
        return None


@register
class ExceptionReduceRule(Rule):
    rule_id = "PKL003"
    title = "exception __init__ breaks default pickling"
    hint = (
        "define __reduce__ returning (rebuild_fn, state) — worker "
        "exceptions are pickled back to the parent by the pool"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.boundary:
            return
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in classes.values():
            if not self._looks_like_exception(node, classes):
                continue
            init = _class_methods(node).get("__init__")
            if init is None or not self._has_extra_state(init):
                continue
            if not self._defines_reducer(node, classes):
                yield self.finding(
                    module,
                    node,
                    f"exception `{node.name}` takes keyword/extra state in "
                    "__init__ but defines no __reduce__ — it will not "
                    "survive the pool's pickle round-trip",
                )

    @staticmethod
    def _base_names(node: ast.ClassDef) -> list[str]:
        """Terminal base-class names: `errors.ShardBuildError` → that attr."""
        names = []
        for base in node.bases:
            if isinstance(base, ast.Attribute):
                names.append(base.attr)
            elif isinstance(base, ast.Name):
                names.append(base.id)
        return names

    def _looks_like_exception(
        self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]
    ) -> bool:
        for name in self._base_names(node):
            if name.endswith("Error") or name.endswith("Exception"):
                return True
            base = classes.get(name)
            if base is not None and self._looks_like_exception(base, classes):
                return True
        return False

    @staticmethod
    def _has_extra_state(init: ast.FunctionDef) -> bool:
        if init.args.kwonlyargs:
            return True
        # (self, message) is replayable through Exception's default
        # reduction; anything beyond that is extra positional state.
        return len(init.args.args) > 2

    def _defines_reducer(
        self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]
    ) -> bool:
        if _REDUCERS & set(_class_methods(node)):
            return True
        for name in self._base_names(node):
            base = classes.get(name)
            if base is not None and self._defines_reducer(base, classes):
                return True
        return False
