"""Lock discipline: guarded attributes mutate only under their lock.

The contract is *inferred per class* rather than registered centrally: a
class that assigns ``self.<name> = threading.Lock()`` (or ``RLock``)
owns that lock, and any instance attribute it mutates at least once
inside a ``with self.<lock>`` block is considered *guarded* — the
class's own locked code is the declaration of intent.  Every other
mutation of a guarded attribute outside a lock block is a finding
(**LCK001**), except in construction/pickling methods (``__init__``,
``__new__``, ``__getstate__``, ``__setstate__``, ``__reduce__``) where
the instance is not yet shared.

This is exactly the invariant ``BoundedPairCache`` relies on: its
``_data`` LRU map is shared by thread-parallel ratio builds, and one
unlocked ``self._data[key] = value`` added in a refactor is a data race
that corrupts cached Generalized-Jaccard scores silently.

The rule is *alias-aware*: within one function scope, ``data =
self._data`` makes ``data`` a known alias, and a later ``data[k] = v``
(or ``data.update(...)``, ``data += ...``, ``del data[k]``) outside the
lock is attributed to ``self._data`` — the classic laundering pattern
where the read happens under the lock but the alias escapes it.
Aliases track in document order per function: rebinding the name
(``data = other``, ``for data in ...``, ``del data``) ends the alias,
and aliases never cross function boundaries (a nested function is its
own scope).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

_LOCK_TYPES = {"threading.Lock", "threading.RLock"}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

_CONSTRUCTION_METHODS = {
    "__init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__copy__",
    "__deepcopy__",
}


def _self_attribute(node: ast.AST) -> str | None:
    """``self.<attr>`` → attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


_SCOPE_BOUNDARIES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def _iter_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Document-order nodes of one scope, nested scopes excluded.

    Document order matters: alias registration (``data = self._data``)
    must be seen before the alias's later mutations, and a rebind must
    end the alias exactly where the source does.
    """
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _SCOPE_BOUNDARIES):
            continue
        yield child
        yield from _iter_scope(child)


def _scope_roots(class_node: ast.ClassDef) -> Iterator[ast.AST]:
    """The class body plus every (arbitrarily nested) function in it."""
    yield class_node
    for node in ast.walk(class_node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _scope_mutations(scope: ast.AST) -> list[tuple[str, ast.AST, str | None]]:
    """``(attr, node, alias)`` mutations of ``self.<attr>`` in one scope.

    ``alias`` is the local name the mutation went through (``data =
    self._data; data[k] = v``) or ``None`` for a direct ``self.<attr>``
    mutation.
    """
    found: list[tuple[str, ast.AST, str | None]] = []
    aliases: dict[str, str] = {}

    def base_attr(node: ast.AST) -> tuple[str | None, str | None]:
        attr = _self_attribute(node)
        if attr is not None:
            return attr, None
        if isinstance(node, ast.Name) and node.id in aliases:
            return aliases[node.id], node.id
        return None, None

    def record_target(node: ast.AST, target: ast.AST) -> None:
        attr = _self_attribute(target)
        if attr is not None:
            found.append((attr, node, None))
        elif isinstance(target, ast.Subscript):
            attr, via = base_attr(target.value)
            if attr is not None:
                found.append((attr, node, via))

    for node in _iter_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record_target(node, target)
            # Alias bookkeeping after the mutation scan: a plain-name
            # target is a (re)bind — `name = self.<attr>` opens an
            # alias, anything else closes one.
            for target in node.targets:
                if isinstance(target, ast.Name):
                    attr = _self_attribute(node.value)
                    if attr is not None:
                        aliases[target.id] = attr
                    else:
                        aliases.pop(target.id, None)
        elif isinstance(node, ast.AnnAssign):
            record_target(node, node.target)
            if isinstance(node.target, ast.Name) and node.value is not None:
                attr = _self_attribute(node.value)
                if attr is not None:
                    aliases[node.target.id] = attr
                else:
                    aliases.pop(node.target.id, None)
        elif isinstance(node, ast.AugAssign):
            record_target(node, node.target)
            if (
                isinstance(node.target, ast.Name)
                and node.target.id in aliases
            ):
                found.append((aliases[node.target.id], node, node.target.id))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr, via = base_attr(target.value)
                    if attr is not None:
                        found.append((attr, node, via))
                    continue
                attr = _self_attribute(target)
                if attr is not None:
                    found.append((attr, node, None))
                elif isinstance(target, ast.Name):
                    # `del data` unbinds the local, the attribute is
                    # untouched — the alias just ends here.
                    aliases.pop(target.id, None)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                attr, via = base_attr(node.func.value)
                if attr is not None:
                    found.append((attr, node, via))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                aliases.pop(node.target.id, None)
        elif isinstance(node, ast.withitem):
            if isinstance(node.optional_vars, ast.Name):
                aliases.pop(node.optional_vars.id, None)
    return found


def _mutations(
    class_node: ast.ClassDef,
) -> list[tuple[str, ast.AST, str | None]]:
    """All ``(attr, node, alias)`` mutations of ``self.<attr>`` in the class."""
    found: list[tuple[str, ast.AST, str | None]] = []
    for scope in _scope_roots(class_node):
        found.extend(_scope_mutations(scope))
    return found


@register
class GuardedMutationRule(Rule):
    rule_id = "LCK001"
    title = "guarded attribute mutated outside its lock"
    hint = (
        "wrap the mutation in `with self.<lock>:` — the class mutates "
        "this attribute under the lock elsewhere, so this site races"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_names = self._lock_attributes(module, class_node)
        if not lock_names:
            return
        mutations = _mutations(class_node)
        guarded = {
            attr
            for attr, node, _ in mutations
            if attr not in lock_names
            and self._under_lock(module, node, lock_names)
        }
        if not guarded:
            return
        for attr, node, alias in mutations:
            if attr not in guarded:
                continue
            if self._under_lock(module, node, lock_names):
                continue
            method = module.enclosing_function(node)
            if (
                method is not None
                and method.name in _CONSTRUCTION_METHODS
                and module.enclosing_class(method) is class_node
            ):
                continue
            where = method.name if method is not None else "<class body>"
            via = f" (via local alias `{alias}`)" if alias else ""
            yield self.finding(
                module,
                node,
                f"`self.{attr}` is lock-guarded in `{class_node.name}` but "
                f"mutated without the lock in `{where}`{via}",
            )

    @staticmethod
    def _lock_attributes(
        module: ModuleInfo, class_node: ast.ClassDef
    ) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if module.resolve(node.value.func) not in _LOCK_TYPES:
                continue
            for target in node.targets:
                attr = _self_attribute(target)
                if attr is not None:
                    locks.add(attr)
        return locks

    @staticmethod
    def _under_lock(
        module: ModuleInfo, node: ast.AST, lock_names: set[str]
    ) -> bool:
        for ancestor in module.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                attr = _self_attribute(expr)
                if attr in lock_names:
                    return True
        return False
