"""Lock discipline: guarded attributes mutate only under their lock.

The contract is *inferred per class* rather than registered centrally: a
class that assigns ``self.<name> = threading.Lock()`` (or ``RLock``)
owns that lock, and any instance attribute it mutates at least once
inside a ``with self.<lock>`` block is considered *guarded* — the
class's own locked code is the declaration of intent.  Every other
mutation of a guarded attribute outside a lock block is a finding
(**LCK001**), except in construction/pickling methods (``__init__``,
``__new__``, ``__getstate__``, ``__setstate__``, ``__reduce__``) where
the instance is not yet shared.

This is exactly the invariant ``BoundedPairCache`` relies on: its
``_data`` LRU map is shared by thread-parallel ratio builds, and one
unlocked ``self._data[key] = value`` added in a refactor is a data race
that corrupts cached Generalized-Jaccard scores silently.

Known limitation (documented, deliberate): mutations through a local
alias (``data = self._data; data[k] = v``) are attributed to the alias,
not the attribute.  Keep alias-mutation inside the ``with`` block — as
``BoundedPairCache`` does — and the rule sees the truth.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo
from repro.analysis.rules import Rule, register

_LOCK_TYPES = {"threading.Lock", "threading.RLock"}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

_CONSTRUCTION_METHODS = {
    "__init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__copy__",
    "__deepcopy__",
}


def _self_attribute(node: ast.AST) -> str | None:
    """``self.<attr>`` → attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutations(class_node: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """All ``(attr, node)`` mutations of ``self.<attr>`` in the class."""
    found: list[tuple[str, ast.AST]] = []
    for node in ast.walk(class_node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None:
                    found.append((attr, node))
                elif isinstance(target, ast.Subscript):
                    attr = _self_attribute(target.value)
                    if attr is not None:
                        found.append((attr, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = (
                    target.value
                    if isinstance(target, ast.Subscript)
                    else target
                )
                attr = _self_attribute(base)
                if attr is not None:
                    found.append((attr, node))
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                attr = _self_attribute(node.func.value)
                if attr is not None:
                    found.append((attr, node))
    return found


@register
class GuardedMutationRule(Rule):
    rule_id = "LCK001"
    title = "guarded attribute mutated outside its lock"
    hint = (
        "wrap the mutation in `with self.<lock>:` — the class mutates "
        "this attribute under the lock elsewhere, so this site races"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_names = self._lock_attributes(module, class_node)
        if not lock_names:
            return
        mutations = _mutations(class_node)
        guarded = {
            attr
            for attr, node in mutations
            if attr not in lock_names
            and self._under_lock(module, node, lock_names)
        }
        if not guarded:
            return
        for attr, node in mutations:
            if attr not in guarded:
                continue
            if self._under_lock(module, node, lock_names):
                continue
            method = module.enclosing_function(node)
            if (
                method is not None
                and method.name in _CONSTRUCTION_METHODS
                and module.enclosing_class(method) is class_node
            ):
                continue
            where = method.name if method is not None else "<class body>"
            yield self.finding(
                module,
                node,
                f"`self.{attr}` is lock-guarded in `{class_node.name}` but "
                f"mutated without the lock in `{where}`",
            )

    @staticmethod
    def _lock_attributes(
        module: ModuleInfo, class_node: ast.ClassDef
    ) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if module.resolve(node.value.func) not in _LOCK_TYPES:
                continue
            for target in node.targets:
                attr = _self_attribute(target)
                if attr is not None:
                    locks.add(attr)
        return locks

    @staticmethod
    def _under_lock(
        module: ModuleInfo, node: ast.AST, lock_names: set[str]
    ) -> bool:
        for ancestor in module.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                attr = _self_attribute(expr)
                if attr in lock_names:
                    return True
        return False
