"""repro-lint: AST-based invariant checker for the reproduction's spine.

Everything the repository pins — byte-identical shard builds across
worker counts, crash-retries reproducing exact sha256s, checkpoint
fingerprints — rests on source-level invariants that a runtime test only
catches when it happens to exercise the broken path.  This package
checks them statically:

* **RNG discipline** (``RNG001``–``RNG004``): no ambient
  ``random.*`` / legacy ``np.random.*`` state, no unseeded generator
  construction, no wall-clock/``os.environ`` reads outside justified
  allowlist suppressions.
* **Pickle safety** (``PKL001``–``PKL003``): classes and exceptions
  crossing the process-pool boundary stay module-level, lambda-free and
  ``__reduce__``-compatible.
* **Lock discipline** (``LCK001``): attributes a class mutates under
  ``with self._lock`` are never mutated without it.
* **Ordering hazards** (``ORD001``–``ORD002``): sets and directory
  listings are ``sorted(...)`` before order can leak into output.
* **Meta** (``SUP001``): every inline suppression carries a
  justification.

Run it as ``python -m repro.analysis src/ --baseline
analysis/baseline.json`` — see :mod:`repro.analysis.cli`.  The package
is stdlib-only by design: the CI lint job needs no numpy/scipy.
"""

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.engine import (
    AnalysisConfig,
    AnalysisResult,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding
from repro.analysis.module import ModuleInfo, parse_module, parse_source
from repro.analysis.rules import REGISTRY, Rule, all_rules

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Baseline",
    "BaselineMatch",
    "Finding",
    "ModuleInfo",
    "REGISTRY",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "parse_module",
    "parse_source",
]
