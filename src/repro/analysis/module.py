"""Per-module analysis context: AST, symbol table, suppressions.

A :class:`ModuleInfo` is everything a rule needs to judge one source
file without re-deriving it per rule:

* the parsed ``ast`` tree plus a child→parent map (rules ask "am I
  inside a ``with self._lock`` block?" by walking ancestors);
* a lightweight *symbol table* mapping local names to canonical dotted
  names (``import numpy as np`` makes ``np.random.default_rng`` resolve
  to ``numpy.random.default_rng``; ``from time import time as now``
  makes ``now()`` resolve to ``time.time``) so rules match semantics,
  not spelling;
* parsed ``# repro-lint: disable=RULE -- justification`` suppression
  comments, both line-level and file-level;
* the *boundary* flag: whether this module participates in the
  process-pool boundary (pickle-safety rules only apply there).

The symbol table is deliberately shallow — it resolves import aliases,
not assignments or control flow.  That is the right trade for an
invariant checker: every rule here guards a *determinism or
pickle-safety contract*, where a false positive costs one justified
suppression comment and a false negative silently breaks pinned hashes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ModuleInfo",
    "Suppression",
    "BOUNDARY_MARKER",
    "parse_module",
    "parse_source",
]

# A module containing this comment (anywhere) opts into the pickle-safety
# boundary rules regardless of path-based configuration — used by rule
# fixtures and by modules that know they cross the pool boundary.
BOUNDARY_MARKER = "repro-lint: boundary"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)="
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro-lint: disable`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    file_level: bool = False

    @property
    def valid(self) -> bool:
        """Only justified suppressions actually suppress findings."""
        return bool(self.justification.strip())


@dataclass
class ModuleInfo:
    """Parsed, indexed context for one analyzed source file."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str]
    suppressions: list[Suppression]
    boundary: bool = False
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------ tree --
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST):
        """Ancestors of ``node``, nearest first, root (Module) last."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing(self, node: ast.AST, kinds: tuple[type, ...]) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, kinds):
                return ancestor
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        return self.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        found = self.enclosing(node, (ast.ClassDef,))
        return found if isinstance(found, ast.ClassDef) else None

    # --------------------------------------------------------- symbols --
    def resolve(self, node: ast.AST) -> str | None:
        """The canonical dotted name of an attribute chain, or ``None``.

        Only chains rooted at an imported name resolve — a local variable
        that happens to be called ``random`` never matches the stdlib
        ``random`` module, because it is not in the import table.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    # ---------------------------------------------------- suppressions --
    def suppressed_rules(self, line: int) -> set[str]:
        """Rules validly suppressed at ``line`` (line- or file-level)."""
        rules: set[str] = set()
        for suppression in self.suppressions:
            if not suppression.valid:
                continue
            if suppression.file_level or suppression.line == line:
                rules.update(suppression.rules)
        return rules

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _build_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports resolve within this package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{node.module}.{alias.name}"
    return imports


def _parse_suppressions(lines: list[str]) -> list[Suppression]:
    suppressions: list[Suppression] = []
    for lineno, text in enumerate(lines, start=1):
        comment_at = text.find("#")
        if comment_at < 0 or "repro-lint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                justification=(match.group("why") or "").strip(),
                file_level=match.group("scope") == "disable-file",
            )
        )
    return suppressions


def parse_source(
    source: str, relpath: str, *, path: Path | None = None, boundary: bool = False
) -> ModuleInfo:
    """Parse source text into a fully-indexed :class:`ModuleInfo`.

    Raises :class:`SyntaxError` for unparseable input — the caller turns
    that into a finding rather than crashing the run.
    """
    tree = ast.parse(source, filename=str(path or relpath))
    lines = source.splitlines()
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    info = ModuleInfo(
        path=path if path is not None else Path(relpath),
        relpath=relpath,
        tree=tree,
        lines=lines,
        imports=_build_imports(tree),
        suppressions=_parse_suppressions(lines),
        boundary=boundary or BOUNDARY_MARKER in source,
    )
    info._parents = parents
    return info


def parse_module(
    path: Path, relpath: str, *, boundary: bool = False
) -> ModuleInfo:
    """Parse one source *file* into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    return parse_source(source, relpath, path=path, boundary=boundary)
