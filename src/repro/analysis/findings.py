"""Findings: what a rule reports and how it serializes.

A :class:`Finding` is one violation of one rule at one source location.
Findings are value objects — hashable, orderable, JSON-round-trippable —
because everything downstream (suppression filtering, baseline matching,
the CI report artifact) treats them as data.

The ``snippet`` field carries the stripped source line the finding
anchors to.  Baseline matching keys on ``(rule, path, snippet)`` rather
than the line number, so a finding frozen in ``analysis/baseline.json``
survives unrelated edits that shift it up or down the file.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    snippet: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """The identity a baseline entry matches on (line-drift stable)."""
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            rule=payload["rule"],
            message=payload.get("message", ""),
            hint=payload.get("hint", ""),
            snippet=payload.get("snippet", ""),
        )

    def render(self) -> str:
        """The one-line human form: ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
