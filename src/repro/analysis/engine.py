"""The analysis engine: collect files, run rules, filter suppressions.

``analyze_paths`` is the one entry point: it walks the given files and
directories (``**/*.py``, sorted — this tool practices the ordering
discipline it enforces), parses each into a
:class:`~repro.analysis.module.ModuleInfo`, runs every registered rule,
and drops findings covered by a *justified* inline suppression.

Boundary selection for the pickle-safety family is configuration, not
hardcoding: ``AnalysisConfig.boundary_globs`` are ``fnmatch`` patterns
over posix relpaths, defaulting to the modules whose objects actually
cross the process-pool boundary today (``repro/errors.py``,
``repro/core/builder.py``, everything under ``repro/shard/``).  A module
can also opt in with a ``# repro-lint: boundary`` marker comment —
that is how rule fixtures declare themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.module import parse_module, parse_source
from repro.analysis.rules import all_rules

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

DEFAULT_BOUNDARY_GLOBS = (
    "*repro/errors.py",
    "*repro/core/builder.py",
    "*repro/shard/*.py",
)


@dataclass(frozen=True)
class AnalysisConfig:
    """What to analyze and with which rules."""

    boundary_globs: tuple[str, ...] = DEFAULT_BOUNDARY_GLOBS
    select: tuple[str, ...] | None = None  # None = every registered rule

    def is_boundary_path(self, relpath: str) -> bool:
        return any(fnmatch(relpath, glob) for glob in self.boundary_globs)


@dataclass
class AnalysisResult:
    """Findings plus bookkeeping the CLI and report artifact surface."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    parse_errors: list[Finding] = field(default_factory=list)


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated, sorted."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.update(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _relpath(path: Path) -> str:
    """Posix path relative to the CWD when possible, else as given.

    Findings and baselines key on this string, so running from the repo
    root (as CI does) yields stable ``src/repro/...`` paths.
    """
    resolved = path.resolve()
    cwd = Path.cwd().resolve()
    try:
        return resolved.relative_to(cwd).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(
    paths: Sequence[Path | str],
    config: AnalysisConfig | None = None,
) -> AnalysisResult:
    """Run every selected rule over every python file under ``paths``."""
    config = config or AnalysisConfig()
    rules = all_rules(config.select)
    result = AnalysisResult()
    for path in iter_python_files(paths):
        relpath = _relpath(path)
        try:
            module = parse_module(
                path, relpath, boundary=config.is_boundary_path(relpath)
            )
        except SyntaxError as error:
            result.parse_errors.append(
                Finding(
                    path=relpath,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule="PARSE",
                    message=f"file does not parse: {error.msg}",
                    hint="repro-lint analyzes source it can parse; fix the "
                    "syntax error first",
                )
            )
            continue
        result.files_analyzed += 1
        for rule in rules:
            for finding in rule.check(module):
                if finding.rule in module.suppressed_rules(finding.line):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def analyze_source(
    source: str,
    *,
    filename: str = "<memory>",
    boundary: bool = False,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze an in-memory source string (test/fixture convenience)."""
    module = parse_source(source, filename, boundary=boundary)
    findings: list[Finding] = []
    for rule in all_rules(tuple(select) if select else None):
        for finding in rule.check(module):
            if finding.rule not in module.suppressed_rules(finding.line):
                findings.append(finding)
    return sorted(findings)
