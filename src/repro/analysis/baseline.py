"""Baseline: freeze pre-existing findings so CI fails only on new ones.

A baseline file is a JSON list of finding records.  Matching is by
``(rule, path, snippet)`` as a *multiset* — two identical violations on
different lines of the same file need two baseline entries, but moving
a baselined line up or down the file (the common case: unrelated edits
above it) does not un-freeze it.

Workflow:

* ``python -m repro.analysis src/ --write-baseline`` regenerates the
  file from the current tree (run it when deliberately accepting
  findings, then commit the diff for review);
* ``--baseline analysis/baseline.json`` splits findings into
  *baselined* (frozen, reported but not failing) and *new* (exit 1);
* entries whose finding no longer exists are reported as *stale* so the
  baseline shrinks over time instead of fossilizing.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["BASELINE_SCHEMA", "Baseline", "BaselineMatch"]

BASELINE_SCHEMA = 1


@dataclass
class BaselineMatch:
    """The split of a finding list against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[tuple[str, str, str]] = field(default_factory=list)


@dataclass
class Baseline:
    """An immutable multiset of frozen finding identities."""

    entries: list[Finding] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(
                f"baseline {path} is not a repro-lint baseline (no "
                "'entries' key); regenerate with --write-baseline"
            )
        schema = payload.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"baseline {path} has schema {schema!r}, this tool reads "
                f"{BASELINE_SCHEMA}; regenerate with --write-baseline"
            )
        return cls(
            entries=[Finding.from_dict(entry) for entry in payload["entries"]]
        )

    def save(self, path: Path | str) -> None:
        records = [
            finding.to_dict()
            for finding in sorted(self.entries)
        ]
        payload = {
            "schema": BASELINE_SCHEMA,
            "tool": "repro-lint",
            "entries": records,
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def match(self, findings: list[Finding]) -> BaselineMatch:
        """Split ``findings`` into new vs baselined, and report stale keys."""
        budget = Counter(entry.baseline_key for entry in self.entries)
        result = BaselineMatch()
        for finding in sorted(findings):
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        result.stale = sorted(
            key for key, remaining in budget.items() if remaining > 0
        )
        return result
