"""Vendor surface-form heterogeneity.

Offers for the *same* product differ across e-shops: vendors abbreviate,
reorder, drop the model number, reformat units, append marketing noise and
describe with different verbosity.  These transformations create the hard
*positive* pairs of the benchmark (matching offers with dissimilar text,
Figure 1) while sibling products from :mod:`repro.corpus.catalog` create
the hard negatives.

Each :class:`VendorStyle` is a fixed per-shop profile so that one shop's
offers are internally consistent, mirroring real web sources.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.corpus.catalog import ProductSpec

__all__ = ["VendorStyle", "make_vendor_styles", "NOUN_SYNONYMS"]

# Alternate head nouns per canonical noun (picked per vendor).
NOUN_SYNONYMS: dict[str, tuple[str, ...]] = {
    "internal hard drive": ("HDD", "hard disk drive", "desktop hard drive", "internal HDD"),
    "graphics card": ("GPU", "video card", "gaming graphics card", "graphic card"),
    "flash memory card": ("memory card", "flash card", "SD card", "storage card"),
    "laptop": ("notebook", "ultrabook", "portable computer", "notebook PC"),
    "smartphone": ("mobile phone", "cell phone", "phone", "smart phone"),
    "wireless headphones": ("bluetooth headphones", "wireless headset", "BT headphones", "cordless headphones"),
    "wristwatch": ("watch", "analog watch", "timepiece", "quartz watch"),
    "running shoes": ("trainers", "athletic shoes", "sneakers", "running trainers"),
    "mirrorless camera": ("digital camera", "compact system camera", "camera body", "mirrorless digital camera"),
    "ink cartridge": ("printer cartridge", "ink tank", "inkjet cartridge", "printer ink"),
    "cordless drill": ("drill driver", "power drill", "cordless drill driver", "electric drill"),
    "espresso machine": ("coffee machine", "espresso maker", "coffee maker", "barista machine"),
    "wifi router": ("wireless router", "WLAN router", "internet router", "wi-fi router"),
    "personal massager": ("wand massager", "massage device", "vibrating massager", "body massager"),
    "led monitor": ("computer monitor", "display", "PC monitor", "desktop monitor"),
}

_MARKETING_PREFIXES = ("NEW", "Genuine", "Original", "OEM", "Brand New", "2020 Model", "Hot Sale")
_MARKETING_SUFFIXES = (
    "- Free Shipping",
    "| Fast Dispatch",
    "- Retail Box",
    "(Bulk Packaging)",
    "- 2 Year Warranty",
    "+ Gift",
    "| Best Price",
)

_UNIT_SPACING_RE = re.compile(r"(\d+(?:\.\d+)?)(GB|TB|MP|RPM|V|L|Hz|Ah|Bar|mm)\b")

# Factor tables for unit-system rewrites such as 2TB -> 2000GB.
_UNIT_CONVERSIONS = {
    "TB": ("GB", 1000.0),
    "L": ("ml", 1000.0),
}

_ABBREVIATIONS = {
    "inch": "in",
    "edition": "ed",
    "battery": "batt",
    "with": "w/",
    "black": "blk",
    "white": "wht",
    "stainless": "ss",
    "wireless": "wl",
}


def _spread_units(text: str) -> str:
    """``2TB`` -> ``2 TB``."""
    return _UNIT_SPACING_RE.sub(r"\1 \2", text)


def _convert_units(text: str) -> str:
    """``2TB`` -> ``2000GB`` where a conversion table entry exists."""

    def replace(match: re.Match[str]) -> str:
        value, unit = match.group(1), match.group(2)
        conversion = _UNIT_CONVERSIONS.get(unit)
        if conversion is None:
            return match.group(0)
        target_unit, factor = conversion
        converted = float(value) * factor
        if converted.is_integer():
            return f"{int(converted)}{target_unit}"
        return f"{converted:g}{target_unit}"

    return _UNIT_SPACING_RE.sub(replace, text)


@dataclass
class VendorStyle:
    """Fixed per-shop formatting profile plus per-offer stochastic jitter."""

    source: str
    currency: str
    price_factor: float
    drop_brand: float
    drop_model_code: float
    drop_spec: float
    drop_extras: float
    use_noun_synonym: float
    spread_units: float
    convert_units: float
    abbreviate: float
    reorder_specs: float
    marketing: float
    description_mode: str  # "full", "short" or "none"
    brand_attribute: float  # probability the brand *attribute* is filled
    price_attribute: float
    uppercase: float
    seed: int

    def render_title(self, product: ProductSpec, rng: np.random.Generator) -> str:
        """Produce this vendor's title for ``product``."""
        parts: list[str] = []
        if rng.random() >= self.drop_brand:
            parts.append(product.brand)
        parts.append(product.line)
        if rng.random() >= self.drop_model_code:
            parts.append(product.model_code)

        spec_values = [
            value for value in product.specs.values() if rng.random() >= self.drop_spec
        ]
        if rng.random() < self.reorder_specs:
            spec_values = [spec_values[i] for i in rng.permutation(len(spec_values))]

        noun = product.noun
        synonyms = NOUN_SYNONYMS.get(product.noun, ())
        if synonyms and rng.random() < self.use_noun_synonym:
            noun = str(synonyms[int(rng.integers(len(synonyms)))])

        if rng.random() < 0.5:
            parts.extend(spec_values)
            parts.append(noun)
        else:
            parts.append(noun)
            parts.extend(spec_values)

        if rng.random() >= self.drop_extras:
            parts.extend(product.extras)

        title = " ".join(parts)
        if rng.random() < self.spread_units:
            title = _spread_units(title)
        elif rng.random() < self.convert_units:
            title = _convert_units(title)
        if rng.random() < self.abbreviate:
            words = title.split(" ")
            title = " ".join(_ABBREVIATIONS.get(word.lower(), word) for word in words)
        if rng.random() < self.marketing:
            if rng.random() < 0.5:
                prefix = _MARKETING_PREFIXES[int(rng.integers(len(_MARKETING_PREFIXES)))]
                title = f"{prefix} {title}"
            else:
                suffix = _MARKETING_SUFFIXES[int(rng.integers(len(_MARKETING_SUFFIXES)))]
                title = f"{title} {suffix}"
        if rng.random() < self.uppercase:
            title = title.upper()
        return title

    def render_description(
        self, product: ProductSpec, rng: np.random.Generator
    ) -> str | None:
        if self.description_mode == "none":
            return None
        template_index = int(rng.integers(len(product.description_templates) or 1))
        description = product.render_description(template_index)
        if self.description_mode == "short":
            sentences = description.split(". ")
            return sentences[0].rstrip(".") + "."
        if rng.random() < 0.3:
            description += (
                " Ships from our warehouse within 24 hours."
                " Contact us for volume pricing."
            )
        return description

    def render_price(
        self, product: ProductSpec, rng: np.random.Generator
    ) -> tuple[float | None, str | None]:
        if rng.random() >= self.price_attribute:
            return None, None
        jitter = float(rng.uniform(0.92, 1.08))
        price = round(product.base_price * self.price_factor * jitter, 2)
        currency = self.currency if rng.random() < 0.97 else None
        return price, currency

    def render_brand(self, product: ProductSpec, rng: np.random.Generator) -> str | None:
        if rng.random() < self.brand_attribute:
            return product.brand
        return None


_SHOP_WORDS_A = (
    "mega", "best", "prime", "value", "quick", "super", "smart", "top", "city",
    "alpha", "global", "direct", "bright", "true", "next", "swift",
)
_SHOP_WORDS_B = (
    "deals", "market", "store", "outlet", "shop", "mart", "depot", "bazaar",
    "trade", "express", "corner", "hub", "source", "supply", "cart", "zone",
)
_TLDS = (".com", ".net", ".shop", ".co.uk", ".de", ".io")
_CURRENCIES = ("USD", "USD", "USD", "EUR", "EUR", "GBP")


def make_vendor_styles(rng: np.random.Generator, n_vendors: int) -> list[VendorStyle]:
    """Sample ``n_vendors`` distinct shop profiles.

    Styles vary widely on purpose: some vendors are near-canonical (easy
    positives) while others drop the model number, abbreviate aggressively
    and add marketing noise (hard positives).
    """
    styles: list[VendorStyle] = []
    used_sources: set[str] = set()
    while len(styles) < n_vendors:
        word_a = _SHOP_WORDS_A[int(rng.integers(len(_SHOP_WORDS_A)))]
        word_b = _SHOP_WORDS_B[int(rng.integers(len(_SHOP_WORDS_B)))]
        tld = _TLDS[int(rng.integers(len(_TLDS)))]
        source = f"{word_a}{word_b}{tld}"
        if source in used_sources:
            source = f"{word_a}{word_b}{len(styles)}{tld}"
        used_sources.add(source)

        # "Messiness" level drives most per-shop probabilities.
        messiness = float(rng.uniform(0.0, 1.0))
        styles.append(
            VendorStyle(
                source=source,
                currency=str(_CURRENCIES[int(rng.integers(len(_CURRENCIES)))]),
                price_factor=float(rng.uniform(0.9, 1.12)),
                drop_brand=0.05 + 0.45 * messiness,
                drop_model_code=0.10 + 0.55 * messiness,
                drop_spec=0.05 + 0.30 * messiness,
                drop_extras=0.2 + 0.5 * messiness,
                use_noun_synonym=0.2 + 0.6 * messiness,
                spread_units=float(rng.uniform(0.0, 0.8)),
                convert_units=0.15 * messiness,
                abbreviate=0.4 * messiness,
                reorder_specs=0.2 + 0.5 * messiness,
                marketing=0.1 + 0.5 * messiness,
                description_mode=str(
                    rng.choice(["full", "full", "short", "none"], p=[0.45, 0.2, 0.15, 0.2])
                ),
                brand_attribute=float(rng.uniform(0.15, 0.55)),
                price_attribute=float(rng.uniform(0.85, 1.0)),
                uppercase=0.08 * messiness,
                seed=int(rng.integers(2**31)),
            )
        )
    return styles
