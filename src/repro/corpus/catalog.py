"""Synthetic product catalog: categories, brands, spec axes and families.

A *family* groups sibling products that share brand and product line but
differ in one or two specification values (capacity, color, wattage ...).
Sibling titles are therefore nearly identical — exactly the "very similar
but different products" the paper needs as negative corner-cases (§3.4).
All brand and line names are invented so no real trademark leaks into the
synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SpecAxis", "CategorySpec", "ProductSpec", "ProductFamily", "Catalog"]


@dataclass(frozen=True)
class SpecAxis:
    """One specification dimension, e.g. capacity with values "500GB"..."4TB"."""

    name: str
    values: tuple[str, ...]
    in_title: bool = True


@dataclass(frozen=True)
class CategorySpec:
    """Template data for one product category."""

    name: str
    noun: str  # head noun used in titles, e.g. "internal hard drive"
    brands: tuple[str, ...]
    lines: tuple[str, ...]
    axes: tuple[SpecAxis, ...]
    extras: tuple[str, ...]  # static title tail fragments
    description_templates: tuple[str, ...]
    price_range: tuple[float, float]
    model_prefixes: tuple[str, ...]


@dataclass(frozen=True)
class ProductSpec:
    """A concrete product: brand + line + model code + resolved spec values."""

    product_id: str
    category: str
    brand: str
    line: str
    model_code: str
    noun: str
    specs: dict[str, str] = field(default_factory=dict, hash=False)
    extras: tuple[str, ...] = ()
    base_price: float = 0.0
    description_templates: tuple[str, ...] = ()

    def canonical_title(self) -> str:
        """Full, unperturbed title listing every in-title spec value."""
        parts = [self.brand, self.line, self.model_code]
        parts.extend(self.specs.values())
        parts.append(self.noun)
        parts.extend(self.extras)
        return " ".join(parts)

    def render_description(self, template_index: int) -> str:
        """One of the category's description texts for this product.

        Vendors pick different templates, so two offers of the same product
        usually have *different* descriptions — as on the real web, where
        each shop writes its own copy.
        """
        template = self.description_templates[
            template_index % len(self.description_templates)
        ]
        return template.format(
            brand=self.brand,
            line=self.line,
            model=self.model_code,
            noun=self.noun,
            specs=", ".join(self.specs.values()),
        )


@dataclass
class ProductFamily:
    """Sibling products sharing brand+line, differing in spec values."""

    family_id: str
    category: str
    brand: str
    line: str
    products: list[ProductSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.products)


def _axis(name: str, *values: str, in_title: bool = True) -> SpecAxis:
    return SpecAxis(name, tuple(values), in_title)


_CATEGORIES: tuple[CategorySpec, ...] = (
    CategorySpec(
        name="hard_drives",
        noun="internal hard drive",
        brands=("Exatron", "Datavolt", "Spinforge", "Coretide"),
        lines=("VortexDisk", "BarraStor", "IronCell", "TurboPlatter", "NovaDrive"),
        axes=(
            _axis("capacity", "500GB", "1TB", "2TB", "3TB", "4TB", "6TB", "8TB", "10TB", "12TB", "14TB"),
            _axis("speed", "5400RPM", "7200RPM"),
            _axis("interface", "SATA III", "SAS"),
        ),
        extras=("3.5 inch",),
        description_templates=(
            "The {brand} {line} {model} {noun} delivers reliable storage with {specs}. Ideal for desktop workstations and surveillance systems.",
            "Upgrade your rig with the {line} {model} from {brand}. Key specs: {specs}. Backed by a limited manufacturer warranty.",
            "{brand} {line} series {noun}. Configuration: {specs}. Bulk packaging, drive only.",
        ),
        price_range=(35.0, 420.0),
        model_prefixes=("VD", "BS", "IC", "TP", "ND"),
    ),
    CategorySpec(
        name="graphics_cards",
        noun="graphics card",
        brands=("Veltrix", "Pyroclast", "Quantara", "Gigalume"),
        lines=("Stormrider", "Heliox", "Nightforge", "Aetherblade", "Pulsewave"),
        axes=(
            _axis("memory", "4GB", "6GB", "8GB", "10GB", "12GB", "16GB", "20GB", "24GB"),
            _axis("memory_type", "GDDR6", "GDDR6X"),
            _axis("edition", "OC Edition", "Gaming", "Founders", "Eco"),
        ),
        extras=("PCIe 4.0", "Triple Fan"),
        description_templates=(
            "Experience smooth frame rates with the {brand} {line} {model} {noun}, featuring {specs} and advanced cooling.",
            "{brand} {line} {model}: {specs}. HDMI 2.1 and triple DisplayPort outputs for multi-monitor setups.",
            "Factory overclocked {noun} from the {line} family. Specs: {specs}.",
        ),
        price_range=(150.0, 1600.0),
        model_prefixes=("SR", "HX", "NF", "AB", "PW"),
    ),
    CategorySpec(
        name="memory_cards",
        noun="flash memory card",
        brands=("Sunmica", "Kingvolt", "Transcore", "Lexitek"),
        lines=("UltraFlow", "ProShot", "EnduroCard", "SwiftStore", "MaxCapture"),
        axes=(
            _axis("capacity", "32GB", "64GB", "128GB", "256GB", "512GB", "1TB"),
            _axis("format", "microSDXC", "SDXC", "CFexpress"),
            _axis("speed_class", "U3 V30", "U3 V60", "V90"),
        ),
        extras=("with Adapter",),
        description_templates=(
            "Capture 4K video with the {brand} {line} {model} {noun}. {specs}. Waterproof, shockproof and X-ray proof.",
            "{brand} {line} memory card, {specs}. Read speeds up to 170MB/s for fast file transfer.",
            "Reliable {noun} for cameras and drones: {specs}.",
        ),
        price_range=(9.0, 380.0),
        model_prefixes=("UF", "PS", "EC", "SS", "MC"),
    ),
    CategorySpec(
        name="laptops",
        noun="laptop",
        brands=("Nordbook", "Cirrustech", "Vantagepoint", "Oblivio"),
        lines=("AeroSlim", "PowerMatrix", "StudioBook", "TrailBlazer", "ZenithPro"),
        axes=(
            _axis("screen", "13.3 inch", "14 inch", "15.6 inch", "17.3 inch"),
            _axis("ram", "8GB RAM", "16GB RAM", "32GB RAM", "64GB RAM"),
            _axis("storage", "256GB SSD", "512GB SSD", "1TB SSD", "2TB SSD"),
        ),
        extras=("Windows 11",),
        description_templates=(
            "The {brand} {line} {model} {noun} combines portability and power: {specs}. All-day battery life with rapid charge.",
            "Work anywhere with the {line} {model}. Configuration: {specs}. Backlit keyboard and fingerprint reader included.",
            "{brand} {line} business {noun}, {specs}, aluminium chassis.",
        ),
        price_range=(380.0, 3200.0),
        model_prefixes=("AS", "PM", "SB", "TB", "ZP"),
    ),
    CategorySpec(
        name="smartphones",
        noun="smartphone",
        brands=("Lumora", "Vexel", "Polarion", "Nantone"),
        lines=("Photon", "Meridian", "Spectra", "Horizon", "Cadence"),
        axes=(
            _axis("storage", "64GB", "128GB", "256GB", "512GB", "1TB"),
            _axis("color", "Midnight Black", "Glacier White", "Ocean Blue", "Sunset Gold", "Forest Green"),
            _axis("connectivity", "5G", "4G LTE"),
        ),
        extras=("Dual SIM", "Unlocked"),
        description_templates=(
            "Meet the {brand} {line} {model} {noun}: {specs}. Triple camera system with night mode and optical stabilization.",
            "{brand} {line} {model}, {specs}. Factory unlocked, compatible with all carriers.",
            "Flagship {noun} from the {line} family with {specs}.",
        ),
        price_range=(180.0, 1450.0),
        model_prefixes=("PH", "MD", "SP", "HZ", "CD"),
    ),
    CategorySpec(
        name="headphones",
        noun="wireless headphones",
        brands=("Soniq", "Auralux", "Bassforge", "Clearwave"),
        lines=("Tranquil", "StudioMix", "BeatHive", "AirFloat", "EchoZone"),
        axes=(
            _axis("type", "Over-Ear", "On-Ear", "In-Ear"),
            _axis("color", "Black", "White", "Navy", "Rose Gold", "Graphite"),
            _axis("feature", "ANC", "Hi-Res Audio", "Low Latency"),
        ),
        extras=("Bluetooth 5.3",),
        description_templates=(
            "Immerse yourself with {brand} {line} {model} {noun}. {specs}. Up to 40 hours of playtime per charge.",
            "{brand} {line} {model}: {specs}. Plush memory-foam earcups and foldable design with travel case.",
            "Premium {noun}, {specs}, built-in microphone for calls.",
        ),
        price_range=(25.0, 480.0),
        model_prefixes=("TQ", "SM", "BH", "AF", "EZ"),
    ),
    CategorySpec(
        name="watches",
        noun="wristwatch",
        brands=("Tempora", "Chronavis", "Meridian Time", "Astrolon"),
        lines=("Navigator", "Regatta", "Solstice", "Pacemaker", "Heritage"),
        axes=(
            _axis("case", "40mm", "42mm", "44mm", "46mm"),
            _axis("band", "Leather Strap", "Steel Bracelet", "Silicone Band", "Mesh Band"),
            _axis("dial", "Black Dial", "Blue Dial", "Silver Dial", "Green Dial"),
        ),
        extras=("Sapphire Crystal",),
        description_templates=(
            "The {brand} {line} {model} {noun} pairs classic styling with modern precision. {specs}. Water resistant to 100m.",
            "{brand} {line} {model} with {specs}. Swiss-inspired quartz movement and luminous hands.",
            "Elegant {noun} from the {line} collection: {specs}.",
        ),
        price_range=(55.0, 980.0),
        model_prefixes=("NV", "RG", "SL", "PM", "HR"),
    ),
    CategorySpec(
        name="running_shoes",
        noun="running shoes",
        brands=("Strideon", "Velofoot", "Apexgait", "Terraflex"),
        lines=("CloudPacer", "RoadHawk", "TrailSurge", "FlexSprint", "MarathonX"),
        axes=(
            _axis("size", "US 8", "US 8.5", "US 9", "US 9.5", "US 10", "US 10.5", "US 11", "US 12"),
            _axis("color", "Black/White", "Blue/Orange", "Grey/Lime", "Red/Black", "All White"),
            _axis("gender", "Mens", "Womens"),
        ),
        extras=(),
        description_templates=(
            "Run farther in the {brand} {line} {model} {noun}. {specs}. Responsive foam midsole with breathable knit upper.",
            "{brand} {line} {model}: {specs}. Engineered for daily training and race day alike.",
            "Lightweight {noun}, {specs}, reflective accents for night runs.",
        ),
        price_range=(45.0, 210.0),
        model_prefixes=("CP", "RH", "TS", "FS", "MX"),
    ),
    CategorySpec(
        name="cameras",
        noun="mirrorless camera",
        brands=("Optiqa", "Lumenshot", "Focale", "Prismata"),
        lines=("Alpha Vision", "ClarityPro", "SnapMaster", "PixelForge", "TrueFrame"),
        axes=(
            _axis("resolution", "20MP", "24MP", "26MP", "33MP", "45MP", "61MP"),
            _axis("kit", "Body Only", "with 18-55mm Lens", "with 24-70mm Lens"),
            _axis("video", "4K30", "4K60", "8K24"),
        ),
        extras=("Wi-Fi",),
        description_templates=(
            "Create stunning images with the {brand} {line} {model} {noun}. {specs}. In-body stabilization rated to 7 stops.",
            "{brand} {line} {model}, {specs}. Dual card slots and weather-sealed magnesium body.",
            "Professional {noun}: {specs}. Includes battery and charger.",
        ),
        price_range=(420.0, 4800.0),
        model_prefixes=("AV", "CL", "SN", "PF", "TF"),
    ),
    CategorySpec(
        name="printer_ink",
        noun="ink cartridge",
        brands=("Inkosys", "Printeva", "Tonerra", "Colorland"),
        lines=("EcoJet", "VividPrint", "ProSeries", "PageMax", "DuraInk"),
        axes=(
            _axis("color", "Black", "Cyan", "Magenta", "Yellow", "Tri-Color"),
            _axis("yield", "Standard Yield", "High Yield", "XXL Yield"),
            _axis("pack", "Single Pack", "2 Pack", "4 Pack"),
        ),
        extras=("Remanufactured",),
        description_templates=(
            "Genuine-quality {brand} {line} {model} {noun}. {specs}. Prints sharp text and vivid photos.",
            "{brand} {line} {model} replacement cartridge: {specs}. Chip included, no firmware issues.",
            "Value {noun}, {specs}, up to 2x the page yield of standard cartridges.",
        ),
        price_range=(8.0, 95.0),
        model_prefixes=("EJ", "VP", "PR", "PX", "DI"),
    ),
    CategorySpec(
        name="power_tools",
        noun="cordless drill",
        brands=("Torqline", "Maxforge", "Gritworks", "Steelhand"),
        lines=("ImpactPro", "DrivEx", "HammerVolt", "CompactForce", "SiteMaster"),
        axes=(
            _axis("voltage", "12V", "18V", "20V", "24V"),
            _axis("battery", "1.5Ah Battery", "2.0Ah Battery", "4.0Ah Battery", "5.0Ah Battery"),
            _axis("chuck", "1/2 inch Chuck", "3/8 inch Chuck"),
        ),
        extras=("Brushless",),
        description_templates=(
            "Drive screws all day with the {brand} {line} {model} {noun}. {specs}. 2-speed gearbox with 21 torque settings.",
            "{brand} {line} {model} kit: {specs}. Includes charger and carrying case.",
            "Heavy-duty {noun}, {specs}, LED work light.",
        ),
        price_range=(39.0, 340.0),
        model_prefixes=("IP", "DX", "HV", "CF", "SM"),
    ),
    CategorySpec(
        name="coffee_machines",
        noun="espresso machine",
        brands=("Bariston", "Cremalta", "Moccavia", "Brewforge"),
        lines=("SilvaCrema", "RapidoBar", "AromaPlus", "VelvetShot", "GrandCafe"),
        axes=(
            _axis("pressure", "15 Bar", "19 Bar", "20 Bar"),
            _axis("capacity", "1.0L Tank", "1.5L Tank", "2.0L Tank", "2.5L Tank"),
            _axis("feature", "Milk Frother", "Built-in Grinder", "Dual Boiler"),
        ),
        extras=("Stainless Steel",),
        description_templates=(
            "Barista-grade espresso at home with the {brand} {line} {model} {noun}. {specs}. Pre-infusion for balanced extraction.",
            "{brand} {line} {model}: {specs}. Heats up in under 30 seconds.",
            "Semi-automatic {noun} with {specs}. Dishwasher-safe drip tray.",
        ),
        price_range=(85.0, 1250.0),
        model_prefixes=("SC", "RB", "AP", "VS", "GC"),
    ),
    CategorySpec(
        name="routers",
        noun="wifi router",
        brands=("Netsphere", "Linkara", "Signalworks", "Meshify"),
        lines=("AirGate", "TurboMesh", "StreamPort", "RangeMax", "FluxNode"),
        axes=(
            _axis("standard", "WiFi 5", "WiFi 6", "WiFi 6E", "WiFi 7"),
            _axis("speed", "AC1200", "AX1800", "AX3000", "AX5400", "BE9300"),
            _axis("ports", "4x Gigabit LAN", "2x 2.5G LAN", "1x 10G LAN"),
        ),
        extras=("Dual Band",),
        description_templates=(
            "Eliminate dead zones with the {brand} {line} {model} {noun}. {specs}. Coverage up to 2500 sq ft.",
            "{brand} {line} {model}: {specs}. WPA3 security and built-in parental controls.",
            "High-performance {noun}, {specs}, easy app setup.",
        ),
        price_range=(29.0, 520.0),
        model_prefixes=("AG", "TM", "SP", "RM", "FN"),
    ),
    # Present so the curation stage (§3.3) has real adult-product groups to
    # exclude, exactly as the paper's domain experts did.
    CategorySpec(
        name="adult_products",
        noun="personal massager",
        brands=("Velvetine", "Lunaroma", "Silkessa"),
        lines=("NightBloom", "Aurora Touch", "SereneWave"),
        axes=(
            _axis("power", "10 Speed", "12 Speed", "20 Speed"),
            _axis("color", "Purple", "Pink", "Teal", "Black"),
            _axis("material", "Silicone", "ABS"),
        ),
        extras=("USB Rechargeable",),
        description_templates=(
            "The {brand} {line} {model} {noun} offers {specs}. Whisper-quiet motor and waterproof design.",
            "{brand} {line} {model}: {specs}. Discreet packaging and fast shipping.",
        ),
        price_range=(15.0, 120.0),
        model_prefixes=("NB", "AT", "SW"),
    ),
    CategorySpec(
        name="monitors",
        noun="led monitor",
        brands=("Viewlux", "Panoramix", "Claritude", "Pixelon"),
        lines=("UltraSight", "GameView", "StudioEdge", "CurveMax", "EcoVision"),
        axes=(
            _axis("size", "24 inch", "27 inch", "32 inch", "34 inch", "38 inch"),
            _axis("resolution", "1080p FHD", "1440p QHD", "4K UHD", "5K2K"),
            _axis("refresh", "60Hz", "75Hz", "144Hz", "165Hz", "240Hz"),
        ),
        extras=("IPS Panel",),
        description_templates=(
            "See every detail on the {brand} {line} {model} {noun}. {specs}. Factory calibrated for 99% sRGB coverage.",
            "{brand} {line} {model}: {specs}. Height-adjustable stand with pivot and swivel.",
            "Frameless {noun} with {specs}. Low blue light mode certified.",
        ),
        price_range=(95.0, 1150.0),
        model_prefixes=("US", "GV", "SE", "CM", "EV"),
    ),
)


class Catalog:
    """Generates families of sibling products from the category templates."""

    def __init__(self, categories: tuple[CategorySpec, ...] = _CATEGORIES):
        self.categories = categories

    def category_names(self) -> list[str]:
        return [category.name for category in self.categories]

    def build_families(
        self,
        rng: np.random.Generator,
        *,
        families_per_category: int,
        siblings_per_family: tuple[int, int] = (5, 9),
        id_prefix: str = "fam",
    ) -> list[ProductFamily]:
        """Create ``families_per_category`` families for every category.

        Sibling products inside a family share brand, line and model-code
        stem and differ in one or two randomly chosen spec axes — which is
        what makes their titles near-duplicates of one another.
        """
        families: list[ProductFamily] = []
        for category in self.categories:
            for family_index in range(families_per_category):
                family_id = f"{id_prefix}-{category.name}-{family_index:04d}"
                brand = str(rng.choice(category.brands))
                line = str(rng.choice(category.lines))
                prefix = str(rng.choice(category.model_prefixes))
                stem = int(rng.integers(100, 980))
                n_siblings = int(rng.integers(siblings_per_family[0], siblings_per_family[1] + 1))

                # Axes that vary across siblings (1 or 2), others held fixed.
                n_varying = 1 if rng.random() < 0.45 else 2
                axis_order = rng.permutation(len(category.axes))
                varying = set(int(i) for i in axis_order[:n_varying])
                fixed_values = {
                    axis.name: str(rng.choice(axis.values))
                    for index, axis in enumerate(category.axes)
                    if index not in varying
                }

                used_combos: set[tuple[str, ...]] = set()
                family = ProductFamily(
                    family_id=family_id, category=category.name, brand=brand, line=line
                )
                # Siblings share a family price level (as real product lines
                # do) so price alone cannot separate corner-case negatives.
                low, high = category.price_range
                family_base_price = float(rng.uniform(low, high))
                attempts = 0
                while len(family.products) < n_siblings and attempts < n_siblings * 10:
                    attempts += 1
                    specs: dict[str, str] = {}
                    for index, axis in enumerate(category.axes):
                        if index in varying:
                            specs[axis.name] = str(rng.choice(axis.values))
                        else:
                            specs[axis.name] = fixed_values[axis.name]
                    combo = tuple(specs[axis.name] for axis in category.axes)
                    if combo in used_combos:
                        continue
                    used_combos.add(combo)
                    sibling_index = len(family.products)
                    base_price = round(
                        float(
                            np.clip(
                                family_base_price * rng.uniform(0.8, 1.25), low, high
                            )
                        ),
                        2,
                    )
                    product = ProductSpec(
                        product_id=f"{family_id}-p{sibling_index:02d}",
                        category=category.name,
                        brand=brand,
                        line=line,
                        model_code=f"{prefix}-{stem + sibling_index * 5}",
                        noun=category.noun,
                        specs=specs,
                        extras=category.extras,
                        base_price=base_price,
                        description_templates=category.description_templates,
                    )
                    family.products.append(product)
                families.append(family)
        return families

    def spec_for(self, name: str) -> CategorySpec:
        for category in self.categories:
            if category.name == name:
                return category
        raise KeyError(f"unknown category: {name}")
