"""End-to-end synthetic corpus generation (Section 3.1 stand-in).

``CorpusGenerator`` renders product offers for two pools of product
families — a *seen* pool whose products get 7-15 offers each and an
*unseen* pool with 2-6 offers each (matching Figure 3 of the paper) — and
then injects the dirty rows (non-English, non-Latin, duplicates, short
titles, wrong-cluster offers) that the Section 3.2 cleansing pipeline is
responsible for removing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.catalog import Catalog, ProductFamily, ProductSpec
from repro.corpus.identifiers import gtin13, mpn, sku
from repro.corpus.multilingual import (
    FOREIGN_WORD_BANKS,
    foreign_description,
    foreign_title,
    non_latin_title,
)
from repro.corpus.noise import (
    make_duplicate_offer,
    make_short_offer,
    make_wrong_cluster_offer,
)
from repro.corpus.schema import ProductOffer, SyntheticCorpus
from repro.corpus.vendors import VendorStyle, make_vendor_styles
from repro.utils.rng import RngStream

__all__ = ["CorpusConfig", "CorpusGenerator", "GeneratedCorpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Scale and dirtiness knobs for the synthetic corpus."""

    seed: int = 7
    n_categories: int | None = None  # None = all catalog categories
    families_per_category_seen: int = 15
    families_per_category_unseen: int = 20
    siblings_per_family: tuple[int, int] = (5, 9)
    offers_per_seen_product: tuple[int, int] = (8, 13)
    offers_per_unseen_product: tuple[int, int] = (2, 6)
    n_vendors: int = 80
    foreign_rate: float = 0.05
    non_latin_rate: float = 0.005
    duplicate_rate: float = 0.03
    short_title_rate: float = 0.02
    wrong_cluster_rate: float = 0.05
    sibling_noise_fraction: float = 0.75

    @classmethod
    def small(cls, *, seed: int = 7) -> "CorpusConfig":
        """A reduced configuration for fast tests."""
        return cls(
            seed=seed,
            n_categories=5,
            families_per_category_seen=9,
            families_per_category_unseen=12,
            siblings_per_family=(5, 8),
            offers_per_seen_product=(8, 11),
            offers_per_unseen_product=(2, 5),
            n_vendors=32,
        )


@dataclass
class GeneratedCorpus:
    """The generator's output: corpus plus provenance for tests/benchmarks."""

    corpus: SyntheticCorpus
    seen_families: list[ProductFamily] = field(default_factory=list)
    unseen_families: list[ProductFamily] = field(default_factory=list)
    vendors: list[VendorStyle] = field(default_factory=list)
    n_clean_offers: int = 0
    n_dirty_offers: int = 0

    def all_products(self) -> list[ProductSpec]:
        products: list[ProductSpec] = []
        for family in self.seen_families + self.unseen_families:
            products.extend(family.products)
        return products


class CorpusGenerator:
    """Builds a :class:`SyntheticCorpus` from a :class:`CorpusConfig`."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config if config is not None else CorpusConfig()
        catalog = Catalog()
        if self.config.n_categories is not None:
            catalog = Catalog(catalog.categories[: self.config.n_categories])
        self.catalog = catalog
        self._offer_counter = 0

    def _next_offer_id(self) -> str:
        self._offer_counter += 1
        return f"off-{self._offer_counter:07d}"

    def generate(self) -> GeneratedCorpus:
        """Render both pools, then inject dirty rows."""
        stream = RngStream(self.config.seed, "corpus")
        seen_families = self.catalog.build_families(
            stream.generator("families", "seen"),
            families_per_category=self.config.families_per_category_seen,
            siblings_per_family=self.config.siblings_per_family,
            id_prefix="seen",
        )
        unseen_families = self.catalog.build_families(
            stream.generator("families", "unseen"),
            families_per_category=self.config.families_per_category_unseen,
            siblings_per_family=self.config.siblings_per_family,
            id_prefix="uns",
        )
        vendors = make_vendor_styles(stream.generator("vendors"), self.config.n_vendors)

        corpus = SyntheticCorpus()
        offers_rng = stream.generator("offers")
        for family in seen_families:
            self._render_family(
                corpus, family, vendors, offers_rng, self.config.offers_per_seen_product
            )
        for family in unseen_families:
            self._render_family(
                corpus,
                family,
                vendors,
                offers_rng,
                self.config.offers_per_unseen_product,
            )
        n_clean = len(corpus)

        self._inject_dirty_rows(
            corpus, seen_families + unseen_families, vendors, stream
        )
        return GeneratedCorpus(
            corpus=corpus,
            seen_families=seen_families,
            unseen_families=unseen_families,
            vendors=vendors,
            n_clean_offers=n_clean,
            n_dirty_offers=len(corpus) - n_clean,
        )

    # ------------------------------------------------------------------ #
    # Clean offers
    # ------------------------------------------------------------------ #
    def _render_family(
        self,
        corpus: SyntheticCorpus,
        family: ProductFamily,
        vendors: list[VendorStyle],
        rng: np.random.Generator,
        offer_range: tuple[int, int],
    ) -> None:
        for product in family.products:
            corpus.register_cluster_meta(
                product.product_id,
                category=family.category,
                family_id=family.family_id,
            )
            identifier_kind, identifier_value = self._make_identifier(product, rng)
            n_offers = int(rng.integers(offer_range[0], offer_range[1] + 1))
            vendor_indices = rng.choice(
                len(vendors), size=min(n_offers, len(vendors)), replace=False
            )
            seen_texts: set[tuple[str, str | None, str | None]] = set()
            for vendor_index in vendor_indices:
                vendor = vendors[int(vendor_index)]
                offer = self._render_offer(
                    product, vendor, rng, identifier_kind, identifier_value
                )
                # Guarantee intra-cluster uniqueness on the dedup key so a
                # cluster does not silently shrink below its target size.
                key = (offer.title, offer.description, offer.brand)
                retries = 0
                while key in seen_texts and retries < 4:
                    offer = self._render_offer(
                        product, vendor, rng, identifier_kind, identifier_value
                    )
                    key = (offer.title, offer.description, offer.brand)
                    retries += 1
                if key in seen_texts:
                    continue
                seen_texts.add(key)
                corpus.add(offer)

    def _make_identifier(
        self, product: ProductSpec, rng: np.random.Generator
    ) -> tuple[str, str]:
        kind = str(rng.choice(["gtin", "gtin", "mpn", "sku"]))
        if kind == "gtin":
            return kind, gtin13(rng)
        if kind == "mpn":
            return kind, mpn(rng, brand_code=product.brand)
        return kind, sku(rng)

    def _render_offer(
        self,
        product: ProductSpec,
        vendor: VendorStyle,
        rng: np.random.Generator,
        identifier_kind: str,
        identifier_value: str,
    ) -> ProductOffer:
        price, currency = vendor.render_price(product, rng)
        return ProductOffer(
            offer_id=self._next_offer_id(),
            cluster_id=product.product_id,
            title=vendor.render_title(product, rng),
            description=vendor.render_description(product, rng),
            brand=vendor.render_brand(product, rng),
            price=price,
            price_currency=currency,
            source=vendor.source,
            identifier_kind=identifier_kind,
            identifier_value=identifier_value,
            language="en",
        )

    # ------------------------------------------------------------------ #
    # Dirty rows
    # ------------------------------------------------------------------ #
    def _inject_dirty_rows(
        self,
        corpus: SyntheticCorpus,
        families: list[ProductFamily],
        vendors: list[VendorStyle],
        stream: RngStream,
    ) -> None:
        rng = stream.generator("dirty")
        clean_offers = list(corpus.offers)
        n_clean = len(clean_offers)
        products = [product for family in families for product in family.products]
        languages = list(FOREIGN_WORD_BANKS)

        for _ in range(int(n_clean * self.config.foreign_rate)):
            product = products[int(rng.integers(len(products)))]
            language = languages[int(rng.integers(len(languages)))]
            vendor = vendors[int(rng.integers(len(vendors)))]
            price, currency = vendor.render_price(product, rng)
            corpus.add(
                ProductOffer(
                    offer_id=self._next_offer_id(),
                    cluster_id=product.product_id,
                    title=foreign_title(product, language, rng),
                    description=foreign_description(language, rng),
                    brand=product.brand if rng.random() < 0.4 else None,
                    price=price,
                    price_currency=currency,
                    source=vendor.source,
                    language=language,
                )
            )

        for _ in range(int(n_clean * self.config.non_latin_rate)):
            product = products[int(rng.integers(len(products)))]
            corpus.add(
                ProductOffer(
                    offer_id=self._next_offer_id(),
                    cluster_id=product.product_id,
                    title=non_latin_title(product, rng),
                    description=None,
                    language="xx",
                )
            )

        for _ in range(int(n_clean * self.config.duplicate_rate)):
            original = clean_offers[int(rng.integers(n_clean))]
            corpus.add(make_duplicate_offer(original, offer_id=self._next_offer_id()))

        for _ in range(int(n_clean * self.config.short_title_rate)):
            original = clean_offers[int(rng.integers(n_clean))]
            corpus.add(
                make_short_offer(original, rng, offer_id=self._next_offer_id())
            )

        # Wrong-cluster offers are rendered *fresh* from a foreign product
        # (not copied from an existing row) so deduplication cannot remove
        # them.  Most are rendered from a *sibling* product of the victim's
        # family: such offers share the cluster's vocabulary, survive the
        # outlier heuristic, and end up as the residual label noise the
        # paper's Section 4 study estimates at ~4%.  The rest come from
        # random products and are the easy prey of outlier removal.
        products_by_family: dict[str, list[ProductSpec]] = {}
        for family in families:
            products_by_family[family.family_id] = family.products
        family_of_product = {
            product.product_id: family.family_id
            for family in families
            for product in family.products
        }
        for _ in range(int(n_clean * self.config.wrong_cluster_rate)):
            victim = clean_offers[int(rng.integers(n_clean))]
            if rng.random() < self.config.sibling_noise_fraction:
                siblings = [
                    product
                    for product in products_by_family[
                        family_of_product[victim.cluster_id]
                    ]
                    if product.product_id != victim.cluster_id
                ]
                if not siblings:
                    continue
                foreign_product = siblings[int(rng.integers(len(siblings)))]
            else:
                foreign_product = products[int(rng.integers(len(products)))]
                if foreign_product.product_id == victim.cluster_id:
                    continue
            vendor = vendors[int(rng.integers(len(vendors)))]
            rendered = self._render_offer(
                foreign_product, vendor, rng, "gtin", ""
            )
            corpus.add(
                make_wrong_cluster_offer(
                    victim.cluster_id, rendered, offer_id=self._next_offer_id()
                )
            )
