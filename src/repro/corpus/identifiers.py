"""Product identifier generation: GTIN-13 (with valid check digit), MPN, SKU.

The paper groups offers into clusters via annotated identifiers; the
synthetic corpus assigns each product one identifier of a random kind so
the clustering step has the same provenance structure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gtin13_check_digit", "gtin13", "mpn", "sku"]

_MPN_LETTERS = "ABCDEFGHJKLMNPQRSTUVWXYZ"  # no I/O to avoid 1/0 confusion


def gtin13_check_digit(digits12: str) -> int:
    """Compute the GTIN-13 check digit for a 12-digit payload.

    >>> gtin13_check_digit("400638133393")
    1
    """
    if len(digits12) != 12 or not digits12.isdigit():
        raise ValueError(f"expected 12 digits, got {digits12!r}")
    total = 0
    for index, char in enumerate(digits12):
        weight = 1 if index % 2 == 0 else 3
        total += int(char) * weight
    return (10 - total % 10) % 10


def gtin13(rng: np.random.Generator, *, prefix: str = "40") -> str:
    """Generate a syntactically valid GTIN-13 with the given GS1 prefix."""
    body_len = 12 - len(prefix)
    body = "".join(str(int(d)) for d in rng.integers(0, 10, size=body_len))
    payload = prefix + body
    return payload + str(gtin13_check_digit(payload))


def mpn(rng: np.random.Generator, *, brand_code: str = "") -> str:
    """Manufacturer part number: letters + digits, optionally brand-coded."""
    letters = "".join(
        _MPN_LETTERS[int(i)] for i in rng.integers(0, len(_MPN_LETTERS), size=2)
    )
    digits = "".join(str(int(d)) for d in rng.integers(0, 10, size=5))
    stem = f"{letters}{digits}"
    if brand_code:
        return f"{brand_code.upper()[:3]}-{stem}"
    return stem


def sku(rng: np.random.Generator) -> str:
    """Stock-keeping unit: short numeric code with a site-local prefix."""
    prefix = int(rng.integers(10, 99))
    body = "".join(str(int(d)) for d in rng.integers(0, 10, size=6))
    return f"{prefix}-{body}"
