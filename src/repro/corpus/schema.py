"""Data model for offers, clusters and the corpus container."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

__all__ = ["ProductOffer", "ProductCluster", "SyntheticCorpus"]


@dataclass(frozen=True)
class ProductOffer:
    """One product offer as extracted from a (synthetic) web page.

    The five benchmark attributes match Section 4 of the paper: *title*,
    *description*, *price*, *priceCurrency* and *brand*.  Attributes may be
    None to model the density profile of Table 2.  The remaining fields are
    provenance/ground-truth metadata that the benchmark pipeline may not
    leak into datasets: ``cluster_id`` is the identifier-derived cluster,
    ``true_cluster_id`` the actual product (differs for noise offers),
    ``language`` the generation language.
    """

    offer_id: str
    cluster_id: str
    title: str
    description: str | None = None
    brand: str | None = None
    price: float | None = None
    price_currency: str | None = None
    source: str = ""
    identifier_kind: str = "gtin"
    identifier_value: str = ""
    language: str = "en"
    true_cluster_id: str | None = None

    @property
    def is_noise(self) -> bool:
        """True when the offer sits in a cluster it does not belong to."""
        return self.true_cluster_id is not None and self.true_cluster_id != self.cluster_id

    def combined_text(self) -> str:
        """Title plus description — the text the language filter scores."""
        if self.description:
            return f"{self.title} {self.description}"
        return self.title

    def with_cluster(self, cluster_id: str) -> "ProductOffer":
        return replace(self, cluster_id=cluster_id)


@dataclass
class ProductCluster:
    """All offers sharing one product identifier."""

    cluster_id: str
    offers: list[ProductOffer] = field(default_factory=list)
    category: str = ""
    family_id: str = ""

    def __len__(self) -> int:
        return len(self.offers)

    def __iter__(self) -> Iterator[ProductOffer]:
        return iter(self.offers)

    def titles(self) -> list[str]:
        return [offer.title for offer in self.offers]

    def representative_offer(self) -> ProductOffer:
        """The offer with the longest title — the cluster's query offer."""
        if not self.offers:
            raise ValueError(f"cluster {self.cluster_id} is empty")
        return max(self.offers, key=lambda offer: len(offer.title))

    def representative_title(self) -> str:
        """The longest title — used as the cluster's query string."""
        return self.representative_offer().title


class SyntheticCorpus:
    """A collection of offers with cluster- and family-level views."""

    def __init__(self, offers: Iterable[ProductOffer] = ()):
        self.offers: list[ProductOffer] = list(offers)
        self._cluster_meta: dict[str, tuple[str, str]] = {}

    def register_cluster_meta(
        self, cluster_id: str, *, category: str, family_id: str
    ) -> None:
        """Record category/family provenance for ``cluster_id``."""
        self._cluster_meta[cluster_id] = (category, family_id)

    def add(self, offer: ProductOffer) -> None:
        self.offers.append(offer)

    def extend(self, offers: Iterable[ProductOffer]) -> None:
        self.offers.extend(offers)

    def __len__(self) -> int:
        return len(self.offers)

    def clusters(self, *, min_size: int = 1) -> list[ProductCluster]:
        """Group offers by ``cluster_id``; keep clusters of ``min_size``+."""
        grouped: dict[str, list[ProductOffer]] = defaultdict(list)
        for offer in self.offers:
            grouped[offer.cluster_id].append(offer)
        clusters = []
        for cluster_id in sorted(grouped):
            members = grouped[cluster_id]
            if len(members) < min_size:
                continue
            category, family_id = self._cluster_meta.get(cluster_id, ("", ""))
            clusters.append(
                ProductCluster(
                    cluster_id=cluster_id,
                    offers=members,
                    category=category,
                    family_id=family_id,
                )
            )
        return clusters

    def cluster_sizes(self) -> dict[str, int]:
        sizes: dict[str, int] = defaultdict(int)
        for offer in self.offers:
            sizes[offer.cluster_id] += 1
        return dict(sizes)

    def filtered(self, keep: Iterable[ProductOffer]) -> "SyntheticCorpus":
        """New corpus containing ``keep`` but sharing cluster metadata."""
        child = SyntheticCorpus(keep)
        child._cluster_meta = self._cluster_meta
        return child

    def noise_rate(self) -> float:
        """Fraction of offers sitting in the wrong cluster (ground truth)."""
        if not self.offers:
            return 0.0
        return sum(offer.is_noise for offer in self.offers) / len(self.offers)
