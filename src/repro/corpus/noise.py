"""Cluster-noise injection (dirty rows for outlier removal and dedup).

PDC2020's identifier clusters are ~93-98% clean; the rest are offers that
carry the wrong identifier.  We inject exactly that failure mode — an offer
rendered from a *different* product but filed under this cluster — plus
row-level duplicates and too-short titles, so the Section 3.2 heuristics
have the same signals to act on as in the paper.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.corpus.schema import ProductOffer

__all__ = ["make_wrong_cluster_offer", "make_duplicate_offer", "make_short_offer"]


def make_wrong_cluster_offer(
    victim_cluster_id: str,
    foreign_offer: ProductOffer,
    *,
    offer_id: str,
) -> ProductOffer:
    """File a copy of ``foreign_offer`` under ``victim_cluster_id``.

    ``true_cluster_id`` preserves ground truth so the corpus can report its
    real noise rate and tests can verify outlier removal.
    """
    return replace(
        foreign_offer,
        offer_id=offer_id,
        cluster_id=victim_cluster_id,
        true_cluster_id=foreign_offer.cluster_id,
    )


def make_duplicate_offer(original: ProductOffer, *, offer_id: str) -> ProductOffer:
    """Exact content duplicate with a fresh offer id (dedup target)."""
    return replace(original, offer_id=offer_id)


def make_short_offer(
    original: ProductOffer,
    rng: np.random.Generator,
    *,
    offer_id: str,
    max_tokens: int = 4,
) -> ProductOffer:
    """Truncate the title below the 5-token threshold of Section 3.2."""
    tokens = original.title.split(" ")
    keep = int(rng.integers(1, max_tokens + 1))
    return replace(
        original,
        offer_id=offer_id,
        title=" ".join(tokens[:keep]),
        description=None,
    )
