"""Non-English and non-Latin offer generation (dirty rows for cleansing).

PDC2020 is multi-lingual; Section 3.2 removes non-English offers with a
fastText language identifier and a non-Latin-character filter.  To exercise
those stages we inject offers whose descriptions are built from small
German/French/Spanish/Italian word banks and a handful of offers with
Cyrillic/Greek titles.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.catalog import ProductSpec

__all__ = ["FOREIGN_WORD_BANKS", "foreign_description", "foreign_title", "non_latin_title"]

# Function words and commerce vocabulary with strong language signal.
FOREIGN_WORD_BANKS: dict[str, tuple[str, ...]] = {
    "de": (
        "und", "mit", "für", "der", "die", "das", "eine", "nicht", "auch",
        "lieferung", "kostenloser", "versand", "garantie", "neuwertig",
        "gebraucht", "zustand", "angebot", "preis", "schnelle", "qualität",
        "hervorragende", "leistung", "speicher", "festplatte", "bildschirm",
        "kaufen", "jetzt", "verfügbar", "auf", "lager", "originalverpackung",
    ),
    "fr": (
        "et", "avec", "pour", "le", "la", "les", "une", "pas", "aussi",
        "livraison", "gratuite", "garantie", "neuf", "occasion", "état",
        "offre", "prix", "rapide", "qualité", "excellente", "performance",
        "mémoire", "disque", "écran", "acheter", "maintenant", "disponible",
        "en", "stock", "emballage", "d'origine",
    ),
    "es": (
        "y", "con", "para", "el", "la", "los", "una", "no", "también",
        "envío", "gratis", "garantía", "nuevo", "usado", "estado", "oferta",
        "precio", "rápido", "calidad", "excelente", "rendimiento", "memoria",
        "disco", "pantalla", "comprar", "ahora", "disponible", "almacén",
    ),
    "it": (
        "e", "con", "per", "il", "la", "gli", "una", "non", "anche",
        "spedizione", "gratuita", "garanzia", "nuovo", "usato", "stato",
        "offerta", "prezzo", "veloce", "qualità", "eccellente", "prestazioni",
        "memoria", "disco", "schermo", "comprare", "adesso", "disponibile",
    ),
}

_CYRILLIC_WORDS = ("жесткий", "диск", "новый", "доставка", "гарантия", "купить")
_GREEK_WORDS = ("σκληρός", "δίσκος", "νέος", "εγγύηση", "αποστολή", "προσφορά")


def foreign_description(
    language: str, rng: np.random.Generator, *, n_words: int = 18
) -> str:
    """A pseudo-sentence drawn from the language's word bank."""
    bank = FOREIGN_WORD_BANKS[language]
    words = [str(bank[int(i)]) for i in rng.integers(0, len(bank), size=n_words)]
    return " ".join(words).capitalize() + "."


def foreign_title(
    product: ProductSpec, language: str, rng: np.random.Generator
) -> str:
    """Foreign-language title: product head terms plus bank words.

    Mirrors real non-English offers which keep brand/model tokens but
    surround them with local-language commerce vocabulary.
    """
    bank = FOREIGN_WORD_BANKS[language]
    local = [str(bank[int(i)]) for i in rng.integers(0, len(bank), size=6)]
    specs = list(product.specs.values())[:1]
    return " ".join([product.brand, product.line, *specs, *local])


def non_latin_title(product: ProductSpec, rng: np.random.Generator) -> str:
    """Title dominated by non-Latin characters (Cyrillic or Greek)."""
    words = _CYRILLIC_WORDS if rng.random() < 0.5 else _GREEK_WORDS
    chosen = [str(words[int(i)]) for i in rng.integers(0, len(words), size=5)]
    return " ".join([product.line, *chosen])
