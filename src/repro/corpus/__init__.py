"""Synthetic schema.org product-offer corpus (the PDC2020 stand-in).

The paper builds WDC Products from the WDC Product Data Corpus 2020 — ~98M
offers extracted from Common Crawl pages that annotate products with
schema.org markup and identifiers (GTIN/MPN/SKU).  Without web access we
generate a synthetic corpus with the same *structural* properties:

* offers carry the five benchmark attributes (title, description, price,
  priceCurrency, brand) with realistic density,
* identifiers group offers into product clusters,
* clusters belong to *families* of near-identical sibling products
  (differing in one or two spec values) — the raw material for negative
  corner-cases,
* offers for one product differ per vendor in wording, abbreviations,
  units, token order and attribute completeness — the raw material for
  positive corner-cases,
* a configurable fraction of rows is dirty (non-English offers, duplicate
  rows, too-short titles, offers assigned to the wrong cluster) so the
  Section 3.2 cleansing pipeline has real work to do.
"""

from repro.corpus.schema import ProductCluster, ProductOffer, SyntheticCorpus
from repro.corpus.catalog import Catalog, CategorySpec, ProductFamily, ProductSpec
from repro.corpus.identifiers import gtin13, gtin13_check_digit, mpn, sku
from repro.corpus.vendors import VendorStyle, make_vendor_styles
from repro.corpus.generator import CorpusConfig, CorpusGenerator

__all__ = [
    "ProductOffer",
    "ProductCluster",
    "SyntheticCorpus",
    "Catalog",
    "CategorySpec",
    "ProductFamily",
    "ProductSpec",
    "gtin13",
    "gtin13_check_digit",
    "mpn",
    "sku",
    "VendorStyle",
    "make_vendor_styles",
    "CorpusConfig",
    "CorpusGenerator",
]
