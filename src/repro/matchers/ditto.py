"""The Ditto matcher (Section 5.1).

Relative to the RoBERTa baseline, Ditto adds (i) attribute-tag
serialization (``COL <attr> VAL <value>``), (ii) the *delete* data
augmentation operator applied per training batch, and (iii) domain
knowledge injection, reproduced as number/unit normalization.  Everything
else (optimizer, schedule, early stopping) is inherited.
"""

from __future__ import annotations

import numpy as np

from repro.matchers.augmentation import delete_augment, normalize_numbers
from repro.matchers.transformer import TrainSettings, TransformerMatcher

__all__ = ["DittoMatcher"]


class DittoMatcher(TransformerMatcher):
    """Transformer matcher with Ditto's serialization, DA and DK modules."""

    name = "ditto"
    serialization_style = "ditto"

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained=None,
        augment_rate: float = 0.12,
        use_domain_knowledge: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(settings=settings, pretrained=pretrained, seed=seed)
        self.augment_rate = augment_rate
        if use_domain_knowledge:
            self.text_normalizer = normalize_numbers
        self.token_augment = (
            lambda ids, rng: delete_augment(ids, rng, rate=self.augment_rate)
        )
