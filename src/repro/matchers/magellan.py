"""The Magellan baseline (Section 5.1).

Magellan generates attribute-type-aware similarity features for each pair
and feeds them to a random-forest classifier.  The feature set below
mirrors Magellan's automatic feature generation for the five benchmark
attributes: token-set metrics for textual attributes, edit-based metrics
for short strings, relative difference for the numeric price, and exact
match for the currency code.

Featurization runs through the batched kernels of
:mod:`repro.similarity.features`: all token-set metrics of a
:class:`~repro.core.datasets.PairDataset` come out of a few sparse matrix
ops per attribute, and the edit metrics out of chunked NumPy DP kernels.
``pair_features`` remains as the scalar reference implementation that the
parity tests pin ``pair_features_batch`` against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.datasets import LabeledPair, PairDataset
from repro.matchers.base import PairwiseMatcher
from repro.ml.grid_search import GridSearch
from repro.ml.random_forest import RandomForest
from repro.similarity.character_based import jaro_winkler_similarity, levenshtein_similarity
from repro.similarity.engine import SimilarityEngine
from repro.similarity.features import (
    AttributeView,
    jaro_winkler_similarity_batch,
    levenshtein_similarity_batch,
)
from repro.similarity.token_based import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    overlap_coefficient,
)

__all__ = ["MagellanMatcher", "pair_features", "pair_features_batch"]

_DEFAULT_GRID = {
    "n_trees": (15,),
    "max_depth": (8, 12),
}

_MISSING = -1.0  # Magellan encodes missing attribute values distinctly
_TITLE_EDIT_PREFIX = 48  # edit metric on the raw string, capped for cost
N_FEATURES = 11


def _text_or_empty(value: str | None) -> str:
    return value if value else ""


def pair_features(pair: LabeledPair) -> list[float]:
    """Attribute-wise similarity feature vector for one pair (reference).

    This is the scalar reference; production featurization goes through
    :func:`pair_features_batch`, which is parity-tested against it.
    """
    a, b = pair.offer_a, pair.offer_b
    features: list[float] = []

    # title: token-based metrics + an edit metric on the raw string.
    features.append(jaccard_similarity(a.title, b.title))
    features.append(cosine_similarity(a.title, b.title))
    features.append(dice_similarity(a.title, b.title))
    features.append(overlap_coefficient(a.title, b.title))
    features.append(
        levenshtein_similarity(a.title[:_TITLE_EDIT_PREFIX], b.title[:_TITLE_EDIT_PREFIX])
    )

    # description: token overlap (or missing indicator).
    if a.description and b.description:
        features.append(jaccard_similarity(a.description, b.description))
        features.append(cosine_similarity(a.description, b.description))
    else:
        features.extend((_MISSING, _MISSING))

    # brand: short string -> exact + Jaro-Winkler.
    brand_a, brand_b = _text_or_empty(a.brand), _text_or_empty(b.brand)
    if brand_a and brand_b:
        features.append(1.0 if brand_a.lower() == brand_b.lower() else 0.0)
        features.append(jaro_winkler_similarity(brand_a.lower(), brand_b.lower()))
    else:
        features.extend((_MISSING, _MISSING))

    # price: relative difference.
    if a.price is not None and b.price is not None and max(a.price, b.price) > 0:
        features.append(abs(a.price - b.price) / max(a.price, b.price))
    else:
        features.append(_MISSING)

    # priceCurrency: exact match.
    if a.price_currency and b.price_currency:
        features.append(1.0 if a.price_currency == b.price_currency else 0.0)
    else:
        features.append(_MISSING)

    return features


def _resolve_views(
    pairs: Sequence[LabeledPair],
    engine: SimilarityEngine | None,
    offer_rows: dict[str, int] | None,
) -> tuple[AttributeView, AttributeView, AttributeView, np.ndarray, np.ndarray]:
    """Title/description/brand views plus per-side row arrays for ``pairs``.

    With a corpus-level ``engine`` (and its ``offer_rows`` id → row map)
    the views are the engine's cached attribute views — zero tokenization
    here.  Otherwise a local universe over the dataset's unique offers is
    built, which still featurizes each distinct offer once instead of once
    per pair.
    """
    if (
        engine is not None
        and offer_rows is not None
        and engine.has_attribute("description")
        and engine.has_attribute("brand")
        and all(
            pair.offer_a.offer_id in offer_rows
            and pair.offer_b.offer_id in offer_rows
            for pair in pairs
        )
    ):
        rows_a = np.array(
            [offer_rows[pair.offer_a.offer_id] for pair in pairs], dtype=np.intp
        )
        rows_b = np.array(
            [offer_rows[pair.offer_b.offer_id] for pair in pairs], dtype=np.intp
        )
        return (
            engine.attribute_view("title"),
            engine.attribute_view("description"),
            engine.attribute_view("brand"),
            rows_a,
            rows_b,
        )

    index: dict[str, int] = {}
    unique = []
    for pair in pairs:
        for offer in (pair.offer_a, pair.offer_b):
            if offer.offer_id not in index:
                index[offer.offer_id] = len(unique)
                unique.append(offer)
    rows_a = np.array([index[pair.offer_a.offer_id] for pair in pairs], dtype=np.intp)
    rows_b = np.array([index[pair.offer_b.offer_id] for pair in pairs], dtype=np.intp)
    title_view = AttributeView([offer.title for offer in unique])
    description_view = AttributeView([offer.description for offer in unique])
    brand_view = AttributeView([offer.brand for offer in unique])
    return title_view, description_view, brand_view, rows_a, rows_b


def pair_features_batch(
    pairs: Sequence[LabeledPair],
    *,
    engine: SimilarityEngine | None = None,
    offer_rows: dict[str, int] | None = None,
) -> np.ndarray:
    """Batched ``pair_features`` for a whole pair collection.

    Token-set metrics run through sparse :class:`AttributeView` kernels,
    edit metrics through the chunked char-array DP kernels (Jaro-Winkler
    additionally deduplicated over distinct lowered brand pairs — brands
    repeat heavily), and the numeric features are plain array arithmetic.
    """
    pairs = list(pairs)
    if not pairs:
        return np.zeros((0, N_FEATURES), dtype=np.float64)
    n = len(pairs)
    features = np.empty((n, N_FEATURES), dtype=np.float64)

    title_view, description_view, brand_view, rows_a, rows_b = _resolve_views(
        pairs, engine, offer_rows
    )

    # title: four token-set metrics + prefix-capped edit similarity.
    features[:, 0:4] = title_view.pair_metrics(rows_a, rows_b)
    titles_a = [title_view.texts[int(row)][:_TITLE_EDIT_PREFIX] for row in rows_a]
    titles_b = [title_view.texts[int(row)][:_TITLE_EDIT_PREFIX] for row in rows_b]
    features[:, 4] = levenshtein_similarity_batch(titles_a, titles_b)

    # description: token metrics where both sides are present.
    description_present = (
        description_view.present[rows_a] & description_view.present[rows_b]
    )
    description_metrics = description_view.pair_metrics(
        rows_a, rows_b, ("jaccard", "cosine")
    )
    features[:, 5] = np.where(description_present, description_metrics[:, 0], _MISSING)
    features[:, 6] = np.where(description_present, description_metrics[:, 1], _MISSING)

    # brand: exact + Jaro-Winkler on the lowered strings.  Distinct brands
    # are few, so lowering is cached per view row and both features are
    # computed per distinct (brand, brand) combination and scattered back.
    lowered: dict[int, str] = {}

    def _lowered_brand(row: int) -> str:
        cached = lowered.get(row)
        if cached is None:
            cached = brand_view.texts[row].lower()
            lowered[row] = cached
        return cached

    brands_a = [_lowered_brand(int(row)) for row in rows_a]
    brands_b = [_lowered_brand(int(row)) for row in rows_b]
    brand_present = brand_view.present[rows_a] & brand_view.present[rows_b]
    brand_codes: dict[str, int] = {}
    codes_a = np.array([brand_codes.setdefault(b, len(brand_codes)) for b in brands_a])
    codes_b = np.array([brand_codes.setdefault(b, len(brand_codes)) for b in brands_b])
    features[:, 7] = np.where(
        brand_present, (codes_a == codes_b).astype(np.float64), _MISSING
    )
    pair_codes: dict[tuple[str, str], int] = {}
    pair_index = np.array(
        [
            pair_codes.setdefault((left, right), len(pair_codes))
            for left, right, present in zip(brands_a, brands_b, brand_present)
            if present
        ],
        dtype=np.intp,
    )
    if pair_codes:
        unique_pairs = list(pair_codes)
        unique_jw = jaro_winkler_similarity_batch(
            [left for left, _ in unique_pairs], [right for _, right in unique_pairs]
        )
        brand_jw = np.full(n, _MISSING, dtype=np.float64)
        brand_jw[np.flatnonzero(brand_present)] = unique_jw[pair_index]
        features[:, 8] = brand_jw
    else:
        features[:, 8] = _MISSING

    # price: relative difference where both sides have a positive max.
    prices_a = np.array(
        [np.nan if pair.offer_a.price is None else pair.offer_a.price for pair in pairs]
    )
    prices_b = np.array(
        [np.nan if pair.offer_b.price is None else pair.offer_b.price for pair in pairs]
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        price_max = np.maximum(prices_a, prices_b)
        price_valid = ~np.isnan(prices_a) & ~np.isnan(prices_b) & (price_max > 0)
        features[:, 9] = np.where(
            price_valid, np.abs(prices_a - prices_b) / np.where(price_valid, price_max, 1.0), _MISSING
        )

    # priceCurrency: exact match where both sides are set.
    currency_codes: dict[str, int] = {}
    currencies_a = np.array(
        [
            currency_codes.setdefault(pair.offer_a.price_currency or "", len(currency_codes))
            for pair in pairs
        ]
    )
    currencies_b = np.array(
        [
            currency_codes.setdefault(pair.offer_b.price_currency or "", len(currency_codes))
            for pair in pairs
        ]
    )
    currency_present = np.array(
        [
            bool(pair.offer_a.price_currency) and bool(pair.offer_b.price_currency)
            for pair in pairs
        ],
        dtype=bool,
    )
    features[:, 10] = np.where(
        currency_present, (currencies_a == currencies_b).astype(np.float64), _MISSING
    )
    return features


class MagellanMatcher(PairwiseMatcher):
    """Attribute similarity features + random forest, tuned by grid search."""

    name = "magellan"

    def __init__(
        self,
        *,
        param_grid: dict | None = None,
        max_train_pairs: int | None = 10000,
        seed: int = 0,
        engine: SimilarityEngine | None = None,
        offer_rows: dict[str, int] | None = None,
    ) -> None:
        self.param_grid = dict(param_grid) if param_grid is not None else dict(_DEFAULT_GRID)
        # Batched featurization is cheap, but very large training sets are
        # still subsampled to bound forest training time (None disables).
        self.max_train_pairs = max_train_pairs
        self.seed = seed
        # Optional corpus-level featurization backend: when set (the
        # experiment runner threads it through), attribute tokenization is
        # shared across every dataset and matcher on the same corpus.
        self.engine = engine
        self.offer_rows = offer_rows
        self.search: GridSearch | None = None

    def _features(self, dataset: PairDataset) -> np.ndarray:
        return pair_features_batch(
            dataset.pairs, engine=self.engine, offer_rows=self.offer_rows
        )

    def fit(self, train: PairDataset, valid: PairDataset) -> "MagellanMatcher":
        pairs = train.pairs
        if self.max_train_pairs is not None and len(pairs) > self.max_train_pairs:
            rng = np.random.default_rng(self.seed)
            chosen = rng.choice(len(pairs), size=self.max_train_pairs, replace=False)
            train = PairDataset(
                name=f"{train.name}-sub", pairs=[pairs[int(i)] for i in chosen]
            )
        self.search = GridSearch(
            factory=lambda **params: RandomForest(seed=self.seed, **params),
            param_grid=self.param_grid,
        )
        self.search.fit(
            self._features(train),
            np.array(train.labels()),
            self._features(valid),
            np.array(valid.labels()),
        )
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.search is None:
            raise RuntimeError("MagellanMatcher.fit() must be called first")
        return np.asarray(self.search.predict(self._features(dataset)))
