"""The Magellan baseline (Section 5.1).

Magellan generates attribute-type-aware similarity features for each pair
and feeds them to a random-forest classifier.  The feature set below
mirrors Magellan's automatic feature generation for the five benchmark
attributes: token-set metrics for textual attributes, edit-based metrics
for short strings, relative difference for the numeric price, and exact
match for the currency code.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets import LabeledPair, PairDataset
from repro.matchers.base import PairwiseMatcher
from repro.ml.grid_search import GridSearch
from repro.ml.random_forest import RandomForest
from repro.similarity.character_based import jaro_winkler_similarity, levenshtein_similarity
from repro.similarity.token_based import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    overlap_coefficient,
)

__all__ = ["MagellanMatcher"]

_DEFAULT_GRID = {
    "n_trees": (15,),
    "max_depth": (8, 12),
}

_MISSING = -1.0  # Magellan encodes missing attribute values distinctly


def _text_or_empty(value: str | None) -> str:
    return value if value else ""


def pair_features(pair: LabeledPair) -> list[float]:
    """Attribute-wise similarity feature vector for one pair."""
    a, b = pair.offer_a, pair.offer_b
    features: list[float] = []

    # title: token-based metrics + an edit metric on the raw string.
    features.append(jaccard_similarity(a.title, b.title))
    features.append(cosine_similarity(a.title, b.title))
    features.append(dice_similarity(a.title, b.title))
    features.append(overlap_coefficient(a.title, b.title))
    features.append(levenshtein_similarity(a.title[:48], b.title[:48]))

    # description: token overlap (or missing indicator).
    if a.description and b.description:
        features.append(jaccard_similarity(a.description, b.description))
        features.append(cosine_similarity(a.description, b.description))
    else:
        features.extend((_MISSING, _MISSING))

    # brand: short string -> exact + Jaro-Winkler.
    brand_a, brand_b = _text_or_empty(a.brand), _text_or_empty(b.brand)
    if brand_a and brand_b:
        features.append(1.0 if brand_a.lower() == brand_b.lower() else 0.0)
        features.append(jaro_winkler_similarity(brand_a.lower(), brand_b.lower()))
    else:
        features.extend((_MISSING, _MISSING))

    # price: relative difference.
    if a.price is not None and b.price is not None and max(a.price, b.price) > 0:
        features.append(abs(a.price - b.price) / max(a.price, b.price))
    else:
        features.append(_MISSING)

    # priceCurrency: exact match.
    if a.price_currency and b.price_currency:
        features.append(1.0 if a.price_currency == b.price_currency else 0.0)
    else:
        features.append(_MISSING)

    return features


class MagellanMatcher(PairwiseMatcher):
    """Attribute similarity features + random forest, tuned by grid search."""

    name = "magellan"

    def __init__(
        self,
        *,
        param_grid: dict | None = None,
        max_train_pairs: int | None = 10000,
        seed: int = 0,
    ) -> None:
        self.param_grid = dict(param_grid) if param_grid is not None else dict(_DEFAULT_GRID)
        # Feature extraction is quadratic-ish in Python-call overhead; the
        # cap subsamples very large training sets (None disables).
        self.max_train_pairs = max_train_pairs
        self.seed = seed
        self.search: GridSearch | None = None

    def _features(self, dataset: PairDataset) -> np.ndarray:
        return np.array([pair_features(pair) for pair in dataset], dtype=np.float64)

    def fit(self, train: PairDataset, valid: PairDataset) -> "MagellanMatcher":
        pairs = train.pairs
        if self.max_train_pairs is not None and len(pairs) > self.max_train_pairs:
            rng = np.random.default_rng(self.seed)
            chosen = rng.choice(len(pairs), size=self.max_train_pairs, replace=False)
            train = PairDataset(
                name=f"{train.name}-sub", pairs=[pairs[int(i)] for i in chosen]
            )
        self.search = GridSearch(
            factory=lambda **params: RandomForest(seed=self.seed, **params),
            param_grid=self.param_grid,
        )
        self.search.fit(
            self._features(train),
            np.array(train.labels()),
            self._features(valid),
            np.array(valid.labels()),
        )
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.search is None:
            raise RuntimeError("MagellanMatcher.fit() must be called first")
        return np.asarray(self.search.predict(self._features(dataset)))
