"""The matching systems evaluated in Section 5.

Six systems, as in the paper:

* :class:`WordCoocMatcher` / :class:`WordOccurrenceClassifier` — the
  symbolic Word-(Co)Occurrence baseline (binary features + LinearSVM),
* :class:`MagellanMatcher` — attribute-typed similarity features + random
  forest,
* :class:`TransformerMatcher` — the RoBERTa stand-in (mini Transformer
  encoder fine-tuned with cross-entropy),
* :class:`DittoMatcher` — Transformer + attribute-tag serialization +
  *delete* data augmentation + domain-knowledge number normalization,
* :class:`RSupConMatcher` — supervised-contrastive pre-training, frozen
  encoder, cross-entropy classification head,
* :class:`HierGATMatcher` — hierarchical (token → attribute → entity)
  attention aggregation.

Every pair-wise system implements :class:`PairwiseMatcher`; systems that
also support the multi-class formulation implement
:class:`MulticlassMatcher`.
"""

from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.serialize import serialize_offer, serialize_pair
from repro.matchers.word_cooc import WordCoocMatcher, WordOccurrenceClassifier
from repro.matchers.magellan import MagellanMatcher
from repro.matchers.transformer import TransformerMatcher, TransformerMulticlass
from repro.matchers.augmentation import delete_augment, normalize_numbers
from repro.matchers.ditto import DittoMatcher
from repro.matchers.rsupcon import RSupConMatcher, RSupConMulticlass
from repro.matchers.hiergat import HierGATMatcher

__all__ = [
    "PairwiseMatcher",
    "MulticlassMatcher",
    "serialize_offer",
    "serialize_pair",
    "WordCoocMatcher",
    "WordOccurrenceClassifier",
    "MagellanMatcher",
    "TransformerMatcher",
    "TransformerMulticlass",
    "delete_augment",
    "normalize_numbers",
    "DittoMatcher",
    "RSupConMatcher",
    "RSupConMulticlass",
    "HierGATMatcher",
]
