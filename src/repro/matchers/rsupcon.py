"""R-SupCon: supervised contrastive pre-training + frozen-encoder head.

Stage 1 pre-trains the offer encoder with the supervised contrastive loss
(all offers of the same product are mutual positives); stage 2 freezes the
encoder and trains only a classification head with cross-entropy — for
pair-wise matching over the combined pair representation
``[u; v; |u-v|; u*v]``, for multi-class matching directly over the product
label space.  Batches are *product-grouped* so every anchor has at least
one in-batch positive, which is what makes contrastive training data-
efficient (the behaviour Table 3/5 highlight).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.corpus.schema import ProductOffer
from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.serialize import serialize_offer
from repro.matchers.transformer import TrainSettings, pad_batch
from repro.ml.metrics import micro_f1, precision_recall_f1
from repro.nn.layers import Linear
from repro.nn.pretrain import (
    N_LEXICAL_FEATURES,
    PairHead,
    digit_piece_ids,
    lexical_overlap_features,
)
from repro.nn.losses import cross_entropy, supervised_contrastive_loss
from repro.nn.optim import Adam, WarmupLinearSchedule
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.text.vocabulary import SubwordTokenizer

__all__ = ["RSupConMatcher", "RSupConMulticlass"]


class _ContrastiveEncoder:
    """Shared stage-1 logic: tokenizer + encoder + SupCon pre-training.

    With a ``pretrained`` MiniLM checkpoint, stage 1 starts from the
    checkpoint weights — mirroring how R-SupCon contrastively tunes
    RoBERTa-base rather than a random encoder.
    """

    def __init__(
        self,
        settings: TrainSettings,
        *,
        pretrain_epochs: int,
        seed: int,
        pretrained=None,
    ):
        self.settings = settings
        self.pretrain_epochs = pretrain_epochs
        self.seed = seed
        self.pretrained = pretrained
        if pretrained is not None:
            self.settings.dim = pretrained.dim
            self.settings.n_heads = pretrained.n_heads
            self.settings.n_layers = pretrained.n_layers
            self.settings.vocab_size = pretrained.vocab_size
            self.settings.max_length = min(
                self.settings.max_length, pretrained.max_length
            )
        self.tokenizer: SubwordTokenizer | None = None
        self.encoder: TransformerEncoder | None = None

    # ------------------------------------------------------------------ #
    def encode_texts(self, texts: list[str]) -> list[list[int]]:
        assert self.tokenizer is not None
        sequences = []
        for text in texts:
            ids = [self.tokenizer.vocab.cls_id]
            ids.extend(self.tokenizer.encode(text, max_length=self.settings.max_length - 1))
            sequences.append(ids[: self.settings.max_length])
        return sequences

    def embed(self, sequences: list[list[int]], *, batch_size: int = 256) -> np.ndarray:
        """Frozen-encoder embeddings (no gradients)."""
        assert self.encoder is not None and self.tokenizer is not None
        self.encoder.eval()
        chunks = []
        with no_grad():
            for start in range(0, len(sequences), batch_size):
                batch = pad_batch(
                    sequences[start : start + batch_size],
                    pad_id=self.tokenizer.pad_id,
                    max_length=self.settings.max_length,
                )
                chunks.append(self.encoder.pool(batch).numpy())
        self.encoder.train()
        if not chunks:
            return np.zeros((0, self.settings.dim))
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------ #
    def pretrain(
        self,
        offers: list[ProductOffer],
        labels: list[str],
        *,
        batch_products: int = 48,
    ) -> None:
        """Stage 1: SupCon over product-grouped batches."""
        settings = self.settings
        rng = np.random.default_rng(self.seed)
        texts = [serialize_offer(offer) for offer in offers]
        if self.pretrained is not None and self.pretrained.tokenizer is not None:
            self.tokenizer = self.pretrained.tokenizer
        else:
            self.tokenizer = SubwordTokenizer(vocab_size=settings.vocab_size).train(texts)
        self.encoder = TransformerEncoder(
            len(self.tokenizer),
            dim=settings.dim,
            n_heads=settings.n_heads,
            n_layers=settings.n_layers,
            max_length=settings.max_length,
            dropout=settings.dropout,
            pad_id=self.tokenizer.pad_id,
            seed=self.seed,
        )
        if self.pretrained is not None:
            self.pretrained.initialize_encoder(self.encoder)
        sequences = self.encode_texts(texts)

        by_product: dict[str, list[int]] = defaultdict(list)
        for position, label in enumerate(labels):
            by_product[label].append(position)
        products = sorted(by_product)
        multi_offer_products = [p for p in products if len(by_product[p]) >= 2]
        if not multi_offer_products:
            return  # nothing to contrast

        steps_per_epoch = max(1, len(multi_offer_products) // batch_products)
        total_steps = steps_per_epoch * self.pretrain_epochs
        schedule = WarmupLinearSchedule(
            settings.peak_lr, max(1, total_steps // 10), total_steps
        )
        optimizer = Adam(self.encoder.parameters(), lr=schedule, weight_decay=0.01)
        label_codes = {label: code for code, label in enumerate(products)}

        for _epoch in range(self.pretrain_epochs):
            order = rng.permutation(len(multi_offer_products))
            for start in range(0, len(order), batch_products):
                chosen = order[start : start + batch_products]
                if len(chosen) < 2:
                    continue
                positions: list[int] = []
                batch_labels: list[int] = []
                for product_index in chosen:
                    product = multi_offer_products[int(product_index)]
                    members = by_product[product]
                    take = min(2, len(members))
                    picked = rng.choice(len(members), size=take, replace=False)
                    for i in picked:
                        positions.append(members[int(i)])
                        batch_labels.append(label_codes[product])
                batch = pad_batch(
                    [sequences[p] for p in positions],
                    pad_id=self.tokenizer.pad_id,
                    max_length=settings.max_length,
                )
                embeddings = self.encoder.pool(batch)
                loss = supervised_contrastive_loss(
                    embeddings, np.array(batch_labels)
                )
                self.encoder.zero_grad()
                loss.backward()
                optimizer.step()


def _pair_features(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Combined pair representation for the frozen-encoder head."""
    return np.concatenate([u, v, np.abs(u - v), u * v], axis=-1)


def _pair_features_with_lexical(
    u: np.ndarray, v: np.ndarray, lexical: np.ndarray
) -> np.ndarray:
    """Embedding interaction features plus the lexical-overlap channel.

    As with the cross-encoders, the tiny contrastive encoder receives the
    explicit token-overlap evidence RoBERTa-scale models compute
    internally (see :func:`repro.nn.pretrain.lexical_overlap_features`).
    """
    return np.concatenate([_pair_features(u, v), lexical], axis=-1)


class RSupConMatcher(PairwiseMatcher):
    """Pair-wise R-SupCon."""

    name = "rsupcon"

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained=None,
        pretrain_epochs: int = 25,
        head_epochs: int = 40,
        head_lr: float = 5e-3,
        seed: int = 0,
    ) -> None:
        self.settings = settings if settings is not None else TrainSettings()
        self.stage1 = _ContrastiveEncoder(
            self.settings,
            pretrain_epochs=pretrain_epochs,
            seed=seed,
            pretrained=pretrained,
        )
        self.head_epochs = head_epochs
        self.head_lr = head_lr
        self.seed = seed
        self.head: PairHead | None = None

    # ------------------------------------------------------------------ #
    def _offer_embeddings(self, dataset: PairDataset) -> dict[str, np.ndarray]:
        offers = dataset.offers()
        sequences = self.stage1.encode_texts(
            [serialize_offer(offer) for offer in offers]
        )
        vectors = self.stage1.embed(sequences)
        return {offer.offer_id: vectors[i] for i, offer in enumerate(offers)}

    def _features(self, dataset: PairDataset) -> np.ndarray:
        assert self.stage1.tokenizer is not None
        embeddings = self._offer_embeddings(dataset)
        tokenizer = self.stage1.tokenizer
        digits = digit_piece_ids(tokenizer)
        max_tokens = self.settings.max_length
        encoded = {
            offer.offer_id: tokenizer.encode(
                serialize_offer(offer), max_length=max_tokens
            )
            for offer in dataset.offers()
        }
        rows = [
            _pair_features_with_lexical(
                embeddings[pair.offer_a.offer_id],
                embeddings[pair.offer_b.offer_id],
                np.array(
                    lexical_overlap_features(
                        encoded[pair.offer_a.offer_id],
                        encoded[pair.offer_b.offer_id],
                        digits,
                    )
                ),
            )
            for pair in dataset
        ]
        width = self.settings.dim * 4 + N_LEXICAL_FEATURES
        return np.array(rows) if rows else np.zeros((0, width))

    def fit(self, train: PairDataset, valid: PairDataset) -> "RSupConMatcher":
        offers = train.offers()
        self.stage1.pretrain(offers, [offer.cluster_id for offer in offers])

        train_x = self._features(train)
        train_y = np.array(train.labels())
        valid_x = self._features(valid)
        valid_y = np.array(valid.labels())

        rng = np.random.default_rng(self.seed + 1)
        self.head = PairHead(
            self.settings.dim * 4 + N_LEXICAL_FEATURES, seed=self.seed + 13
        )
        optimizer = Adam(list(self.head.parameters()), lr=self.head_lr)
        n_pos = max(int(train_y.sum()), 1)
        n_neg = max(len(train_y) - n_pos, 1)
        class_weights = np.array([1.0, n_neg / n_pos])

        best_f1 = -1.0
        best_weights: tuple[np.ndarray, np.ndarray] | None = None
        batch_size = 256
        for _epoch in range(self.head_epochs):
            order = rng.permutation(len(train_x))
            for start in range(0, len(order), batch_size):
                indices = order[start : start + batch_size]
                logits = self.head(Tensor(train_x[indices]))
                loss = cross_entropy(logits, train_y[indices], class_weights=class_weights)
                self.head.zero_grad()
                loss.backward()
                optimizer.step()
            with no_grad():
                predictions = np.argmax(self.head(Tensor(valid_x)).numpy(), axis=1)
            f1 = precision_recall_f1(valid_y.tolist(), predictions.tolist()).f1
            if f1 > best_f1:
                best_f1 = f1
                best_weights = {
                    name: tensor.data.copy()
                    for name, tensor in self.head.named_parameters()
                }
        if best_weights is not None:
            for name, tensor in self.head.named_parameters():
                tensor.data[...] = best_weights[name]
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.head is None:
            raise RuntimeError("RSupConMatcher.fit() must be called first")
        features = self._features(dataset)
        with no_grad():
            logits = self.head(Tensor(features)).numpy()
        return np.argmax(logits, axis=1)


class RSupConMulticlass(MulticlassMatcher):
    """Multi-class R-SupCon: frozen contrastive encoder + linear head."""

    name = "rsupcon"

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained=None,
        pretrain_epochs: int = 25,
        head_epochs: int = 60,
        head_lr: float = 1e-2,
        seed: int = 0,
    ) -> None:
        self.settings = settings if settings is not None else TrainSettings()
        self.stage1 = _ContrastiveEncoder(
            self.settings,
            pretrain_epochs=pretrain_epochs,
            seed=seed,
            pretrained=pretrained,
        )
        self.head_epochs = head_epochs
        self.head_lr = head_lr
        self.seed = seed
        self.head: Linear | None = None
        self._labels: list[str] = []

    def _dataset_embeddings(self, dataset: MulticlassDataset) -> np.ndarray:
        sequences = self.stage1.encode_texts(
            [serialize_offer(offer) for offer in dataset.offers]
        )
        return self.stage1.embed(sequences)

    def fit(
        self, train: MulticlassDataset, valid: MulticlassDataset
    ) -> "RSupConMulticlass":
        self._labels = sorted(set(train.labels))
        label_index = {label: i for i, label in enumerate(self._labels)}
        self.stage1.pretrain(list(train.offers), list(train.labels))

        train_x = self._dataset_embeddings(train)
        train_y = np.array([label_index[label] for label in train.labels])
        valid_x = self._dataset_embeddings(valid)
        valid_y = np.array([label_index.get(label, -1) for label in valid.labels])

        rng = np.random.default_rng(self.seed + 1)
        self.head = Linear(self.settings.dim, len(self._labels), seed=self.seed + 13)
        optimizer = Adam(list(self.head.parameters()), lr=self.head_lr)
        best_score = -1.0
        best_weights: tuple[np.ndarray, np.ndarray] | None = None
        batch_size = 256
        for _epoch in range(self.head_epochs):
            order = rng.permutation(len(train_x))
            for start in range(0, len(order), batch_size):
                indices = order[start : start + batch_size]
                loss = cross_entropy(self.head(Tensor(train_x[indices])), train_y[indices])
                self.head.zero_grad()
                loss.backward()
                optimizer.step()
            with no_grad():
                predictions = np.argmax(self.head(Tensor(valid_x)).numpy(), axis=1)
            score = micro_f1(valid_y.tolist(), predictions.tolist())
            if score > best_score:
                best_score = score
                assert self.head.bias is not None
                best_weights = (self.head.weight.data.copy(), self.head.bias.data.copy())
        if best_weights is not None:
            assert self.head.bias is not None
            self.head.weight.data[...] = best_weights[0]
            self.head.bias.data[...] = best_weights[1]
        return self

    def predict(self, dataset: MulticlassDataset) -> list[str]:
        if self.head is None:
            raise RuntimeError("RSupConMulticlass.fit() must be called first")
        embeddings = self._dataset_embeddings(dataset)
        with no_grad():
            logits = self.head(Tensor(embeddings)).numpy()
        return [self._labels[int(i)] for i in np.argmax(logits, axis=1)]
