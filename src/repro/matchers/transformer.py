"""The RoBERTa-baseline stand-in: a fine-tuned mini Transformer encoder.

``TransformerMatcher`` handles the pair-wise task by encoding
``[CLS] offer_a [SEP] offer_b [SEP]`` and classifying the [CLS] state;
``TransformerMulticlass`` encodes single offers and classifies over the
product label space.  Training follows the paper's recipe at reduced
scale: cross-entropy, Adam with linear warmup-decay, early stopping on
validation score.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.serialize import serialize_offer, serialize_pair
from repro.ml.metrics import micro_f1, precision_recall_f1
from repro.nn.layers import Linear, Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, WarmupLinearSchedule
from repro.nn.pretrain import (
    MiniLM,
    N_LEXICAL_FEATURES,
    PairHead,
    digit_piece_ids,
    lexical_overlap_features,
)
from repro.nn.serialization import load_state_dict, state_dict
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.text.vocabulary import SubwordTokenizer

__all__ = [
    "TransformerMatcher",
    "TransformerMulticlass",
    "pad_batch",
    "TrainSettings",
]

TokenAugment = Callable[[list[int], np.random.Generator], list[int]]


def pad_batch(sequences: list[list[int]], *, pad_id: int, max_length: int) -> np.ndarray:
    """Stack variable-length id lists into a padded int matrix."""
    width = min(max((len(seq) for seq in sequences), default=1), max_length)
    width = max(width, 1)
    batch = np.full((len(sequences), width), pad_id, dtype=np.int64)
    for row, seq in enumerate(sequences):
        trimmed = seq[:width]
        batch[row, : len(trimmed)] = trimmed
    return batch


class TrainSettings:
    """Hyper-parameters shared by the neural matchers."""

    def __init__(
        self,
        *,
        dim: int = 32,
        n_heads: int = 2,
        n_layers: int = 1,
        max_length: int = 48,
        vocab_size: int = 4096,
        epochs: int = 40,
        step_budget: int = 2600,
        min_epochs: int = 4,
        patience: int = 6,
        batch_size: int = 64,
        peak_lr: float = 2e-3,
        dropout: float = 0.1,
        warmup_fraction: float = 0.1,
        include_description: bool = False,
    ) -> None:
        self.dim = dim
        self.n_heads = n_heads
        self.n_layers = n_layers
        self.max_length = max_length
        self.vocab_size = vocab_size
        self.epochs = epochs
        self.step_budget = step_budget
        self.min_epochs = min_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.peak_lr = peak_lr
        self.dropout = dropout
        self.warmup_fraction = warmup_fraction
        self.include_description = include_description

    def effective_epochs(self, n_examples: int) -> int:
        """Epochs bounded by the optimizer-step budget.

        The paper trains every set for 50 epochs; with training sets
        ranging from 2.5k to ~25k pairs, a fixed *step* budget reproduces
        the same relative training effort at laptop scale.
        """
        steps_per_epoch = max(1, (n_examples + self.batch_size - 1) // self.batch_size)
        fitted = max(self.min_epochs, self.step_budget // steps_per_epoch)
        return min(self.epochs, fitted)


class _PairClassifier(Module):
    """Encoder [CLS] state + lexical-overlap features -> binary head."""

    def __init__(self, vocab_size: int, settings: TrainSettings, *, pad_id: int, seed: int):
        super().__init__()
        self.encoder = TransformerEncoder(
            vocab_size,
            dim=settings.dim,
            n_heads=settings.n_heads,
            n_layers=settings.n_layers,
            max_length=settings.max_length,
            dropout=settings.dropout,
            pad_id=pad_id,
            seed=seed,
        )
        self.head = PairHead(settings.dim + N_LEXICAL_FEATURES, seed=seed + 7)

    def forward(self, token_ids: np.ndarray, features: np.ndarray):
        pooled = self.encoder.pool(token_ids)
        combined = Tensor.concat([pooled, Tensor(np.asarray(features))], axis=-1)
        return self.head(combined)


class TransformerMatcher(PairwiseMatcher):
    """Pair-wise cross-encoder fine-tuned with cross-entropy."""

    name = "roberta"
    serialization_style = "plain"
    token_augment: TokenAugment | None = None
    text_normalizer: Callable[[str], str] | None = None

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained: MiniLM | None = None,
        seed: int = 0,
    ) -> None:
        self.settings = settings if settings is not None else TrainSettings()
        self.pretrained = pretrained
        if pretrained is not None:
            # The checkpoint fixes the architecture, as with RoBERTa-base.
            self.settings.dim = pretrained.dim
            self.settings.n_heads = pretrained.n_heads
            self.settings.n_layers = pretrained.n_layers
            self.settings.vocab_size = pretrained.vocab_size
            self.settings.max_length = min(
                self.settings.max_length, pretrained.max_length
            )
        self.seed = seed
        self.tokenizer: SubwordTokenizer | None = None
        self.model: _PairClassifier | None = None

    # ------------------------------------------------------------------ #
    def _texts_for_tokenizer(self, dataset: PairDataset) -> list[str]:
        texts: list[str] = []
        for offer in dataset.offers():
            texts.append(
                serialize_offer(
                    offer,
                    style=self.serialization_style,
                    include_description=self.settings.include_description,
                )
            )
        return texts

    def _encode_dataset(
        self, dataset: PairDataset
    ) -> tuple[list[list[int]], np.ndarray]:
        assert self.tokenizer is not None
        digits = digit_piece_ids(self.tokenizer)
        half = (self.settings.max_length - 3) // 2
        encoded: list[list[int]] = []
        features: list[list[float]] = []
        for pair in dataset:
            left, right = serialize_pair(
                pair.offer_a,
                pair.offer_b,
                style=self.serialization_style,
                include_description=self.settings.include_description,
            )
            if self.text_normalizer is not None:
                left, right = self.text_normalizer(left), self.text_normalizer(right)
            encoded.append(
                self.tokenizer.encode_pair(
                    left, right, max_length=self.settings.max_length
                )
            )
            features.append(
                lexical_overlap_features(
                    self.tokenizer.encode(left, max_length=half),
                    self.tokenizer.encode(right, max_length=half),
                    digits,
                )
            )
        return encoded, np.array(features) if features else np.zeros(
            (0, N_LEXICAL_FEATURES)
        )

    def _predict_logits(
        self, sequences: list[list[int]], features: np.ndarray
    ) -> np.ndarray:
        assert self.model is not None and self.tokenizer is not None
        self.model.eval()
        outputs: list[np.ndarray] = []
        batch_size = max(self.settings.batch_size * 4, 64)
        with no_grad():
            for start in range(0, len(sequences), batch_size):
                chunk = sequences[start : start + batch_size]
                batch = pad_batch(
                    chunk, pad_id=self.tokenizer.pad_id, max_length=self.settings.max_length
                )
                outputs.append(
                    self.model(batch, features[start : start + batch_size]).numpy()
                )
        self.model.train()
        return np.concatenate(outputs, axis=0) if outputs else np.zeros((0, 2))

    def _validation_score(
        self,
        sequences: list[list[int]],
        features: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        logits = self._predict_logits(sequences, features)
        predictions = np.argmax(logits, axis=1)
        return precision_recall_f1(labels.tolist(), predictions.tolist()).f1

    # ------------------------------------------------------------------ #
    def fit(self, train: PairDataset, valid: PairDataset) -> "TransformerMatcher":
        settings = self.settings
        rng = np.random.default_rng(self.seed)

        if self.pretrained is not None and self.pretrained.tokenizer is not None:
            self.tokenizer = self.pretrained.tokenizer
        else:
            self.tokenizer = SubwordTokenizer(vocab_size=settings.vocab_size).train(
                self._texts_for_tokenizer(train) + self._texts_for_tokenizer(valid)
            )
        self.model = _PairClassifier(
            len(self.tokenizer), settings, pad_id=self.tokenizer.pad_id, seed=self.seed
        )
        if self.pretrained is not None:
            self.pretrained.initialize_encoder(self.model.encoder)
            self.pretrained.initialize_pair_head(self.model.head)

        train_sequences, train_features = self._encode_dataset(train)
        train_labels = np.array(train.labels())
        valid_sequences, valid_features = self._encode_dataset(valid)
        valid_labels = np.array(valid.labels())

        n = len(train_sequences)
        epochs = settings.effective_epochs(n)
        steps_per_epoch = max(1, (n + settings.batch_size - 1) // settings.batch_size)
        total_steps = steps_per_epoch * epochs
        schedule = WarmupLinearSchedule(
            settings.peak_lr,
            max(1, int(total_steps * settings.warmup_fraction)),
            total_steps,
        )
        optimizer = Adam(self.model.parameters(), lr=schedule, weight_decay=0.01)

        # Class weighting counters the 1:4 pos/neg imbalance of Section 3.6.
        n_pos = max(int(train_labels.sum()), 1)
        n_neg = max(len(train_labels) - n_pos, 1)
        class_weights = np.array([1.0, n_neg / n_pos])

        best_score = -1.0
        best_state: dict[str, np.ndarray] | None = None
        epochs_without_improvement = 0
        for _epoch in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, settings.batch_size):
                indices = order[start : start + settings.batch_size]
                sequences = [train_sequences[int(i)] for i in indices]
                if self.token_augment is not None:
                    sequences = [self.token_augment(seq, rng) for seq in sequences]
                batch = pad_batch(
                    sequences,
                    pad_id=self.tokenizer.pad_id,
                    max_length=settings.max_length,
                )
                logits = self.model(batch, train_features[indices])
                loss = cross_entropy(
                    logits, train_labels[indices], class_weights=class_weights
                )
                self.model.zero_grad()
                loss.backward()
                optimizer.step()

            score = self._validation_score(
                valid_sequences, valid_features, valid_labels
            )
            if score > best_score:
                best_score = score
                best_state = state_dict(self.model)
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= settings.patience:
                    break
        if best_state is not None:
            load_state_dict(self.model, best_state)
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.model is None or self.tokenizer is None:
            raise RuntimeError(f"{type(self).__name__}.fit() must be called first")
        sequences, features = self._encode_dataset(dataset)
        return np.argmax(self._predict_logits(sequences, features), axis=1)


class _OfferClassifier(Module):
    """Encoder + N-way classification head for the multi-class task."""

    def __init__(
        self,
        vocab_size: int,
        n_classes: int,
        settings: TrainSettings,
        *,
        pad_id: int,
        seed: int,
    ):
        super().__init__()
        self.encoder = TransformerEncoder(
            vocab_size,
            dim=settings.dim,
            n_heads=settings.n_heads,
            n_layers=settings.n_layers,
            max_length=settings.max_length,
            dropout=settings.dropout,
            pad_id=pad_id,
            seed=seed,
        )
        self.head = Linear(settings.dim, n_classes, seed=seed + 7)

    def forward(self, token_ids: np.ndarray):
        return self.head(self.encoder.pool(token_ids))


class TransformerMulticlass(MulticlassMatcher):
    """Multi-class RoBERTa stand-in: one softmax over all products."""

    name = "roberta"
    serialization_style = "plain"

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained: MiniLM | None = None,
        seed: int = 0,
    ) -> None:
        self.settings = settings if settings is not None else TrainSettings()
        self.pretrained = pretrained
        if pretrained is not None:
            self.settings.dim = pretrained.dim
            self.settings.n_heads = pretrained.n_heads
            self.settings.n_layers = pretrained.n_layers
            self.settings.vocab_size = pretrained.vocab_size
            self.settings.max_length = min(
                self.settings.max_length, pretrained.max_length
            )
        self.seed = seed
        self.tokenizer: SubwordTokenizer | None = None
        self.model: _OfferClassifier | None = None
        self._labels: list[str] = []

    def _encode(self, dataset: MulticlassDataset) -> list[list[int]]:
        assert self.tokenizer is not None
        sequences = []
        for offer in dataset.offers:
            text = serialize_offer(offer, style=self.serialization_style)
            ids = [self.tokenizer.vocab.cls_id]
            ids.extend(
                self.tokenizer.encode(text, max_length=self.settings.max_length - 1)
            )
            sequences.append(ids[: self.settings.max_length])
        return sequences

    def _predict_logits(self, sequences: list[list[int]]) -> np.ndarray:
        assert self.model is not None and self.tokenizer is not None
        self.model.eval()
        outputs = []
        batch_size = max(self.settings.batch_size * 4, 64)
        with no_grad():
            for start in range(0, len(sequences), batch_size):
                batch = pad_batch(
                    sequences[start : start + batch_size],
                    pad_id=self.tokenizer.pad_id,
                    max_length=self.settings.max_length,
                )
                outputs.append(self.model(batch).numpy())
        self.model.train()
        return (
            np.concatenate(outputs, axis=0)
            if outputs
            else np.zeros((0, len(self._labels)))
        )

    def fit(
        self, train: MulticlassDataset, valid: MulticlassDataset
    ) -> "TransformerMulticlass":
        settings = self.settings
        rng = np.random.default_rng(self.seed)
        self._labels = sorted(set(train.labels))
        label_index = {label: i for i, label in enumerate(self._labels)}

        if self.pretrained is not None and self.pretrained.tokenizer is not None:
            self.tokenizer = self.pretrained.tokenizer
        else:
            texts = [serialize_offer(offer) for offer in train.offers + valid.offers]
            self.tokenizer = SubwordTokenizer(vocab_size=settings.vocab_size).train(texts)
        self.model = _OfferClassifier(
            len(self.tokenizer),
            len(self._labels),
            settings,
            pad_id=self.tokenizer.pad_id,
            seed=self.seed,
        )
        if self.pretrained is not None:
            self.pretrained.initialize_encoder(self.model.encoder)

        train_sequences = self._encode(train)
        train_labels = np.array([label_index[label] for label in train.labels])
        valid_sequences = self._encode(valid)
        valid_labels = np.array([label_index.get(label, -1) for label in valid.labels])

        n = len(train_sequences)
        epochs = settings.effective_epochs(n)
        steps_per_epoch = max(1, (n + settings.batch_size - 1) // settings.batch_size)
        total_steps = steps_per_epoch * epochs
        schedule = WarmupLinearSchedule(
            settings.peak_lr,
            max(1, int(total_steps * settings.warmup_fraction)),
            total_steps,
        )
        optimizer = Adam(self.model.parameters(), lr=schedule, weight_decay=0.01)

        best_score = -1.0
        best_state: dict[str, np.ndarray] | None = None
        stale = 0
        for _epoch in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, settings.batch_size):
                indices = order[start : start + settings.batch_size]
                batch = pad_batch(
                    [train_sequences[int(i)] for i in indices],
                    pad_id=self.tokenizer.pad_id,
                    max_length=settings.max_length,
                )
                loss = cross_entropy(self.model(batch), train_labels[indices])
                self.model.zero_grad()
                loss.backward()
                optimizer.step()

            predictions = np.argmax(self._predict_logits(valid_sequences), axis=1)
            score = micro_f1(valid_labels.tolist(), predictions.tolist())
            if score > best_score:
                best_score = score
                best_state = state_dict(self.model)
                stale = 0
            else:
                stale += 1
                if stale >= settings.patience:
                    break
        if best_state is not None:
            load_state_dict(self.model, best_state)
        return self

    def predict(self, dataset: MulticlassDataset) -> list[str]:
        if self.model is None:
            raise RuntimeError("TransformerMulticlass.fit() must be called first")
        logits = self._predict_logits(self._encode(dataset))
        return [self._labels[int(i)] for i in np.argmax(logits, axis=1)]
