"""Offer serialization for the neural matchers.

``plain`` style concatenates the attribute values (how the RoBERTa
baseline consumes entity descriptions); ``ditto`` style inserts the
``COL <attr> VAL <value>`` markers that Ditto feeds its language model.
"""

from __future__ import annotations

from repro.corpus.schema import ProductOffer

__all__ = ["serialize_offer", "serialize_pair"]

_DESCRIPTION_WORDS = 24  # cap: descriptions are long, titles carry the signal


def serialize_offer(
    offer: ProductOffer,
    *,
    style: str = "plain",
    include_description: bool = True,
) -> str:
    """Render an offer as one text string."""
    description = ""
    if include_description and offer.description:
        description = " ".join(offer.description.split()[:_DESCRIPTION_WORDS])

    if style == "plain":
        parts = [offer.brand or "", offer.title, description]
        if offer.price is not None:
            parts.append(f"{offer.price:.2f} {offer.price_currency or ''}".strip())
        return " ".join(part for part in parts if part)

    if style == "ditto":
        parts = [f"COL title VAL {offer.title}"]
        if offer.brand:
            parts.append(f"COL brand VAL {offer.brand}")
        if description:
            parts.append(f"COL description VAL {description}")
        if offer.price is not None:
            currency = offer.price_currency or ""
            parts.append(f"COL price VAL {offer.price:.2f} {currency}".rstrip())
        return " ".join(parts)

    raise ValueError(f"unknown serialization style: {style!r}")


def serialize_pair(
    offer_a: ProductOffer,
    offer_b: ProductOffer,
    *,
    style: str = "plain",
    include_description: bool = True,
) -> tuple[str, str]:
    """Serialize both sides of a pair with the same style."""
    return (
        serialize_offer(offer_a, style=style, include_description=include_description),
        serialize_offer(offer_b, style=style, include_description=include_description),
    )
