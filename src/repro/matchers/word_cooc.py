"""The symbolic Word-(Co)Occurrence baseline (Section 5.1).

Pair-wise: binary word *co-occurrence* between the two entity descriptions
feeds a binary LinearSVM.  Multi-class: binary word *occurrence* of the
single offer feeds a one-vs-rest LinearSVM.  Both variants grid-search
their hyper-parameters on the validation split, as in the paper.

Featurization is batched: serialized offers form an
:class:`~repro.similarity.features.AttributeView` (each distinct offer is
tokenized once), the view's vocabulary is folded through the hashing
vectorizer in one pass, and the binary (co-)occurrence features are sparse
matrix products.  With a corpus-level engine threaded in by the runner
(attribute ``"serialized"``), tokenization is shared across every dataset
of the experiment grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.serialize import serialize_offer
from repro.ml.grid_search import GridSearch
from repro.ml.metrics import micro_f1
from repro.ml.svm import LinearSVM, MulticlassLinearSVM
from repro.similarity.engine import SimilarityEngine
from repro.similarity.features import AttributeView
from repro.text.vectorize import HashingVectorizer

__all__ = ["WordCoocMatcher", "WordOccurrenceClassifier", "SERIALIZED_ATTRIBUTE"]

_DEFAULT_GRID = {
    "reg_lambda": (1e-3, 1e-4),
    "positive_weight": (2.0, 4.0),
}

# Engine attribute under which the runner registers serialize_offer texts.
SERIALIZED_ATTRIBUTE = "serialized"


class WordCoocMatcher(PairwiseMatcher):
    """Pair-wise word co-occurrence + LinearSVM."""

    name = "word_cooc"

    def __init__(
        self,
        *,
        n_features: int = 4096,
        param_grid: dict | None = None,
        epochs: int = 15,
        seed: int = 0,
        engine: SimilarityEngine | None = None,
        offer_rows: dict[str, int] | None = None,
    ) -> None:
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.param_grid = dict(param_grid) if param_grid is not None else dict(_DEFAULT_GRID)
        self.epochs = epochs
        self.seed = seed
        self.engine = engine
        self.offer_rows = offer_rows
        self.search: GridSearch | None = None

    def _features(self, dataset: PairDataset) -> np.ndarray:
        pairs = dataset.pairs
        if not pairs:
            return np.zeros((0, self.vectorizer.n_features), dtype=np.float32)
        if (
            self.engine is not None
            and self.offer_rows is not None
            and self.engine.has_attribute(SERIALIZED_ATTRIBUTE)
            and all(
                pair.offer_a.offer_id in self.offer_rows
                and pair.offer_b.offer_id in self.offer_rows
                for pair in pairs
            )
        ):
            view = self.engine.attribute_view(SERIALIZED_ATTRIBUTE)
            rows_a = [self.offer_rows[pair.offer_a.offer_id] for pair in pairs]
            rows_b = [self.offer_rows[pair.offer_b.offer_id] for pair in pairs]
        else:
            index: dict[str, int] = {}
            texts: list[str] = []
            for pair in pairs:
                for offer in (pair.offer_a, pair.offer_b):
                    if offer.offer_id not in index:
                        index[offer.offer_id] = len(texts)
                        texts.append(serialize_offer(offer))
            view = AttributeView(texts)
            rows_a = [index[pair.offer_a.offer_id] for pair in pairs]
            rows_b = [index[pair.offer_b.offer_id] for pair in pairs]
        hashed = view.hashed_incidence(self.vectorizer)
        cooccurrence = hashed[rows_a].multiply(hashed[rows_b])
        return np.asarray(cooccurrence.todense(), dtype=np.float32)

    def fit(self, train: PairDataset, valid: PairDataset) -> "WordCoocMatcher":
        train_x = self._features(train)
        valid_x = self._features(valid)
        self.search = GridSearch(
            factory=lambda **params: LinearSVM(
                epochs=self.epochs, seed=self.seed, **params
            ),
            param_grid=self.param_grid,
        )
        self.search.fit(
            train_x,
            np.array(train.labels()),
            valid_x,
            np.array(valid.labels()),
        )
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.search is None:
            raise RuntimeError("WordCoocMatcher.fit() must be called first")
        return np.asarray(self.search.predict(self._features(dataset)))


class WordOccurrenceClassifier(MulticlassMatcher):
    """Multi-class word occurrence + one-vs-rest LinearSVM."""

    name = "word_occ"

    def __init__(
        self,
        *,
        n_features: int = 4096,
        reg_lambdas: tuple[float, ...] = (1e-3, 1e-4),
        epochs: int = 30,
        seed: int = 0,
    ) -> None:
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.reg_lambdas = reg_lambdas
        self.epochs = epochs
        self.seed = seed
        self.model: MulticlassLinearSVM | None = None
        self._labels: list[str] = []

    def _features(self, dataset: MulticlassDataset) -> np.ndarray:
        view = AttributeView([serialize_offer(offer) for offer in dataset.offers])
        hashed = view.hashed_incidence(self.vectorizer)
        return np.asarray(hashed.todense(), dtype=np.float32)

    def fit(
        self, train: MulticlassDataset, valid: MulticlassDataset
    ) -> "WordOccurrenceClassifier":
        self._labels = sorted(set(train.labels))
        label_index = {label: i for i, label in enumerate(self._labels)}
        train_x = self._features(train)
        train_y = np.array([label_index[label] for label in train.labels])
        valid_x = self._features(valid)
        valid_y = np.array(
            [label_index.get(label, -1) for label in valid.labels]
        )

        best_score = -1.0
        for reg_lambda in self.reg_lambdas:
            model = MulticlassLinearSVM(
                reg_lambda=reg_lambda, epochs=self.epochs, seed=self.seed
            )
            model.fit(train_x, train_y)
            score = micro_f1(valid_y.tolist(), model.predict(valid_x).tolist())
            if score > best_score:
                best_score = score
                self.model = model
        return self

    def predict(self, dataset: MulticlassDataset) -> list[str]:
        if self.model is None:
            raise RuntimeError("WordOccurrenceClassifier.fit() must be called first")
        predictions = self.model.predict(self._features(dataset))
        return [self._labels[int(index)] for index in predictions]
