"""The symbolic Word-(Co)Occurrence baseline (Section 5.1).

Pair-wise: binary word *co-occurrence* between the two entity descriptions
feeds a binary LinearSVM.  Multi-class: binary word *occurrence* of the
single offer feeds a one-vs-rest LinearSVM.  Both variants grid-search
their hyper-parameters on the validation split, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.serialize import serialize_offer
from repro.ml.grid_search import GridSearch
from repro.ml.metrics import micro_f1
from repro.ml.svm import LinearSVM, MulticlassLinearSVM
from repro.text.vectorize import HashingVectorizer

__all__ = ["WordCoocMatcher", "WordOccurrenceClassifier"]

_DEFAULT_GRID = {
    "reg_lambda": (1e-3, 1e-4),
    "positive_weight": (2.0, 4.0),
}


class WordCoocMatcher(PairwiseMatcher):
    """Pair-wise word co-occurrence + LinearSVM."""

    name = "word_cooc"

    def __init__(
        self,
        *,
        n_features: int = 4096,
        param_grid: dict | None = None,
        epochs: int = 15,
        seed: int = 0,
    ) -> None:
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.param_grid = dict(param_grid) if param_grid is not None else dict(_DEFAULT_GRID)
        self.epochs = epochs
        self.seed = seed
        self.search: GridSearch | None = None

    def _features(self, dataset: PairDataset) -> np.ndarray:
        left = [serialize_offer(pair.offer_a) for pair in dataset]
        right = [serialize_offer(pair.offer_b) for pair in dataset]
        return self.vectorizer.transform_pair_cooccurrence(left, right)

    def fit(self, train: PairDataset, valid: PairDataset) -> "WordCoocMatcher":
        train_x = self._features(train)
        valid_x = self._features(valid)
        self.search = GridSearch(
            factory=lambda **params: LinearSVM(
                epochs=self.epochs, seed=self.seed, **params
            ),
            param_grid=self.param_grid,
        )
        self.search.fit(
            train_x,
            np.array(train.labels()),
            valid_x,
            np.array(valid.labels()),
        )
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.search is None:
            raise RuntimeError("WordCoocMatcher.fit() must be called first")
        return np.asarray(self.search.predict(self._features(dataset)))


class WordOccurrenceClassifier(MulticlassMatcher):
    """Multi-class word occurrence + one-vs-rest LinearSVM."""

    name = "word_occ"

    def __init__(
        self,
        *,
        n_features: int = 4096,
        reg_lambdas: tuple[float, ...] = (1e-3, 1e-4),
        epochs: int = 30,
        seed: int = 0,
    ) -> None:
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.reg_lambdas = reg_lambdas
        self.epochs = epochs
        self.seed = seed
        self.model: MulticlassLinearSVM | None = None
        self._labels: list[str] = []

    def _features(self, dataset: MulticlassDataset) -> np.ndarray:
        return self.vectorizer.transform(
            [serialize_offer(offer) for offer in dataset.offers]
        )

    def fit(
        self, train: MulticlassDataset, valid: MulticlassDataset
    ) -> "WordOccurrenceClassifier":
        self._labels = sorted(set(train.labels))
        label_index = {label: i for i, label in enumerate(self._labels)}
        train_x = self._features(train)
        train_y = np.array([label_index[label] for label in train.labels])
        valid_x = self._features(valid)
        valid_y = np.array(
            [label_index.get(label, -1) for label in valid.labels]
        )

        best_score = -1.0
        for reg_lambda in self.reg_lambdas:
            model = MulticlassLinearSVM(
                reg_lambda=reg_lambda, epochs=self.epochs, seed=self.seed
            )
            model.fit(train_x, train_y)
            score = micro_f1(valid_y.tolist(), model.predict(valid_x).tolist())
            if score > best_score:
                best_score = score
                self.model = model
        return self

    def predict(self, dataset: MulticlassDataset) -> list[str]:
        if self.model is None:
            raise RuntimeError("WordOccurrenceClassifier.fit() must be called first")
        predictions = self.model.predict(self._features(dataset))
        return [self._labels[int(index)] for index in predictions]
