"""Matcher interfaces shared by all systems."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.ml.metrics import PRF1, micro_f1, precision_recall_f1

__all__ = ["PairwiseMatcher", "MulticlassMatcher"]


class PairwiseMatcher(abc.ABC):
    """Binary matcher over offer pairs."""

    name: str = "pairwise"

    @abc.abstractmethod
    def fit(self, train: PairDataset, valid: PairDataset) -> "PairwiseMatcher":
        """Train on ``train``, tune/early-stop on ``valid``."""

    @abc.abstractmethod
    def predict(self, dataset: PairDataset) -> np.ndarray:
        """Predict binary match labels for every pair of ``dataset``."""

    def evaluate(self, dataset: PairDataset) -> PRF1:
        """Precision/recall/F1 of the match class on ``dataset``."""
        predictions = self.predict(dataset)
        return precision_recall_f1(dataset.labels(), predictions.tolist())


class MulticlassMatcher(abc.ABC):
    """Multi-class matcher labeling each offer with a product id."""

    name: str = "multiclass"

    @abc.abstractmethod
    def fit(
        self, train: MulticlassDataset, valid: MulticlassDataset
    ) -> "MulticlassMatcher":
        """Train on ``train``, tune/early-stop on ``valid``."""

    @abc.abstractmethod
    def predict(self, dataset: MulticlassDataset) -> list[str]:
        """Predict a product label for every offer of ``dataset``."""

    def evaluate(self, dataset: MulticlassDataset) -> float:
        """Micro-F1 (= accuracy for single-label prediction)."""
        predictions = self.predict(dataset)
        gold = list(dataset.labels)
        indexed = {label: i for i, label in enumerate(sorted(set(gold) | set(predictions)))}
        return micro_f1(
            [indexed[label] for label in gold],
            [indexed[label] for label in predictions],
        )
