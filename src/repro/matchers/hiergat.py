"""The HierGAT matcher (Section 5.1), scaled down.

HierGAT combines a language model's token-level attention with a
hierarchical graph attention network over attribute and entity nodes.
This reproduction keeps the hierarchy at matched scale:

1. *token level* — a shared mini Transformer encodes each attribute value
   (title, brand, description) of both offers into an attribute vector,
2. *attribute level* — one multi-head attention layer over the six
   attribute nodes (plus learned attribute-type and side embeddings) lets
   evidence flow between the two entities' attributes,
3. *entity level* — each side is mean-pooled and the pair is classified
   from ``[u; v; |u-v|; u*v]``.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets import PairDataset
from repro.corpus.schema import ProductOffer
from repro.matchers.base import PairwiseMatcher
from repro.matchers.transformer import TrainSettings, pad_batch
from repro.ml.metrics import precision_recall_f1
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.pretrain import (
    N_LEXICAL_FEATURES,
    PairHead,
    digit_piece_ids,
    lexical_overlap_features,
)
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, WarmupLinearSchedule
from repro.nn.serialization import load_state_dict, state_dict
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.text.vocabulary import SubwordTokenizer

__all__ = ["HierGATMatcher"]

_ATTRIBUTES = ("title", "brand", "description")
_N_NODES = len(_ATTRIBUTES) * 2


def _attribute_text(offer: ProductOffer, attribute: str) -> str:
    if attribute == "title":
        return offer.title
    if attribute == "brand":
        return offer.brand or ""
    if attribute == "description":
        if offer.description:
            return " ".join(offer.description.split()[:16])
        return ""
    raise ValueError(f"unknown attribute {attribute!r}")


class _HierGATModel(Module):
    """Token encoder + attribute-level graph attention + pair head."""

    def __init__(self, vocab_size: int, settings: TrainSettings, *, pad_id: int, seed: int):
        super().__init__()
        self.settings = settings
        self.encoder = TransformerEncoder(
            vocab_size,
            dim=settings.dim,
            n_heads=settings.n_heads,
            n_layers=settings.n_layers,
            max_length=settings.max_length,
            dropout=settings.dropout,
            pad_id=pad_id,
            seed=seed,
        )
        # Node-type embeddings: which attribute, which side of the pair.
        self.attribute_embedding = Embedding(len(_ATTRIBUTES), settings.dim, seed=seed + 31)
        self.side_embedding = Embedding(2, settings.dim, seed=seed + 32)
        self.node_attention = MultiHeadSelfAttention(
            settings.dim, settings.n_heads, seed=seed + 33
        )
        self.node_norm = LayerNorm(settings.dim)
        self.head = PairHead(settings.dim * 4 + N_LEXICAL_FEATURES, seed=seed + 34)

    def forward(
        self,
        node_tokens: np.ndarray,
        empty_mask: np.ndarray,
        lexical: np.ndarray,
    ) -> Tensor:
        """Classify a batch of pairs.

        ``node_tokens`` is ``(batch, 6, seq)`` int ids (title/brand/desc of
        offer A then offer B); ``empty_mask`` is ``(batch, 6)`` and is True
        where the attribute value is missing; ``lexical`` carries the
        token-overlap channel shared with the other neural matchers.
        """
        batch, n_nodes, seq = node_tokens.shape
        flat = node_tokens.reshape(batch * n_nodes, seq)
        pooled = self.encoder.pool(flat).reshape(batch, n_nodes, self.settings.dim)

        attribute_ids = np.tile(np.arange(len(_ATTRIBUTES)), 2)
        side_ids = np.repeat(np.arange(2), len(_ATTRIBUTES))
        nodes = (
            pooled
            + self.attribute_embedding(np.broadcast_to(attribute_ids, (batch, n_nodes)))
            + self.side_embedding(np.broadcast_to(side_ids, (batch, n_nodes)))
        )
        attended = self.node_attention(self.node_norm(nodes), empty_mask)
        nodes = nodes + attended

        # Entity-level aggregation: mean over each side's non-empty nodes,
        # implemented as a weighted sum with zero weight on the other side.
        present = (~empty_mask).astype(np.float64)
        half = len(_ATTRIBUTES)

        def side_mean(start: int) -> Tensor:
            weights = np.zeros((batch, n_nodes, 1))
            side = present[:, start : start + half]
            normalizer = np.maximum(side.sum(axis=1, keepdims=True), 1.0)
            weights[:, start : start + half, 0] = side / normalizer
            return (nodes * Tensor(weights)).sum(axis=1)

        u = side_mean(0)
        v = side_mean(half)
        features = Tensor.concat(
            [u, v, (u - v) * (u - v), u * v, Tensor(np.asarray(lexical))],
            axis=-1,
        )
        return self.head(features)


class HierGATMatcher(PairwiseMatcher):
    """Hierarchical graph-attention matcher."""

    name = "hiergat"

    def __init__(
        self,
        *,
        settings: TrainSettings | None = None,
        pretrained=None,
        seed: int = 0,
    ) -> None:
        if settings is None:
            # Attribute values are short; a tighter token budget keeps the
            # 6-nodes-per-pair encoding affordable.
            settings = TrainSettings(max_length=20, peak_lr=2e-3)
        self.settings = settings
        self.pretrained = pretrained
        if pretrained is not None:
            # The checkpoint fixes the token-level encoder architecture.
            self.settings.dim = pretrained.dim
            self.settings.n_heads = pretrained.n_heads
            self.settings.n_layers = pretrained.n_layers
            self.settings.vocab_size = pretrained.vocab_size
        self.seed = seed
        self.tokenizer: SubwordTokenizer | None = None
        self.model: _HierGATModel | None = None

    # ------------------------------------------------------------------ #
    def _encode_dataset(
        self, dataset: PairDataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        assert self.tokenizer is not None
        settings = self.settings
        digits = digit_piece_ids(self.tokenizer)
        sequences: list[list[list[int]]] = []
        empties: list[list[bool]] = []
        lexical: list[list[float]] = []
        for pair in dataset:
            nodes: list[list[int]] = []
            empty: list[bool] = []
            sides: list[list[int]] = []
            for offer in (pair.offer_a, pair.offer_b):
                side_ids: list[int] = []
                for attribute in _ATTRIBUTES:
                    text = _attribute_text(offer, attribute)
                    ids = [self.tokenizer.vocab.cls_id]
                    ids.extend(
                        self.tokenizer.encode(text, max_length=settings.max_length - 1)
                    )
                    nodes.append(ids[: settings.max_length])
                    empty.append(not text)
                    if attribute in ("title", "brand"):
                        side_ids.extend(ids[1:])
                sides.append(side_ids)
            sequences.append(nodes)
            empties.append(empty)
            lexical.append(
                lexical_overlap_features(sides[0], sides[1], digits)
            )

        width = max(
            (len(ids) for nodes in sequences for ids in nodes), default=1
        )
        width = min(width, settings.max_length)
        batch = np.full(
            (len(sequences), _N_NODES, width), self.tokenizer.pad_id, dtype=np.int64
        )
        for row, nodes in enumerate(sequences):
            for node_index, ids in enumerate(nodes):
                trimmed = ids[:width]
                batch[row, node_index, : len(trimmed)] = trimmed
        lexical_matrix = (
            np.array(lexical) if lexical else np.zeros((0, N_LEXICAL_FEATURES))
        )
        return batch, np.array(empties, dtype=bool), lexical_matrix

    def _predict_logits(
        self, tokens: np.ndarray, empty: np.ndarray, lexical: np.ndarray
    ) -> np.ndarray:
        assert self.model is not None
        self.model.eval()
        outputs = []
        step = 128
        with no_grad():
            for start in range(0, len(tokens), step):
                outputs.append(
                    self.model(
                        tokens[start : start + step],
                        empty[start : start + step],
                        lexical[start : start + step],
                    ).numpy()
                )
        self.model.train()
        return np.concatenate(outputs, axis=0) if outputs else np.zeros((0, 2))

    def fit(self, train: PairDataset, valid: PairDataset) -> "HierGATMatcher":
        settings = self.settings
        rng = np.random.default_rng(self.seed)
        if self.pretrained is not None and self.pretrained.tokenizer is not None:
            self.tokenizer = self.pretrained.tokenizer
        else:
            texts: list[str] = []
            for offer in train.offers() + valid.offers():
                for attribute in _ATTRIBUTES:
                    value = _attribute_text(offer, attribute)
                    if value:
                        texts.append(value)
            self.tokenizer = SubwordTokenizer(vocab_size=settings.vocab_size).train(texts)
        self.model = _HierGATModel(
            len(self.tokenizer), settings, pad_id=self.tokenizer.pad_id, seed=self.seed
        )
        if self.pretrained is not None:
            self.pretrained.initialize_encoder(self.model.encoder)

        train_tokens, train_empty, train_lexical = self._encode_dataset(train)
        train_labels = np.array(train.labels())
        valid_tokens, valid_empty, valid_lexical = self._encode_dataset(valid)
        valid_labels = np.array(valid.labels())

        n = len(train_tokens)
        steps_per_epoch = max(1, (n + settings.batch_size - 1) // settings.batch_size)
        total_steps = steps_per_epoch * settings.epochs
        schedule = WarmupLinearSchedule(
            settings.peak_lr, max(1, total_steps // 10), total_steps
        )
        optimizer = Adam(self.model.parameters(), lr=schedule, weight_decay=0.01)
        n_pos = max(int(train_labels.sum()), 1)
        n_neg = max(len(train_labels) - n_pos, 1)
        class_weights = np.array([1.0, n_neg / n_pos])

        best_f1 = -1.0
        best_state: dict[str, np.ndarray] | None = None
        stale = 0
        for _epoch in range(settings.epochs):
            order = rng.permutation(n)
            for start in range(0, n, settings.batch_size):
                indices = order[start : start + settings.batch_size]
                logits = self.model(
                    train_tokens[indices],
                    train_empty[indices],
                    train_lexical[indices],
                )
                loss = cross_entropy(logits, train_labels[indices], class_weights=class_weights)
                self.model.zero_grad()
                loss.backward()
                optimizer.step()

            predictions = np.argmax(
                self._predict_logits(valid_tokens, valid_empty, valid_lexical), axis=1
            )
            f1 = precision_recall_f1(valid_labels.tolist(), predictions.tolist()).f1
            if f1 > best_f1:
                best_f1 = f1
                best_state = state_dict(self.model)
                stale = 0
            else:
                stale += 1
                if stale >= settings.patience:
                    break
        if best_state is not None:
            load_state_dict(self.model, best_state)
        return self

    def predict(self, dataset: PairDataset) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("HierGATMatcher.fit() must be called first")
        tokens, empty, lexical = self._encode_dataset(dataset)
        return np.argmax(self._predict_logits(tokens, empty, lexical), axis=1)
