"""Ditto's data-augmentation and domain-knowledge operators (Section 5.1).

The paper activates Ditto's *delete* augmentation operator; Ditto's
domain-knowledge module normalizes value formats before serialization —
reproduced here as number/unit normalization (lower-casing units and
splitting glued numbers, the dominant heterogeneity in product specs).
"""

from __future__ import annotations

import re

import numpy as np

__all__ = ["delete_augment", "normalize_numbers"]

_NUMBER_UNIT_RE = re.compile(r"(\d+(?:\.\d+)?)\s*([a-zA-Z]+)")


def delete_augment(
    token_ids: list[int],
    rng: np.random.Generator,
    *,
    rate: float = 0.12,
    protect: int = 1,
) -> list[int]:
    """Randomly delete a fraction of token ids (Ditto's delete operator).

    The first ``protect`` positions ([CLS]) are never deleted, and at least
    half of the sequence always survives so a pair cannot degenerate.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must lie in [0, 1), got {rate}")
    if len(token_ids) <= protect + 1 or rate == 0.0:
        return list(token_ids)
    body = token_ids[protect:]
    keep_mask = rng.random(len(body)) >= rate
    if keep_mask.sum() < max(1, len(body) // 2):
        return list(token_ids)
    return token_ids[:protect] + [t for t, keep in zip(body, keep_mask) if keep]


def normalize_numbers(text: str) -> str:
    """Domain-knowledge normalization: split glued number+unit tokens.

    >>> normalize_numbers("2TB 7200RPM drive")
    '2 tb 7200 rpm drive'
    """
    normalized = _NUMBER_UNIT_RE.sub(lambda m: f"{m.group(1)} {m.group(2).lower()}", text)
    return normalized
