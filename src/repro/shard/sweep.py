"""The cross-shard blocking sweep.

Every shard's engine indexes only its own corpus, so candidate joins
*between* shards need a shared universe.  The sweep works on
:class:`ShardUniverse` values — a shard id plus an engine (the shard's
corpus engine or a cheap split-scoped :meth:`SimilarityEngine.view`) and
globally namespaced offers/labels.  For each shard pair it concatenates
the two universes' engines (:meth:`SimilarityEngine.concat` — token sets
are reused, nothing is re-tokenized) and runs one
:class:`~repro.blocking.candidates.CandidateBlocker` join in which every
row queries the *other* shard's sub-universe
(``exclude_same_partition``): this covers both ordered directions
``i→j`` and ``j→i`` of the pair in a single pass, exactly like mirrored
queries inside one corpus, and the per-query provenance keeps the
direction.  Offers and cluster labels are globally namespaced before they
enter a combined universe — see :mod:`repro.shard.namespace`.

Cross-shard joins run on the token metrics only: each shard's LSA
embedding model is fitted on its own corpus, so embedding vectors are not
comparable across shards (``CROSS_SHARD_METRICS``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.blocking.candidates import BlockedPairSet, CandidateBlocker
from repro.core.builder import BuildArtifacts
from repro.corpus.schema import ProductOffer
from repro.shard.namespace import namespace_id, namespace_offer, namespace_offers
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import validate_metric_names

__all__ = [
    "CROSS_SHARD_METRICS",
    "ShardUniverse",
    "shard_universe",
    "split_universe",
    "shard_blocker",
    "cross_shard_blocker",
    "cross_shard_candidates",
]

CROSS_SHARD_METRICS = ("cosine", "dice", "generalized_jaccard")


@dataclass
class ShardUniverse:
    """One shard's contribution to a (possibly multi-shard) join universe.

    ``engine`` is the shard's corpus engine or a view of it; ``offers``
    and ``labels`` are aligned to its rows and globally namespaced, so
    rows from several universes can meet in one blocker without id
    collisions.
    """

    shard: int
    engine: SimilarityEngine
    offers: list[ProductOffer]
    labels: list[str]

    def __post_init__(self) -> None:
        if len(self.offers) != len(self.engine) or len(self.labels) != len(
            self.engine
        ):
            raise ValueError(
                f"universe of shard {self.shard}: engine has "
                f"{len(self.engine)} rows, got {len(self.offers)} offers "
                f"and {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.engine)

    def blocker(self) -> CandidateBlocker:
        """A namespaced blocker over this universe alone."""
        return CandidateBlocker(
            self.engine, offers=self.offers, group_labels=self.labels
        )

    def restrict(self, rows: Sequence[int] | np.ndarray) -> "ShardUniverse":
        """This universe narrowed to ``rows`` (a signature-sweep block).

        The engine becomes a cheap :meth:`SimilarityEngine.view` and the
        offers/labels are sliced in the same order, so the restricted
        universe joins exactly like the full one — the signature sweep
        concatenates these instead of whole shards.
        """
        rows = np.asarray(rows, dtype=np.intp)
        return ShardUniverse(
            shard=self.shard,
            engine=self.engine.view(rows),
            offers=[self.offers[int(row)] for row in rows],
            labels=[self.labels[int(row)] for row in rows],
        )


def shard_universe(artifacts: BuildArtifacts, shard: int) -> ShardUniverse:
    """Shard ``shard``'s full cleansed corpus as a join universe."""
    if artifacts.engine is None:
        raise ValueError(f"shard {shard} was built without an engine")
    offers = list(artifacts.cleansed.offers)
    return ShardUniverse(
        shard=shard,
        engine=artifacts.engine,
        offers=namespace_offers(offers, shard),
        labels=[
            namespace_id(shard, offer.cluster_id) for offer in offers
        ],
    )


def split_universe(
    artifacts: BuildArtifacts,
    shard: int,
    entries: Sequence[tuple[str, ProductOffer]],
) -> ShardUniverse:
    """One split's ``(cluster_id, offer)`` entries as a join universe.

    The shard-level counterpart of
    :meth:`CandidateBlocker.over_entries`: the split becomes a cheap view
    over the shard's corpus engine, and candidates stay confined to the
    split — blocked training pairs can never leak offers from another
    split, even across shards.
    """
    if artifacts.engine is None:
        raise ValueError(f"shard {shard} was built without an engine")
    offer_rows = {
        offer.offer_id: row
        for row, offer in enumerate(artifacts.cleansed.offers)
    }
    rows = [offer_rows[offer.offer_id] for _, offer in entries]
    return ShardUniverse(
        shard=shard,
        engine=artifacts.engine.view(rows),
        offers=[namespace_offer(offer, shard) for _, offer in entries],
        labels=[
            namespace_id(shard, cluster_id) for cluster_id, _ in entries
        ],
    )


def shard_blocker(artifacts: BuildArtifacts, shard: int) -> CandidateBlocker:
    """Shard ``shard``'s own corpus-level blocker, globally namespaced.

    Runs over the shard's existing engine (no recomputation); offers and
    group labels carry the ``s<shard>:`` namespace so the blocked pairs
    merge with cross-shard sets on globally unique keys.
    """
    return shard_universe(artifacts, shard).blocker()


def cross_shard_blocker(
    universe_i: ShardUniverse, universe_j: ShardUniverse
) -> tuple[CandidateBlocker, np.ndarray]:
    """A blocker over the union of two shard universes, plus its partition.

    Returns the blocker and the per-row shard-id array (``partition``):
    rows ``[0, len(i))`` belong to shard ``i``, the rest to shard ``j``.
    Passing the partition as ``exclude_same_partition`` to
    :meth:`CandidateBlocker.candidates` makes every offer query only the
    other shard's rows — the ordered sweeps ``i→j`` and ``j→i`` in one
    join.
    """
    combined = SimilarityEngine.concat(
        [universe_i.engine, universe_j.engine],
        strict_embeddings=False,
    )
    partition = np.concatenate(
        [
            np.full(len(universe_i), universe_i.shard, dtype=np.intp),
            np.full(len(universe_j), universe_j.shard, dtype=np.intp),
        ]
    )
    blocker = CandidateBlocker(
        combined,
        offers=universe_i.offers + universe_j.offers,
        group_labels=universe_i.labels + universe_j.labels,
    )
    return blocker, partition


def cross_shard_candidates(
    universe_i: ShardUniverse,
    universe_j: ShardUniverse,
    *,
    k: int,
    metrics: tuple[str, ...] = CROSS_SHARD_METRICS,
) -> tuple[BlockedPairSet, np.ndarray]:
    """Top-``k`` cross-shard candidates between two universes, both ways.

    Every cross-shard pair is a hard negative by construction: shards
    generate disjoint product pools, so namespaced cluster ids never
    match across the partition — the sweep's value is surfacing the most
    confusable offer pairs *between* autonomous corpora, the candidates a
    merged-corpus matcher must learn to reject.

    ``metrics`` defaults to — and is validated against —
    ``CROSS_SHARD_METRICS``: the combined universe has no common
    embedding space, so asking for ``lsa_embedding`` fails here, by
    name, instead of deep inside the engine.
    """
    metrics = validate_metric_names(
        metrics,
        available=CROSS_SHARD_METRICS,
        context="cross_shard_candidates.metrics (cross-shard joins "
        "support the token metrics only: per-shard LSA embeddings are "
        "not comparable across corpora)",
    )
    blocker, partition = cross_shard_blocker(universe_i, universe_j)
    blocked = blocker.candidates(
        k=k, metrics=metrics, exclude_same_partition=partition
    )
    return blocked, partition
