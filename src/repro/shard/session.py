"""The shard-native build/eval session.

``ShardedBenchmarkSession`` turns the corpus into the parallel unit: a
:class:`~repro.shard.plan.ShardPlan` fixes N independent per-shard build
configs, :meth:`ShardedBenchmarkSession.build` runs
:func:`~repro.core.builder.build_one_corpus` for each of them in worker
**processes** (the corpus/cleansing/grouping stages are serial Python, so
process isolation — not the ratio thread pool — is what parallelizes
them), and a cross-shard blocking sweep joins every shard pair's
universes into one deduplicated, provenance-tagged candidate set.  The
result is a :class:`ShardedArtifacts`: per-shard
:class:`~repro.core.builder.BuildArtifacts` plus merged session-level
views (candidates, benchmark, corpus, engine) that existing consumers —
:func:`~repro.blocking.recall.blocking_recall`,
:class:`~repro.eval.runner.ExperimentRunner` — use unchanged.

Determinism: shard seeds come from ``SeedSequence.spawn`` (independent of
shard count and ordering), worker results are collected in plan order,
and the sweep visits shard pairs lexicographically — a seeded session is
byte-identical across worker counts, process-vs-serial execution and
shard completion order (pinned in ``tests/shard/test_session.py``).

Fault tolerance: shard builds run under a
:class:`~repro.shard.supervisor.ShardSupervisor` — wall-clock timeouts,
a per-shard retry budget with exponential backoff, process-pool recovery
and (with ``checkpoint_dir``) crash-resume from per-shard checkpoints.
Transient failures retry the same config (deterministic builds make the
retry reproduce the lost attempt byte-for-byte), corner-selection
exhaustion retries with seeds respawned from ``(session_seed, shard,
attempt)``, and ``failure_policy="degrade"`` lets the session complete
over the surviving shards with a :class:`SessionHealth` report naming
every failed shard and every shard pair the sweep consequently skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import cached_property
from pathlib import Path

from repro.blocking.candidates import BlockedPairSet
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.builder import BuildArtifacts
from repro.corpus.schema import SyntheticCorpus
from repro.shard.checkpoint import ShardCheckpointStore
from repro.shard.faults import FaultPlan
from repro.shard.merge import (
    MergedCandidates,
    MergedCandidateStore,
    iter_merged_candidates,
    merge_benchmarks,
    merge_candidate_sets,
    merge_corpora,
)
from repro.shard.plan import ShardPlan
from repro.shard.namespace import namespace_id
from repro.shard.signature_index import SignatureIndex, SweepPruneStats
from repro.shard.supervisor import (
    FAILURE_POLICIES,
    RetryPolicy,
    SessionHealth,
    ShardSupervisor,
)
from repro.shard.sweep import (
    CROSS_SHARD_METRICS,
    cross_shard_candidates,
    shard_universe,
    split_universe,
)
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import validate_metric_names
from repro.similarity.signatures import RowSignatures, overlap_lower_bound
from repro.utils.timer import Timer

__all__ = [
    "ShardedBenchmarkSession",
    "ShardedArtifacts",
    "MergedArtifacts",
    "DEFAULT_SIGNATURE_THRESHOLD",
    "SWEEP_MODES",
    "FAILURE_POLICIES",
]

_EXECUTORS = ("process", "thread", "serial")

SWEEP_MODES = ("signature", "exhaustive")

# The default top-k admission threshold of the signature sweep: a
# cross-shard candidate whose exact-token similarity cannot reach this
# value is prunable without scoring.  At 0.97 the per-row prefix
# collapses to (rarest token, near-equal set size) — the regime where
# the index prunes most of the bilinear sweep while still guaranteeing
# every near-duplicate cross-shard pair survives.  Cross-shard
# candidates are hard negatives by construction (disjoint product
# pools), so the threshold trades only the most marginal negatives for
# sweep time — the merged recall floors are measured on within-shard
# ground truth and cannot move.
DEFAULT_SIGNATURE_THRESHOLD = 0.97


def _sweep_universes(
    universes,
    *,
    k: int,
    cross_metrics: tuple[str, ...],
    n_shards: int,
    shard_metrics: tuple[str, ...] | None = None,
    timings: dict[str, float] | None = None,
    sweep_mode: str = "signature",
    signature_threshold: float = DEFAULT_SIGNATURE_THRESHOLD,
    summaries: list[RowSignatures | None] | None = None,
    sink: MergedCandidateStore | None = None,
) -> tuple[MergedCandidates, MergedCandidates, SweepPruneStats]:
    """Join every universe and every universe pair; merge both shapes.

    The one sweep implementation behind the session's corpus-level sweep
    and the split-scoped recall recipe: per-universe joins run under
    ``shard_metrics`` (default: each universe engine's full metric set),
    universe pairs under the token-only ``cross_metrics``, and the merged
    sets record the union of every metric actually joined.

    In ``"signature"`` mode (the default) the universe pairs are pruned
    through a :class:`SignatureIndex` first: pairs with no possible
    prefix collision are skipped without ever concatenating an engine,
    and surviving pairs are rescored only over their signature-colliding
    row blocks.  ``summaries`` optionally supplies worker-built
    :class:`RowSignatures` (one per universe, ``None`` entries filled in
    here); ``"exhaustive"`` mode is the historical full bipartite sweep.

    Returns ``(completed, join_only, prune_stats)``; ``timings`` (when
    given) receives one ``sweep:<i>→<j>`` row per executed join plus the
    aggregate ``sweep:signatures`` / ``sweep:prune`` / ``sweep:rescore``
    rows.

    With a ``sink`` (a :class:`~repro.shard.merge.MergedCandidateStore`)
    the merged sets are streamed into its SQLite tables instead of being
    materialized as Python lists — dedup happens in SQL over canonical
    pair keys, and the returned pair of
    :class:`~repro.shard.merge.StoredMergedCandidates` iterates windowed
    query results lazily.
    """
    completed_sets: list[tuple[int, BlockedPairSet]] = []
    join_sets: list[tuple[int, BlockedPairSet]] = []
    used_metrics: dict[str, None] = {}
    for universe in universes:
        with Timer() as timer:
            blocker = universe.blocker()
            metrics = (
                blocker.engine.metric_names
                if shard_metrics is None
                else shard_metrics
            )
            used_metrics.update(dict.fromkeys(metrics))
            join = blocker.candidates(k=k, metrics=metrics)
            join_sets.append((universe.shard, join))
            completed_sets.append(
                (universe.shard, join.with_group_positives())
            )
        if timings is not None:
            timings[f"sweep:{universe.shard}→{universe.shard}"] = (
                timer.elapsed
            )
    used_metrics.update(dict.fromkeys(cross_metrics))

    n_universes = len(universes)
    stats = SweepPruneStats(
        mode=sweep_mode,
        threshold=(
            signature_threshold if sweep_mode == "signature" else None
        ),
        pairs_total=n_universes * (n_universes - 1) // 2,
    )
    index = None
    if sweep_mode == "signature" and n_universes > 1:
        with Timer() as timer:
            filled = list(summaries) if summaries is not None else (
                [None] * n_universes
            )
            for position, universe in enumerate(universes):
                if filled[position] is None:
                    filled[position] = RowSignatures.from_engine(
                        universe.engine
                    )
            index = SignatureIndex(filled, threshold=signature_threshold)
        if timings is not None:
            timings["sweep:signatures"] = timer.elapsed

    prune_seconds = 0.0
    rescore_seconds = 0.0
    cross_sets = []
    for i in range(n_universes):
        for j in range(i + 1, n_universes):
            universe_i, universe_j = universes[i], universes[j]
            label = f"{universe_i.shard}→{universe_j.shard}"
            stats.rows_universe += len(universe_i) + len(universe_j)
            stats.cells_universe += len(universe_i) * len(universe_j)
            if index is not None:
                with Timer() as timer:
                    block = index.candidate_block(i, j)
                prune_seconds += timer.elapsed
                if block is None:
                    stats.pairs_skipped += 1
                    stats.per_pair[label] = "skipped"
                    continue
                rows_i, rows_j = block
                stats.rows_rescored += rows_i.size + rows_j.size
                stats.cells_rescored += rows_i.size * rows_j.size
                stats.per_pair[label] = {
                    "rows": int(rows_i.size + rows_j.size),
                    "universe": len(universe_i) + len(universe_j),
                    "rescored_fraction": (
                        (rows_i.size + rows_j.size)
                        / (len(universe_i) + len(universe_j))
                    ),
                }
                if rows_i.size < len(universe_i):
                    universe_i = universe_i.restrict(rows_i)
                if rows_j.size < len(universe_j):
                    universe_j = universe_j.restrict(rows_j)
            else:
                stats.rows_rescored += len(universe_i) + len(universe_j)
                stats.cells_rescored += len(universe_i) * len(universe_j)
            with Timer() as timer:
                blocked, partition = cross_shard_candidates(
                    universe_i, universe_j, k=k, metrics=cross_metrics
                )
            rescore_seconds += timer.elapsed
            cross_sets.append(
                ((universe_i.shard, universe_j.shard), blocked, partition)
            )
            if timings is not None:
                timings[f"sweep:{label}"] = timer.elapsed
    if timings is not None:
        timings["sweep:prune"] = prune_seconds
        timings["sweep:rescore"] = rescore_seconds
    kwargs = dict(k=k, metrics=tuple(used_metrics), n_shards=n_shards)
    if sink is not None:
        completed = sink.write(
            "completed",
            iter_merged_candidates(completed_sets, cross_sets, dedup=False),
            **kwargs,
        )
        join_only = sink.write(
            "join_only",
            iter_merged_candidates(join_sets, cross_sets, dedup=False),
            **kwargs,
        )
        return completed, join_only, stats
    return (
        merge_candidate_sets(completed_sets, cross_sets, **kwargs),
        merge_candidate_sets(join_sets, cross_sets, **kwargs),
        stats,
    )


@dataclass
class MergedArtifacts:
    """The merged single-corpus view of a sharded session.

    Structurally compatible with the slice of
    :class:`~repro.core.builder.BuildArtifacts` that
    :class:`~repro.eval.runner.ExperimentRunner` reads: ``benchmark``,
    ``cleansed``, ``engine`` and ``pretraining_clusters``.  ``splits`` is
    empty — offer splits are per-shard artifacts (each shard split its own
    corpus); blocked-split workflows run on the shards, the merged view
    serves whole-benchmark training/evaluation.
    """

    session: "ShardedArtifacts"
    benchmark: WDCProductsBenchmark
    cleansed: SyntheticCorpus
    engine: SimilarityEngine | None
    splits: dict = field(default_factory=dict)

    def pretraining_clusters(self, serializer=None):
        """Namespaced union of every shard's pre-training clusters."""
        clusters = []
        for shard, artifacts in zip(
            self.session.shard_ids, self.session.shards
        ):
            clusters.extend(
                (
                    namespace_id(shard, cluster_id),
                    namespace_id(shard, family_id),
                    texts,
                )
                for cluster_id, family_id, texts in (
                    artifacts.pretraining_clusters(serializer)
                )
            )
        return clusters


class ShardedArtifacts:
    """Everything a sharded session built.

    ``shards[i]`` is the complete single-corpus artifact set of shard
    ``shard_ids[i]`` — for a healthy session the identity mapping, for a
    degraded one the surviving subset of the plan (``health`` then
    records who failed, with the full attempt ledger, and which shard
    pairs the sweep consequently skipped).  ``merged_candidates`` is the
    deduplicated per-shard + cross-shard candidate set in its training
    shape (ground-truth group positives completed) and
    ``merged_join_candidates`` the raw top-k join (the shape
    blocking-recall floors gate).  The merged benchmark / corpus /
    engine views build lazily and are cached.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shards: tuple[BuildArtifacts, ...],
        *,
        merged_candidates: MergedCandidates,
        merged_join_candidates: MergedCandidates,
        sweep_k: int,
        sweep_metrics: tuple[str, ...],
        stage_timings: dict[str, float],
        sweep_mode: str = "signature",
        signature_threshold: float | None = DEFAULT_SIGNATURE_THRESHOLD,
        sweep_stats: SweepPruneStats | None = None,
        shard_ids: tuple[int, ...] | None = None,
        health: SessionHealth | None = None,
    ) -> None:
        self.plan = plan
        self.shards = shards
        self.shard_ids = (
            tuple(shard_ids)
            if shard_ids is not None
            else tuple(range(len(shards)))
        )
        if len(self.shard_ids) != len(shards):
            raise ValueError(
                f"shard_ids names {len(self.shard_ids)} shards but "
                f"{len(shards)} artifact sets were given"
            )
        self.health = health
        self.merged_candidates = merged_candidates
        self.merged_join_candidates = merged_join_candidates
        self.sweep_k = sweep_k
        self.sweep_metrics = sweep_metrics
        self.stage_timings = stage_timings
        self.sweep_mode = sweep_mode
        self.signature_threshold = signature_threshold
        self.sweep_stats = sweep_stats

    @property
    def n_shards(self) -> int:
        """Surviving shards (equals ``planned_shards`` unless degraded)."""
        return len(self.shards)

    @property
    def planned_shards(self) -> int:
        return len(self.plan.shard_configs)

    @property
    def degraded(self) -> bool:
        return self.health.degraded if self.health is not None else False

    def total_offers(self) -> int:
        """Cleansed offers across all shards (the merged universe size)."""
        return sum(len(shard.cleansed.offers) for shard in self.shards)

    @cached_property
    def merged_benchmark(self) -> WDCProductsBenchmark:
        return merge_benchmarks(
            [shard.benchmark for shard in self.shards],
            shard_ids=self.shard_ids,
        )

    @cached_property
    def merged_corpus(self) -> SyntheticCorpus:
        return merge_corpora(
            [shard.cleansed for shard in self.shards],
            shard_ids=self.shard_ids,
        )

    @cached_property
    def merged_engine(self) -> SimilarityEngine:
        """One engine over all shards' rows (token metrics only)."""
        return SimilarityEngine.concat(
            [shard.engine for shard in self.shards],
            strict_embeddings=False,
        )

    def merged_artifacts(self) -> MergedArtifacts:
        """The runner-facing merged view (see :class:`MergedArtifacts`)."""
        return MergedArtifacts(
            session=self,
            benchmark=self.merged_benchmark,
            cleansed=self.merged_corpus,
            engine=self.merged_engine,
        )

    def serve(self, **kwargs) -> "MatchService":
        """An online :class:`~repro.serve.service.MatchService` over the
        session's shards — one live shard per surviving build, ready for
        ``async with artifacts.serve() as service``.  Keyword arguments
        pass through to :meth:`MatchService.from_session`.
        """
        from repro.serve import MatchService

        return MatchService.from_session(self, **kwargs)

    def split_candidates(
        self,
        corner_cases,
        dev_size,
        *,
        k: int = 25,
        cross_metrics: tuple[str, ...] | None = None,
    ) -> tuple[MergedCandidates, MergedCandidates]:
        """Merged split-scoped candidates of one (cc, dev) training cell.

        Every shard's train split becomes a view-scoped universe (the
        single-corpus ``CandidateBlocker.over_entries`` recipe the CI
        recall floors were recorded with), joined within each shard under
        the shard engine's full metric set and across shard pairs under
        ``cross_metrics`` (default: the metrics the session's sweep ran
        with, validated here so a bad name fails before any join runs).
        The shard-pair sweep reuses the session's ``sweep_mode`` and
        ``signature_threshold`` — split universes are views, so signature
        summaries are rebuilt per split, scoped to the split's rows.
        Returns ``(completed, join_only)``: the training shape with
        ground-truth group positives completed, and the raw top-k join
        the recall floors gate.  Measure both against the merged
        benchmark's train set of the same cell with
        :func:`~repro.blocking.recall.blocking_recall`.
        """
        if cross_metrics is None:
            cross_metrics = self.sweep_metrics
        else:
            cross_metrics = validate_metric_names(
                cross_metrics,
                available=CROSS_SHARD_METRICS,
                context="split_candidates.cross_metrics (cross-shard joins "
                "support the token metrics only)",
            )
        universes = [
            split_universe(
                artifacts,
                shard,
                artifacts.splits[corner_cases].train_offers(dev_size),
            )
            for shard, artifacts in zip(self.shard_ids, self.shards)
        ]
        completed, join_only, _ = _sweep_universes(
            universes,
            k=k,
            cross_metrics=cross_metrics,
            n_shards=self.n_shards,
            sweep_mode=self.sweep_mode,
            signature_threshold=(
                self.signature_threshold
                if self.signature_threshold is not None
                else DEFAULT_SIGNATURE_THRESHOLD
            ),
        )
        return completed, join_only


class ShardedBenchmarkSession:
    """Schedules supervised shard builds and shard-pair joins for one plan.

    The fault-tolerance knobs map straight onto the supervisor:
    ``max_attempts`` / ``retry_backoff`` / ``backoff_cap`` /
    ``shard_timeout`` form the :class:`RetryPolicy`, ``failure_policy``
    chooses between surfacing the first exhausted shard (``"raise"``,
    the default) and completing over the survivors (``"degrade"``),
    ``checkpoint_dir`` enables per-shard crash-resume checkpoints, and
    ``fault_plan`` / ``sleep`` are test-only injection points.

    ``store_dir`` + ``store_backend="sqlite"`` switch the session
    out-of-core: each worker persists its shard into the queryable
    artifact store (:mod:`repro.io.store`) and returns only a path
    handle + signature summary across the pool boundary — the parent
    opens shards lazily (mmap engine, SQL-backed benchmark/splits) and
    the sweep streams merged candidates into ``<store_dir>/merged.db``
    instead of materializing them.  The store doubles as the
    crash-resume checkpoint, so ``checkpoint_dir``, when also given,
    must name the same directory.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        sweep_k: int = 25,
        sweep_metrics: tuple[str, ...] = CROSS_SHARD_METRICS,
        shard_metrics: tuple[str, ...] | None = None,
        sweep_mode: str = "signature",
        signature_threshold: float = DEFAULT_SIGNATURE_THRESHOLD,
        executor: str = "process",
        max_workers: int | None = None,
        max_attempts: int = 3,
        shard_timeout: float | None = None,
        retry_backoff: float = 0.5,
        backoff_cap: float = 8.0,
        failure_policy: str = "raise",
        checkpoint_dir: Path | str | None = None,
        store_dir: Path | str | None = None,
        store_backend: str = "pickle",
        fault_plan: FaultPlan | None = None,
        sleep=time.sleep,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if sweep_mode not in SWEEP_MODES:
            raise ValueError(
                f"sweep_mode must be one of {SWEEP_MODES}, got {sweep_mode!r}"
            )
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, got "
                f"{failure_policy!r}"
            )
        # Fail fast on a bad budget/timeout/backoff combination.
        self.retry_policy = RetryPolicy(
            max_attempts=max_attempts,
            backoff_base=retry_backoff,
            backoff_cap=backoff_cap,
            timeout=shard_timeout,
        )
        self.failure_policy = failure_policy
        if store_backend not in ("pickle", "sqlite"):
            raise ValueError(
                "store_backend must be one of ('pickle', 'sqlite'), got "
                f"{store_backend!r}"
            )
        if store_backend == "sqlite" and store_dir is None:
            raise ValueError("store_backend='sqlite' requires store_dir")
        if store_dir is not None and store_backend != "sqlite":
            raise ValueError(
                "store_dir requires store_backend='sqlite' (the pickle "
                "backend persists via checkpoint_dir)"
            )
        self.store_backend = store_backend
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.store_dir is not None:
            if (
                self.checkpoint_dir is not None
                and self.checkpoint_dir.resolve() != self.store_dir.resolve()
            ):
                raise ValueError(
                    "store_dir and checkpoint_dir must agree: the sqlite "
                    "store is itself the crash-resume checkpoint"
                )
            # The store doubles as the checkpoint root.
            self.checkpoint_dir = self.store_dir
        self.fault_plan = fault_plan
        self.sleep = sleep
        # Validates the threshold range once, at construction time.
        overlap_lower_bound(signature_threshold)
        # Cross-shard universes have no common embedding space, so the
        # sweep validates against the token metrics only — and does so
        # here, at construction time, not deep inside the sweep.  The
        # default is the full CROSS_SHARD_METRICS set: with the signature
        # sweep pruning pairs and row blocks, Generalized Jaccard's exact
        # rescoring no longer dominates the pair sweeps.
        self.sweep_metrics = validate_metric_names(
            sweep_metrics,
            available=CROSS_SHARD_METRICS,
            context="ShardedBenchmarkSession.sweep_metrics "
            "(cross-shard joins support the token metrics only: per-shard "
            "LSA embeddings are not comparable across corpora)",
        )
        # Within a shard all of the shard engine's metrics apply (its own
        # embedding space included); None = each shard's full metric set,
        # the recipe the single-corpus recall floors were recorded with.
        self.shard_metrics = (
            None
            if shard_metrics is None
            else validate_metric_names(
                shard_metrics,
                context="ShardedBenchmarkSession.shard_metrics",
            )
        )
        if sweep_k <= 0:
            raise ValueError(f"sweep_k must be positive, got {sweep_k}")
        self.plan = plan
        self.sweep_k = sweep_k
        self.sweep_mode = sweep_mode
        self.signature_threshold = signature_threshold
        self.executor = executor
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def _build_shards(
        self,
    ) -> tuple[
        list[int],
        list[BuildArtifacts],
        list[RowSignatures | None],
        SessionHealth,
        dict[str, float],
    ]:
        """Run every shard's stage pipeline under supervision.

        Worker scheduling never reaches the results: outcomes come back
        in plan order whatever the completion order, and each shard's
        streams derive from its own spawned seed.  In signature mode
        every worker also summarizes its freshly built engine into
        :class:`RowSignatures` — the parent receives ready-made summaries
        and only merges them.  Returns the surviving shard ids, their
        artifacts and summaries, the session health report and the
        supervisor's timing rows (``shard:retries``, ``checkpoint:*``).
        """
        configs = list(self.plan.shard_configs)
        store = None
        if self.checkpoint_dir is not None:
            store = ShardCheckpointStore(
                self.checkpoint_dir, backend=self.store_backend
            )
        if self.store_dir is not None:
            # Out-of-core mode: each worker writes its shard store into
            # its own directory and returns a path handle — the rewrite
            # happens *before* supervision so retries, checkpoints and
            # config fingerprints all see the store-backed config.
            configs = [
                replace(
                    config,
                    store_dir=str(store.shard_dir(shard)),
                    store_backend="sqlite",
                )
                for shard, config in enumerate(configs)
            ]
        supervisor = ShardSupervisor(
            configs,
            session_seed=self.plan.seed,
            executor=self.executor,
            max_workers=self.max_workers,
            policy=self.retry_policy,
            failure_policy=self.failure_policy,
            fault_plan=self.fault_plan,
            checkpoint_store=store,
            with_signatures=self.sweep_mode == "signature",
            sleep=self.sleep,
        )
        outcomes = supervisor.run()
        survivors = [outcome for outcome in outcomes if outcome.ok]
        shard_ids = [outcome.shard for outcome in survivors]
        surviving = set(shard_ids)
        missing_pairs = tuple(
            (i, j)
            for i in range(len(configs))
            for j in range(i + 1, len(configs))
            if i not in surviving or j not in surviving
        )
        health = supervisor.health(outcomes, missing_pairs=missing_pairs)
        return (
            shard_ids,
            [outcome.artifacts for outcome in survivors],
            [outcome.summary for outcome in survivors],
            health,
            dict(supervisor.stage_timings),
        )

    def _sweep(
        self,
        shard_ids: list[int],
        shards: list[BuildArtifacts],
        timings: dict[str, float],
        summaries: list[RowSignatures | None] | None = None,
    ) -> tuple[MergedCandidates, MergedCandidates, SweepPruneStats]:
        """Per-shard joins + cross-shard pair sweeps, merged both ways.

        In store-backed mode the merged sets are streamed into
        ``<store_dir>/merged.db`` and come back as lazy
        :class:`~repro.shard.merge.StoredMergedCandidates` query views.
        """
        universes = [
            shard_universe(artifacts, shard)
            for shard, artifacts in zip(shard_ids, shards)
        ]
        sink = None
        if self.store_dir is not None:
            sink = MergedCandidateStore(self.store_dir / "merged.db")
        try:
            return _sweep_universes(
                universes,
                k=self.sweep_k,
                cross_metrics=self.sweep_metrics,
                shard_metrics=self.shard_metrics,
                n_shards=len(shards),
                timings=timings,
                sweep_mode=self.sweep_mode,
                signature_threshold=self.signature_threshold,
                summaries=summaries,
                sink=sink,
            )
        finally:
            if sink is not None:
                sink.close()

    # ------------------------------------------------------------------ #
    def build(self) -> ShardedArtifacts:
        """Build all shards, sweep all shard pairs, merge the results.

        Under ``failure_policy="degrade"`` the sweep runs over the
        surviving shards only; the returned artifacts' ``health`` names
        every failed shard and every skipped shard pair.
        """
        timings: dict[str, float] = {}
        with Timer() as timer:
            shard_ids, shards, summaries, health, supervisor_timings = (
                self._build_shards()
            )
        timings["shards"] = timer.elapsed
        timings.update(supervisor_timings)
        for shard, artifacts in zip(shard_ids, shards):
            # Checkpoint-loaded shards spent no build time this session;
            # their historical stage rows would only distort budgets.
            if health.statuses.get(shard) == "checkpoint":
                continue
            for stage, seconds in artifacts.stage_timings.items():
                timings[f"shard:{shard}:{stage}"] = seconds

        with Timer() as timer:
            merged, merged_join, stats = self._sweep(
                shard_ids, shards, timings, summaries
            )
        timings["sweep"] = timer.elapsed

        return ShardedArtifacts(
            self.plan,
            tuple(shards),
            merged_candidates=merged,
            merged_join_candidates=merged_join,
            sweep_k=self.sweep_k,
            sweep_metrics=self.sweep_metrics,
            stage_timings=timings,
            sweep_mode=self.sweep_mode,
            signature_threshold=(
                self.signature_threshold
                if self.sweep_mode == "signature"
                else None
            ),
            sweep_stats=stats,
            shard_ids=tuple(shard_ids),
            health=health,
        )
