"""The shard-native build/eval session.

``ShardedBenchmarkSession`` turns the corpus into the parallel unit: a
:class:`~repro.shard.plan.ShardPlan` fixes N independent per-shard build
configs, :meth:`ShardedBenchmarkSession.build` runs
:func:`~repro.core.builder.build_one_corpus` for each of them in worker
**processes** (the corpus/cleansing/grouping stages are serial Python, so
process isolation — not the ratio thread pool — is what parallelizes
them), and a cross-shard blocking sweep joins every shard pair's
universes into one deduplicated, provenance-tagged candidate set.  The
result is a :class:`ShardedArtifacts`: per-shard
:class:`~repro.core.builder.BuildArtifacts` plus merged session-level
views (candidates, benchmark, corpus, engine) that existing consumers —
:func:`~repro.blocking.recall.blocking_recall`,
:class:`~repro.eval.runner.ExperimentRunner` — use unchanged.

Determinism: shard seeds come from ``SeedSequence.spawn`` (independent of
shard count and ordering), worker results are collected in plan order,
and the sweep visits shard pairs lexicographically — a seeded session is
byte-identical across worker counts, process-vs-serial execution and
shard completion order (pinned in ``tests/shard/test_session.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property

from repro.blocking.candidates import BlockedPairSet
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.builder import BuildArtifacts, build_one_corpus
from repro.corpus.schema import SyntheticCorpus
from repro.shard.merge import (
    MergedCandidates,
    merge_benchmarks,
    merge_candidate_sets,
    merge_corpora,
)
from repro.shard.plan import ShardPlan
from repro.shard.namespace import namespace_id
from repro.shard.sweep import (
    CROSS_SHARD_METRICS,
    cross_shard_candidates,
    shard_universe,
    split_universe,
)
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import validate_metric_names
from repro.utils.timer import Timer

__all__ = [
    "ShardedBenchmarkSession",
    "ShardedArtifacts",
    "MergedArtifacts",
]

_EXECUTORS = ("process", "thread", "serial")


def _sweep_universes(
    universes,
    *,
    k: int,
    cross_metrics: tuple[str, ...],
    n_shards: int,
    shard_metrics: tuple[str, ...] | None = None,
    timings: dict[str, float] | None = None,
) -> tuple[MergedCandidates, MergedCandidates]:
    """Join every universe and every universe pair; merge both shapes.

    The one sweep implementation behind the session's corpus-level sweep
    and the split-scoped recall recipe: per-universe joins run under
    ``shard_metrics`` (default: each universe engine's full metric set),
    universe pairs under the token-only ``cross_metrics``, and the merged
    sets record the union of every metric actually joined.  Returns
    ``(completed, join_only)``; ``timings`` (when given) receives one
    ``sweep:<i>→<j>`` row per join.
    """
    completed_sets: list[tuple[int, BlockedPairSet]] = []
    join_sets: list[tuple[int, BlockedPairSet]] = []
    used_metrics: dict[str, None] = {}
    for universe in universes:
        with Timer() as timer:
            blocker = universe.blocker()
            metrics = (
                blocker.engine.metric_names
                if shard_metrics is None
                else shard_metrics
            )
            used_metrics.update(dict.fromkeys(metrics))
            join = blocker.candidates(k=k, metrics=metrics)
            join_sets.append((universe.shard, join))
            completed_sets.append(
                (universe.shard, join.with_group_positives())
            )
        if timings is not None:
            timings[f"sweep:{universe.shard}→{universe.shard}"] = (
                timer.elapsed
            )
    used_metrics.update(dict.fromkeys(cross_metrics))
    cross_sets = []
    for i in range(len(universes)):
        for j in range(i + 1, len(universes)):
            with Timer() as timer:
                blocked, partition = cross_shard_candidates(
                    universes[i], universes[j], k=k, metrics=cross_metrics
                )
            cross_sets.append(
                ((universes[i].shard, universes[j].shard), blocked, partition)
            )
            if timings is not None:
                timings[
                    f"sweep:{universes[i].shard}→{universes[j].shard}"
                ] = timer.elapsed
    kwargs = dict(k=k, metrics=tuple(used_metrics), n_shards=n_shards)
    return (
        merge_candidate_sets(completed_sets, cross_sets, **kwargs),
        merge_candidate_sets(join_sets, cross_sets, **kwargs),
    )


@dataclass
class MergedArtifacts:
    """The merged single-corpus view of a sharded session.

    Structurally compatible with the slice of
    :class:`~repro.core.builder.BuildArtifacts` that
    :class:`~repro.eval.runner.ExperimentRunner` reads: ``benchmark``,
    ``cleansed``, ``engine`` and ``pretraining_clusters``.  ``splits`` is
    empty — offer splits are per-shard artifacts (each shard split its own
    corpus); blocked-split workflows run on the shards, the merged view
    serves whole-benchmark training/evaluation.
    """

    session: "ShardedArtifacts"
    benchmark: WDCProductsBenchmark
    cleansed: SyntheticCorpus
    engine: SimilarityEngine | None
    splits: dict = field(default_factory=dict)

    def pretraining_clusters(self, serializer=None):
        """Namespaced union of every shard's pre-training clusters."""
        clusters = []
        for shard, artifacts in enumerate(self.session.shards):
            clusters.extend(
                (
                    namespace_id(shard, cluster_id),
                    namespace_id(shard, family_id),
                    texts,
                )
                for cluster_id, family_id, texts in (
                    artifacts.pretraining_clusters(serializer)
                )
            )
        return clusters


class ShardedArtifacts:
    """Everything a sharded session built.

    ``shards[i]`` is shard ``i``'s complete single-corpus artifact set;
    ``merged_candidates`` is the deduplicated per-shard + cross-shard
    candidate set in its training shape (ground-truth group positives
    completed) and ``merged_join_candidates`` the raw top-k join (the
    shape blocking-recall floors gate).  The merged benchmark / corpus /
    engine views build lazily and are cached.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shards: tuple[BuildArtifacts, ...],
        *,
        merged_candidates: MergedCandidates,
        merged_join_candidates: MergedCandidates,
        sweep_k: int,
        sweep_metrics: tuple[str, ...],
        stage_timings: dict[str, float],
    ) -> None:
        self.plan = plan
        self.shards = shards
        self.merged_candidates = merged_candidates
        self.merged_join_candidates = merged_join_candidates
        self.sweep_k = sweep_k
        self.sweep_metrics = sweep_metrics
        self.stage_timings = stage_timings

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def total_offers(self) -> int:
        """Cleansed offers across all shards (the merged universe size)."""
        return sum(len(shard.cleansed.offers) for shard in self.shards)

    @cached_property
    def merged_benchmark(self) -> WDCProductsBenchmark:
        return merge_benchmarks([shard.benchmark for shard in self.shards])

    @cached_property
    def merged_corpus(self) -> SyntheticCorpus:
        return merge_corpora([shard.cleansed for shard in self.shards])

    @cached_property
    def merged_engine(self) -> SimilarityEngine:
        """One engine over all shards' rows (token metrics only)."""
        return SimilarityEngine.concat(
            [shard.engine for shard in self.shards]
        )

    def merged_artifacts(self) -> MergedArtifacts:
        """The runner-facing merged view (see :class:`MergedArtifacts`)."""
        return MergedArtifacts(
            session=self,
            benchmark=self.merged_benchmark,
            cleansed=self.merged_corpus,
            engine=self.merged_engine,
        )

    def split_candidates(
        self,
        corner_cases,
        dev_size,
        *,
        k: int = 25,
        cross_metrics: tuple[str, ...] | None = None,
    ) -> tuple[MergedCandidates, MergedCandidates]:
        """Merged split-scoped candidates of one (cc, dev) training cell.

        Every shard's train split becomes a view-scoped universe (the
        single-corpus ``CandidateBlocker.over_entries`` recipe the CI
        recall floors were recorded with), joined within each shard under
        the shard engine's full metric set and across shard pairs under
        ``cross_metrics`` (default: the metrics the session's sweep ran
        with, validated here so a bad name fails before any join runs).
        Returns ``(completed, join_only)``: the training shape with
        ground-truth group positives completed, and the raw top-k join
        the recall floors gate.  Measure both against the merged
        benchmark's train set of the same cell with
        :func:`~repro.blocking.recall.blocking_recall`.
        """
        if cross_metrics is None:
            cross_metrics = self.sweep_metrics
        else:
            cross_metrics = validate_metric_names(
                cross_metrics,
                available=CROSS_SHARD_METRICS,
                context="split_candidates.cross_metrics (cross-shard joins "
                "support the token metrics only)",
            )
        universes = [
            split_universe(
                artifacts,
                shard,
                artifacts.splits[corner_cases].train_offers(dev_size),
            )
            for shard, artifacts in enumerate(self.shards)
        ]
        return _sweep_universes(
            universes,
            k=k,
            cross_metrics=cross_metrics,
            n_shards=self.n_shards,
        )


class ShardedBenchmarkSession:
    """Schedules shard builds and shard-pair joins for one plan."""

    def __init__(
        self,
        plan: ShardPlan,
        *,
        sweep_k: int = 25,
        sweep_metrics: tuple[str, ...] = ("cosine", "dice"),
        shard_metrics: tuple[str, ...] | None = None,
        executor: str = "process",
        max_workers: int | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        # Cross-shard universes have no common embedding space, so the
        # sweep validates against the token metrics only — and does so
        # here, at construction time, not deep inside the sweep.  The
        # default skips Generalized Jaccard: its exact rescoring is the
        # one non-sparse-matmul cost, and the concat engines' pair caches
        # start cold on every pair sweep.
        self.sweep_metrics = validate_metric_names(
            sweep_metrics,
            available=CROSS_SHARD_METRICS,
            context="ShardedBenchmarkSession.sweep_metrics "
            "(cross-shard joins support the token metrics only: per-shard "
            "LSA embeddings are not comparable across corpora)",
        )
        # Within a shard all of the shard engine's metrics apply (its own
        # embedding space included); None = each shard's full metric set,
        # the recipe the single-corpus recall floors were recorded with.
        self.shard_metrics = (
            None
            if shard_metrics is None
            else validate_metric_names(
                shard_metrics,
                context="ShardedBenchmarkSession.shard_metrics",
            )
        )
        if sweep_k <= 0:
            raise ValueError(f"sweep_k must be positive, got {sweep_k}")
        self.plan = plan
        self.sweep_k = sweep_k
        self.executor = executor
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def _build_shards(self) -> list[BuildArtifacts]:
        """Run every shard's stage pipeline; collect in plan order.

        Worker scheduling never reaches the results: futures are gathered
        in submission (= plan) order whatever the completion order, and
        each shard's streams derive from its own spawned seed.
        """
        configs = list(self.plan.shard_configs)
        if self.executor == "serial" or len(configs) == 1:
            return [build_one_corpus(config) for config in configs]
        workers = self.max_workers or len(configs)
        pool_cls = (
            ProcessPoolExecutor
            if self.executor == "process"
            else ThreadPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(build_one_corpus, configs))

    def _sweep(
        self, shards: list[BuildArtifacts], timings: dict[str, float]
    ) -> tuple[MergedCandidates, MergedCandidates]:
        """Per-shard joins + cross-shard pair sweeps, merged both ways."""
        universes = [
            shard_universe(artifacts, shard)
            for shard, artifacts in enumerate(shards)
        ]
        return _sweep_universes(
            universes,
            k=self.sweep_k,
            cross_metrics=self.sweep_metrics,
            shard_metrics=self.shard_metrics,
            n_shards=len(shards),
            timings=timings,
        )

    # ------------------------------------------------------------------ #
    def build(self) -> ShardedArtifacts:
        """Build all shards, sweep all shard pairs, merge the results."""
        timings: dict[str, float] = {}
        with Timer() as timer:
            shards = self._build_shards()
        timings["shards"] = timer.elapsed
        for shard, artifacts in enumerate(shards):
            for stage, seconds in artifacts.stage_timings.items():
                timings[f"shard:{shard}:{stage}"] = seconds

        with Timer() as timer:
            merged, merged_join = self._sweep(shards, timings)
        timings["sweep"] = timer.elapsed

        return ShardedArtifacts(
            self.plan,
            tuple(shards),
            merged_candidates=merged,
            merged_join_candidates=merged_join,
            sweep_k=self.sweep_k,
            sweep_metrics=self.sweep_metrics,
            stage_timings=timings,
        )
