"""The global two-level signature index behind the cross-shard sweep.

The exhaustive sweep concatenates C(N, 2) engine pairs and runs a full
top-k join per pair — quadratic in shards and, within each pair, bilinear
in rows.  The signature index replaces that sweep's *universe* with the
rows that can actually collide:

* **Level one — shard summaries.**  Every shard contributes a
  :class:`~repro.similarity.signatures.RowSignatures` summary (token
  document counts + CSR row structure; built next to the shard, inside
  the worker process that built it).  The index merges the counts into
  one global frequency order and keeps, per shard, a prefix-token
  bitmap and per-token set-size ranges.  A shard *pair* whose prefix
  bitmaps are disjoint can be skipped outright — no engine is ever
  concatenated for it.
* **Level two — row blocks.**  For a surviving pair, a row of shard
  ``i`` stays in the block only if one of its prefix tokens also
  prefixes some row of shard ``j`` whose set size lies inside the row's
  length window.  The check is exact per ``(token, size)``: every
  shard's prefix entries are kept as a sorted array of
  ``token_id·M + set_size`` keys, so "does the other shard hold this
  token at a compatible size" is one segmented binary search — nothing
  quadratic is materialized.  The sweep then rescores only the
  surviving block through the ordinary
  :class:`~repro.blocking.candidates.CandidateBlocker` /
  :meth:`~repro.similarity.engine.SimilarityEngine.concat` path.

Soundness (see :mod:`repro.similarity.signatures`): any cross-shard
pair reaching the admission threshold under an exact-token metric keeps
both of its rows in the block, and restricting a top-k universe can
only promote surviving candidates — so the signature sweep's merged
candidates are a superset of every exhaustive-sweep pair above the
threshold.  Rows whose *every* counterpart scores below the threshold
are exactly the ones dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.similarity.signatures import (
    RowSignatures,
    global_token_order,
    length_window,
)

__all__ = ["SignatureIndex", "SweepPruneStats"]


@dataclass
class SweepPruneStats:
    """What one sweep pruned, pair by pair and in aggregate.

    ``rows_universe`` counts every row of every shard pair the sweep
    would visit exhaustively (a row is counted once per pair it appears
    in); ``rows_rescored`` counts the rows that survived into blocks.
    ``cells_universe`` / ``cells_rescored`` count the *bilinear* join
    cells (``|i|·|j|`` per pair) the same way — the quantity the pair
    joins actually spend their time on.  ``per_pair`` maps ``"<i>→<j>"``
    to either ``"skipped"`` or the block's row counts and rescored
    fraction.
    """

    mode: str
    threshold: float | None = None
    pairs_total: int = 0
    pairs_skipped: int = 0
    rows_universe: int = 0
    rows_rescored: int = 0
    cells_universe: int = 0
    cells_rescored: int = 0
    per_pair: dict[str, dict | str] = field(default_factory=dict)

    @property
    def pairs_swept(self) -> int:
        return self.pairs_total - self.pairs_skipped

    @property
    def pair_prune_ratio(self) -> float:
        """Fraction of shard pairs never concatenated."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_total

    @property
    def row_prune_ratio(self) -> float:
        """Fraction of pair-sweep rows excluded from rescoring."""
        if self.rows_universe == 0:
            return 0.0
        return 1.0 - self.rows_rescored / self.rows_universe

    @property
    def cell_prune_ratio(self) -> float:
        """Fraction of bilinear join cells excluded from rescoring."""
        if self.cells_universe == 0:
            return 0.0
        return 1.0 - self.cells_rescored / self.cells_universe

    def as_dict(self) -> dict:
        """JSON-ready summary (what ``record_timings.py`` stores)."""
        return {
            "mode": self.mode,
            "threshold": self.threshold,
            "pairs_total": self.pairs_total,
            "pairs_skipped": self.pairs_skipped,
            "pairs_swept": self.pairs_swept,
            "pair_prune_ratio": self.pair_prune_ratio,
            "rows_universe": self.rows_universe,
            "rows_rescored": self.rows_rescored,
            "row_prune_ratio": self.row_prune_ratio,
            "cells_universe": self.cells_universe,
            "cells_rescored": self.cells_rescored,
            "cell_prune_ratio": self.cell_prune_ratio,
            "per_pair": dict(self.per_pair),
        }


class _ShardEntry:
    """One shard's merged-order signature structures.

    ``entry_keys`` encodes every prefix entry as ``token_id·M + size``
    (``M`` = one past the largest set size anywhere in the index) and is
    sorted, so a ``(token, size-window)`` probe against this shard is a
    pair of binary searches over one contiguous key segment.
    """

    __slots__ = (
        "rows",
        "global_ids",
        "set_sizes",
        "token_mask",
        "entry_keys",
        "size_modulus",
        "empty_rows",
        "n_rows",
    )

    def __init__(
        self,
        summary: RowSignatures,
        local_to_global: np.ndarray,
        n_global: int,
        threshold: float,
        size_modulus: int,
    ) -> None:
        self.n_rows = summary.n_rows
        self.set_sizes = summary.set_sizes
        self.size_modulus = size_modulus
        self.rows, self.global_ids = summary.prefix_entries(
            local_to_global, threshold
        )
        self.empty_rows = np.flatnonzero(summary.set_sizes == 0)
        self.token_mask = np.zeros(n_global, dtype=bool)
        if self.global_ids.size:
            self.token_mask[self.global_ids] = True
            sizes = summary.set_sizes[self.rows].astype(np.int64)
            self.entry_keys = np.sort(
                self.global_ids.astype(np.int64) * size_modulus + sizes
            )
        else:
            self.entry_keys = np.empty(0, dtype=np.int64)


class SignatureIndex:
    """Candidate shard pairs and row blocks from merged signatures.

    Built once per sweep from every universe's
    :class:`RowSignatures` summary; ``threshold`` is the top-k admission
    threshold the prefix lengths derive from (see
    :func:`~repro.similarity.signatures.prefix_lengths`).
    """

    def __init__(
        self,
        summaries: Sequence[RowSignatures],
        *,
        threshold: float,
    ) -> None:
        if not summaries:
            raise ValueError("SignatureIndex needs at least one summary")
        self.threshold = float(threshold)
        merged_counts: dict[str, int] = {}
        for summary in summaries:
            for token, count in summary.token_count_map().items():
                merged_counts[token] = merged_counts.get(token, 0) + count
        order = global_token_order(merged_counts)
        self.n_tokens = len(order)
        size_modulus = 2 + int(
            max(
                (
                    summary.set_sizes.max()
                    for summary in summaries
                    if summary.set_sizes.size
                ),
                default=0,
            )
        )
        self._entries: list[_ShardEntry] = []
        for summary in summaries:
            local_to_global = np.array(
                [order[token] for token in summary.tokens], dtype=np.intp
            )
            self._entries.append(
                _ShardEntry(
                    summary,
                    local_to_global,
                    self.n_tokens,
                    self.threshold,
                    size_modulus,
                )
            )

    @property
    def n_shards(self) -> int:
        return len(self._entries)

    def shard_pair_survives(self, i: int, j: int) -> bool:
        """Level one: can *any* row of ``i`` collide with any row of ``j``?"""
        entry_i, entry_j = self._entries[i], self._entries[j]
        if entry_i.empty_rows.size and entry_j.empty_rows.size:
            return True  # empty-empty pairs score 1.0 under Dice
        return bool(np.any(entry_i.token_mask & entry_j.token_mask))

    def _surviving_rows(self, entry, other) -> np.ndarray:
        """Rows of ``entry`` with a prefix/length collision into ``other``.

        A prefix entry ``(row, token)`` collides when ``other`` holds the
        same token in some prefix at a set size inside the row's length
        window — set sizes are integers, so the window ``[lo, hi]``
        becomes the key interval ``[token·M + ⌈lo⌉, token·M + ⌊hi⌋]`` and
        the existence check is two ``searchsorted`` calls against
        ``other.entry_keys``.
        """
        keep = np.zeros(entry.n_rows, dtype=bool)
        if entry.global_ids.size and other.entry_keys.size:
            modulus = entry.size_modulus
            lo, hi = length_window(entry.set_sizes, self.threshold)
            lo_size = np.maximum(np.ceil(lo[entry.rows]), 0.0).astype(
                np.int64
            )
            hi_size = np.minimum(
                np.floor(hi[entry.rows]), modulus - 1
            ).astype(np.int64)
            tokens = entry.global_ids.astype(np.int64) * modulus
            left = np.searchsorted(
                other.entry_keys, tokens + lo_size, side="left"
            )
            right = np.searchsorted(
                other.entry_keys, tokens + hi_size, side="right"
            )
            keep[entry.rows[right > left]] = True
        if other.empty_rows.size:
            keep[entry.empty_rows] = True
        return np.flatnonzero(keep)

    def candidate_block(
        self, i: int, j: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Level two: the row block of pair ``(i, j)``, or ``None``.

        ``None`` means the pair is skipped entirely — either the shard
        summaries cannot collide at all (level one) or no individual row
        survives the token/length filter on one of the sides.  When a
        block comes back, any admissible pair (exact-token similarity ≥
        the threshold) has both of its rows inside it.
        """
        if not self.shard_pair_survives(i, j):
            return None
        entry_i, entry_j = self._entries[i], self._entries[j]
        rows_i = self._surviving_rows(entry_i, entry_j)
        if rows_i.size == 0:
            return None
        rows_j = self._surviving_rows(entry_j, entry_i)
        if rows_j.size == 0:
            return None
        return rows_i, rows_j
