"""Merging per-shard and cross-shard results into one session view.

Two merges happen at the end of a sharded session:

* :func:`merge_candidate_sets` folds every shard's own blocking join and
  every cross-shard sweep join into one deduplicated
  :class:`MergedCandidates` set.  Each candidate carries directional
  provenance ``shard:<i>→<j>:<metric>`` — the pair first surfaced as a
  query from shard ``i`` against shard ``j``'s sub-universe under
  ``metric`` (``i == j`` for within-shard candidates, metric ``group``
  for ground-truth positives completed after the join).  Dedup runs on
  globally namespaced unordered offer-id keys, and sets are consumed in
  deterministic (shard, then shard-pair) order, so the merged set is
  byte-identical regardless of worker count or completion order.

* :func:`merge_benchmarks` / :func:`merge_corpora` build the merged
  benchmark view: per-variant pair/multi-class datasets concatenated
  across shards in shard order with namespaced offers, which a plain
  :class:`~repro.eval.runner.ExperimentRunner` consumes unchanged.

Both merges exist in two physical shapes.  The historical in-memory
shape materializes python lists (:class:`MergedCandidates`).  The
out-of-core shape streams the *same* candidate iterator into a
self-contained SQLite file (:class:`MergedCandidateStore` →
``merged.db``) whose dedup is an ``INSERT OR IGNORE`` over canonical
unordered pair keys, and serves the result back as
:class:`StoredMergedCandidates` — a lazy query view with windowed
iteration and SQL aggregates, duck-type compatible with
:class:`MergedCandidates` so recall and dataset consumers run unchanged
without a merged copy in RAM.  One shared generator feeds both shapes,
so python-set dedup and SQL first-win dedup see identical insertion
order and keep byte-identical survivors.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.blocking.candidates import BlockedPairSet
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.corpus.schema import ProductOffer, SyntheticCorpus
from repro.io.store import OFFER_COLUMNS, offer_to_row, row_to_offer
from repro.shard.namespace import namespace_id, namespace_offer, namespace_offers

__all__ = [
    "MergedCandidate",
    "MergedCandidates",
    "MergedCandidateStore",
    "StoredMergedCandidates",
    "MERGED_SCHEMA",
    "iter_merged_candidates",
    "merge_candidate_sets",
    "merge_benchmarks",
    "merge_corpora",
]

MERGED_SCHEMA = 1


@dataclass(frozen=True)
class MergedCandidate:
    """One candidate pair of the merged session-level set.

    ``offer_a``/``offer_b`` are globally namespaced; ``provenance`` is
    ``shard:<i>→<j>:<metric>`` with ``i`` the querying shard and ``j`` the
    shard whose sub-universe surfaced the candidate.
    """

    offer_a: ProductOffer
    offer_b: ProductOffer
    label: int
    score: float
    metric: str
    provenance: str


class MergedCandidates:
    """The session-wide deduplicated candidate set.

    Duck-type compatible with
    :class:`~repro.blocking.candidates.BlockedPairSet` where it matters
    (``pair_keys`` / ``k`` / ``metrics`` / ``__len__`` / ``summary`` /
    ``to_dataset``), so :func:`~repro.blocking.recall.blocking_recall`
    measures it against a (merged, namespaced) reference unchanged.
    """

    def __init__(
        self,
        pairs: list[MergedCandidate],
        *,
        k: int,
        metrics: tuple[str, ...],
        n_shards: int,
    ) -> None:
        self.pairs = pairs
        self.k = k
        self.metrics = metrics
        self.n_shards = n_shards

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[MergedCandidate]:
        return iter(self.pairs)

    def pair_keys(self) -> set[tuple[str, str]]:
        """Unordered (namespaced) offer-id keys, as ``LabeledPair.key()``."""
        keys: set[tuple[str, str]] = set()
        for pair in self.pairs:
            a, b = pair.offer_a.offer_id, pair.offer_b.offer_id
            keys.add((a, b) if a <= b else (b, a))
        return keys

    def to_dataset(self, name: str) -> PairDataset:
        """The merged candidates as one labeled ``PairDataset``."""
        dataset = PairDataset(name=name)
        dataset.pairs = [
            LabeledPair(
                pair_id=f"{name}-{position:07d}",
                offer_a=pair.offer_a,
                offer_b=pair.offer_b,
                label=pair.label,
                provenance=pair.provenance,
            )
            for position, pair in enumerate(self.pairs)
        ]
        return dataset

    def summary(self) -> dict[str, int]:
        positives = sum(pair.label for pair in self.pairs)
        cross = sum(
            1 for pair in self.pairs if not _is_within_shard(pair.provenance)
        )
        return {
            "all": len(self.pairs),
            "pos": positives,
            "neg": len(self.pairs) - positives,
            "cross_shard": cross,
        }

    def per_provenance_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pair in self.pairs:
            counts[pair.provenance] = counts.get(pair.provenance, 0) + 1
        return counts


def _is_within_shard(provenance: str) -> bool:
    _, _, tail = provenance.partition(":")
    direction, _, _ = tail.partition(":")
    source, _, target = direction.partition("→")
    return source == target


def provenance_tag(query_shard: int, candidate_shard: int, metric: str) -> str:
    """The canonical ``shard:<i>→<j>:<metric>`` provenance string."""
    return f"shard:{int(query_shard)}→{int(candidate_shard)}:{metric}"


def _iter_blocked(
    blocked: BlockedPairSet,
    shard_of_row: np.ndarray | int,
    seen: set[tuple[str, str]] | None,
) -> Iterator[MergedCandidate]:
    """Yield ``blocked``'s pairs (already namespaced) as merged candidates.

    ``shard_of_row`` maps engine rows to shard ids — a scalar for a
    within-shard set, the partition array for a cross-shard sweep.
    ``seen`` enables python-set dedup; ``None`` yields every occurrence
    in the same order (a SQL sink dedups downstream on the identical
    canonical keys, so both consumers keep the same first-win survivors).
    """
    offers = blocked.blocker.offers
    labels = blocked.blocker.group_labels
    if offers is None or labels is None:
        raise ValueError("merging needs blockers built with offers and labels")
    scalar_shard = shard_of_row if isinstance(shard_of_row, int) else None
    for pair in blocked.pairs:
        offer_a, offer_b = offers[pair.row_a], offers[pair.row_b]
        if seen is not None:
            a, b = offer_a.offer_id, offer_b.offer_id
            key = (a, b) if a <= b else (b, a)
            if key in seen:
                continue
            seen.add(key)
        if scalar_shard is not None:
            query_shard = candidate_shard = scalar_shard
        else:
            query_shard = int(shard_of_row[pair.query_row])
            candidate = (
                pair.row_b if pair.row_a == pair.query_row else pair.row_a
            )
            candidate_shard = int(shard_of_row[candidate])
        yield MergedCandidate(
            offer_a=offer_a,
            offer_b=offer_b,
            label=int(labels[pair.row_a] == labels[pair.row_b]),
            score=pair.score,
            metric=pair.metric,
            provenance=provenance_tag(
                query_shard, candidate_shard, pair.metric
            ),
        )


def iter_merged_candidates(
    shard_sets: Sequence[tuple[int, BlockedPairSet]],
    cross_sets: Sequence[tuple[tuple[int, int], BlockedPairSet, np.ndarray]],
    *,
    dedup: bool = True,
) -> Iterator[MergedCandidate]:
    """Stream the session's merged candidates in canonical merge order.

    Consumes ``shard_sets`` then ``cross_sets`` in the given order (the
    session passes shard order, then lexicographic pair order).  With
    ``dedup=True`` the stream is the exact in-memory merged set; with
    ``dedup=False`` duplicates ride along for a downstream first-win
    sink (``INSERT OR IGNORE`` over the same canonical keys).
    """
    seen: set[tuple[str, str]] | None = set() if dedup else None
    for shard, blocked in shard_sets:
        yield from _iter_blocked(blocked, int(shard), seen)
    for _, blocked, partition in cross_sets:
        yield from _iter_blocked(blocked, partition, seen)


def merge_candidate_sets(
    shard_sets: Sequence[tuple[int, BlockedPairSet]],
    cross_sets: Sequence[tuple[tuple[int, int], BlockedPairSet, np.ndarray]],
    *,
    k: int,
    metrics: Sequence[str],
    n_shards: int,
) -> MergedCandidates:
    """Fold per-shard joins and cross-shard sweeps into one candidate set.

    ``shard_sets`` holds ``(shard, blocked)`` per shard; ``cross_sets``
    holds ``((i, j), blocked, partition)`` per shard pair, with
    ``partition`` mapping the combined engine's rows to shard ids.  Both
    are consumed in the given order, and all blockers must carry
    namespaced offers/labels, so dedup keys are globally unique and the
    merge is deterministic by construction.
    """
    return MergedCandidates(
        list(iter_merged_candidates(shard_sets, cross_sets, dedup=True)),
        k=k,
        metrics=tuple(metrics),
        n_shards=n_shards,
    )


# --------------------------------------------------------------------- #
# Out-of-core merged views (merged.db)
# --------------------------------------------------------------------- #
_MERGED_TABLES = {
    "completed": "candidates_completed",
    "join_only": "candidates_join_only",
}

_MERGED_OFFER_SQL = ", ".join(
    f"{name} {'REAL' if name == 'price' else 'TEXT'}"
    + (" PRIMARY KEY" if name == "offer_id" else "")
    for name in OFFER_COLUMNS
)

_MERGED_DDL = [
    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    f"CREATE TABLE offers ({_MERGED_OFFER_SQL})",
    *(
        f"""CREATE TABLE {table} (
            key_a TEXT NOT NULL,
            key_b TEXT NOT NULL,
            offer_a TEXT NOT NULL REFERENCES offers (offer_id),
            offer_b TEXT NOT NULL REFERENCES offers (offer_id),
            label INTEGER NOT NULL,
            score REAL NOT NULL,
            metric TEXT NOT NULL,
            provenance TEXT NOT NULL,
            UNIQUE (key_a, key_b)
        )"""
        for table in _MERGED_TABLES.values()
    ),
]

_OFFER_PLACEHOLDERS = ", ".join("?" for _ in OFFER_COLUMNS)


class MergedCandidateStore:
    """Write side of ``merged.db`` — the session-level candidate sink.

    Self-contained by design: the merged file carries its own
    (namespaced) offers table, so reading merged candidates back never
    touches a per-shard store.  Dedup happens *in* the database — the
    candidate tables are unique over canonical unordered pair keys and
    rows arrive via ``INSERT OR IGNORE`` in canonical merge order, so
    the surviving rows equal the in-memory python-set dedup exactly.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Recreate from scratch: the sink is derived data, rebuilt by
        # every sweep, so a stale file must never contribute rows.
        if self.path.exists():
            self.path.unlink()
        self._connection = sqlite3.connect(self.path)
        self._connection.execute("PRAGMA journal_mode=MEMORY")
        self._connection.execute("PRAGMA synchronous=OFF")
        with self._connection:
            for statement in _MERGED_DDL:
                self._connection.execute(statement)
            self._connection.execute(
                "INSERT INTO meta VALUES ('schema', ?)", (str(MERGED_SCHEMA),)
            )

    def write(
        self,
        table_key: str,
        candidates: Iterable[MergedCandidate],
        *,
        k: int,
        metrics: Sequence[str],
        n_shards: int,
    ) -> "StoredMergedCandidates":
        """Stream one candidate table and return its lazy query view."""
        table = _MERGED_TABLES[table_key]
        connection = self._connection
        with connection:
            for candidate in candidates:
                a = candidate.offer_a.offer_id
                b = candidate.offer_b.offer_id
                key_a, key_b = (a, b) if a <= b else (b, a)
                inserted = connection.execute(
                    f"INSERT OR IGNORE INTO {table} "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key_a,
                        key_b,
                        a,
                        b,
                        candidate.label,
                        candidate.score,
                        candidate.metric,
                        candidate.provenance,
                    ),
                ).rowcount
                if inserted:
                    connection.executemany(
                        "INSERT OR IGNORE INTO offers "
                        f"VALUES ({_OFFER_PLACEHOLDERS})",
                        (
                            offer_to_row(candidate.offer_a),
                            offer_to_row(candidate.offer_b),
                        ),
                    )
            for key, value in (
                (f"{table_key}:k", str(int(k))),
                (f"{table_key}:metrics", json.dumps(list(metrics))),
                (f"{table_key}:n_shards", str(int(n_shards))),
            ):
                connection.execute(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)", (key, value)
                )
        return StoredMergedCandidates(
            self.path,
            table_key,
            k=int(k),
            metrics=tuple(metrics),
            n_shards=int(n_shards),
        )

    def close(self) -> None:
        self._connection.close()


def _reopen_stored_merged(path: str, table_key: str) -> "StoredMergedCandidates":
    return StoredMergedCandidates.open(path, table_key)


class StoredMergedCandidates:
    """Lazy, windowed query view over one ``merged.db`` candidate table.

    Duck-type compatible with :class:`MergedCandidates` (``pair_keys`` /
    ``k`` / ``metrics`` / ``__len__`` / ``__iter__`` / ``summary`` /
    ``per_provenance_counts`` / ``to_dataset``), but nothing is resident:
    iteration pages through the table in rowid order ``window`` rows at a
    time (offers resolved per window from the merged file's own offers
    table), and the aggregates are SQL.  ``.pairs`` exists as an explicit
    materialization escape hatch for callers that genuinely need a list.
    """

    def __init__(
        self,
        path: Path | str,
        table_key: str,
        *,
        k: int,
        metrics: tuple[str, ...],
        n_shards: int,
        window: int = 2048,
    ) -> None:
        if table_key not in _MERGED_TABLES:
            raise ValueError(
                f"table_key must be one of {sorted(_MERGED_TABLES)}, got "
                f"{table_key!r}"
            )
        self.path = Path(path)
        self.table_key = table_key
        self.k = k
        self.metrics = metrics
        self.n_shards = n_shards
        self.window = window
        self._table = _MERGED_TABLES[table_key]
        self._connection_cache: sqlite3.Connection | None = None
        self._length: int | None = None

    @classmethod
    def open(cls, path: Path | str, table_key: str) -> "StoredMergedCandidates":
        """Reopen a view from the metadata persisted beside the table."""
        connection = sqlite3.connect(f"file:{Path(path)}?mode=ro", uri=True)
        try:
            meta = dict(connection.execute("SELECT key, value FROM meta"))
        finally:
            connection.close()
        if meta.get("schema") != str(MERGED_SCHEMA):
            raise ValueError(
                f"merged store {path} has schema {meta.get('schema')!r}, "
                f"expected {MERGED_SCHEMA}"
            )
        return cls(
            path,
            table_key,
            k=int(meta[f"{table_key}:k"]),
            metrics=tuple(json.loads(meta[f"{table_key}:metrics"])),
            n_shards=int(meta[f"{table_key}:n_shards"]),
        )

    def __reduce__(self):
        return (_reopen_stored_merged, (str(self.path), self.table_key))

    @property
    def _connection(self) -> sqlite3.Connection:
        if self._connection_cache is None:
            self._connection_cache = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, check_same_thread=False
            )
        return self._connection_cache

    def close(self) -> None:
        if self._connection_cache is not None:
            self._connection_cache.close()
            self._connection_cache = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._length is None:
            (self._length,) = self._connection.execute(
                f"SELECT COUNT(*) FROM {self._table}"
            ).fetchone()
        return self._length

    def _window_offers(
        self, rows: list[tuple]
    ) -> dict[str, ProductOffer]:
        wanted = sorted({row[1] for row in rows} | {row[2] for row in rows})
        offers: dict[str, ProductOffer] = {}
        for start in range(0, len(wanted), 512):
            chunk = wanted[start : start + 512]
            marks = ", ".join("?" for _ in chunk)
            for values in self._connection.execute(
                f"SELECT {', '.join(OFFER_COLUMNS)} FROM offers "
                f"WHERE offer_id IN ({marks})",
                chunk,
            ):
                offer = row_to_offer(values)
                offers[offer.offer_id] = offer
        return offers

    def __iter__(self) -> Iterator[MergedCandidate]:
        last_rowid = 0
        while True:
            rows = self._connection.execute(
                f"SELECT rowid, offer_a, offer_b, label, score, metric, "
                f"provenance FROM {self._table} WHERE rowid > ? "
                f"ORDER BY rowid LIMIT ?",
                (last_rowid, self.window),
            ).fetchall()
            if not rows:
                return
            offers = self._window_offers(rows)
            for rowid, a, b, label, score, metric, provenance in rows:
                yield MergedCandidate(
                    offer_a=offers[a],
                    offer_b=offers[b],
                    label=label,
                    score=score,
                    metric=metric,
                    provenance=provenance,
                )
            last_rowid = rows[-1][0]

    @property
    def pairs(self) -> list[MergedCandidate]:
        """Materialized list — the explicit opt-out from laziness."""
        return list(self)

    def pair_keys(self) -> set[tuple[str, str]]:
        return {
            (key_a, key_b)
            for key_a, key_b in self._connection.execute(
                f"SELECT key_a, key_b FROM {self._table}"
            )
        }

    def to_dataset(self, name: str) -> PairDataset:
        dataset = PairDataset(name=name)
        dataset.pairs = [
            LabeledPair(
                pair_id=f"{name}-{position:07d}",
                offer_a=pair.offer_a,
                offer_b=pair.offer_b,
                label=pair.label,
                provenance=pair.provenance,
            )
            for position, pair in enumerate(self)
        ]
        return dataset

    def summary(self) -> dict[str, int]:
        total, positives = self._connection.execute(
            f"SELECT COUNT(*), COALESCE(SUM(label), 0) FROM {self._table}"
        ).fetchone()
        cross = sum(
            count
            for provenance, count in self._connection.execute(
                f"SELECT provenance, COUNT(*) FROM {self._table} "
                "GROUP BY provenance"
            )
            if not _is_within_shard(provenance)
        )
        return {
            "all": total,
            "pos": positives,
            "neg": total - positives,
            "cross_shard": cross,
        }

    def per_provenance_counts(self) -> dict[str, int]:
        return dict(
            self._connection.execute(
                f"SELECT provenance, COUNT(*) FROM {self._table} "
                "GROUP BY provenance ORDER BY MIN(rowid)"
            )
        )


# --------------------------------------------------------------------- #
# Merged benchmark view
# --------------------------------------------------------------------- #
def _merge_pair_datasets(
    datasets: Sequence[tuple[int, PairDataset]], name: str
) -> PairDataset:
    merged = PairDataset(name=name)
    for shard, dataset in datasets:
        merged.pairs.extend(
            LabeledPair(
                pair_id=namespace_id(shard, pair.pair_id),
                offer_a=namespace_offer(pair.offer_a, shard),
                offer_b=namespace_offer(pair.offer_b, shard),
                label=pair.label,
                provenance=pair.provenance,
            )
            for pair in dataset.pairs
        )
    return merged


def _merge_multiclass(
    datasets: Sequence[tuple[int, MulticlassDataset]], name: str
) -> MulticlassDataset:
    offers: list[ProductOffer] = []
    labels: list[str] = []
    for shard, dataset in datasets:
        offers.extend(namespace_offers(dataset.offers, shard))
        labels.extend(namespace_id(shard, label) for label in dataset.labels)
    return MulticlassDataset(name=name, offers=offers, labels=labels)


def merge_benchmarks(
    benchmarks: Sequence[WDCProductsBenchmark],
    *,
    shard_ids: Sequence[int] | None = None,
) -> WDCProductsBenchmark:
    """Concatenate per-shard benchmarks into one namespaced benchmark.

    Every shard must cover the same variant keys (the session spawns all
    shards from one base config, so they do); datasets are concatenated in
    shard order with ``s<i>:``-prefixed offer/pair ids and multi-class
    labels, producing ``merged-``-named datasets an
    :class:`~repro.eval.runner.ExperimentRunner` trains on unchanged.

    ``shard_ids`` names the shard behind each benchmark (default: the
    positional ``0..n-1``).  A degraded session passes the *surviving*
    shard ids here, so namespaces in the merged view always refer to the
    plan's shard numbering, never to a compacted survivor index.
    """
    if not benchmarks:
        raise ValueError("merge_benchmarks needs at least one benchmark")
    if shard_ids is None:
        shard_ids = range(len(benchmarks))
    shard_ids = list(shard_ids)
    if len(shard_ids) != len(benchmarks):
        raise ValueError(
            f"shard_ids covers {len(shard_ids)} shards but "
            f"{len(benchmarks)} benchmarks were given"
        )
    reference = benchmarks[0]
    for other in benchmarks[1:]:
        for attribute in (
            "train_sets",
            "valid_sets",
            "test_sets",
            "multiclass_train",
            "multiclass_valid",
            "multiclass_test",
        ):
            if set(getattr(other, attribute)) != set(
                getattr(reference, attribute)
            ):
                raise ValueError(
                    f"shard benchmarks disagree on {attribute} variants; "
                    "merged views need homogeneous shard configs"
                )
    merged = WDCProductsBenchmark()
    for attribute in ("train_sets", "valid_sets", "test_sets"):
        target = getattr(merged, attribute)
        for key, dataset in getattr(reference, attribute).items():
            target[key] = _merge_pair_datasets(
                [
                    (shard, getattr(benchmark, attribute)[key])
                    for shard, benchmark in zip(shard_ids, benchmarks)
                ],
                name=f"merged-{dataset.name}",
            )
    for attribute in ("multiclass_train", "multiclass_valid", "multiclass_test"):
        target = getattr(merged, attribute)
        for key, dataset in getattr(reference, attribute).items():
            target[key] = _merge_multiclass(
                [
                    (shard, getattr(benchmark, attribute)[key])
                    for shard, benchmark in zip(shard_ids, benchmarks)
                ],
                name=f"merged-{dataset.name}",
            )
    return merged


def merge_corpora(
    corpora: Sequence[SyntheticCorpus],
    *,
    shard_ids: Sequence[int] | None = None,
) -> SyntheticCorpus:
    """One namespaced corpus over every shard's cleansed offers.

    Cluster metadata (category / family) carries over with namespaced
    cluster and family ids, so cluster-level consumers (pre-training
    cluster extraction, profiling) see the same structure they would on a
    single corpus.  ``shard_ids`` names the shard behind each corpus
    (default positional) — degraded sessions pass survivor ids.
    """
    if shard_ids is None:
        shard_ids = range(len(corpora))
    shard_ids = list(shard_ids)
    if len(shard_ids) != len(corpora):
        raise ValueError(
            f"shard_ids covers {len(shard_ids)} shards but "
            f"{len(corpora)} corpora were given"
        )
    merged = SyntheticCorpus()
    for shard, corpus in zip(shard_ids, corpora):
        merged.extend(namespace_offers(corpus.offers, shard))
        for cluster_id, (category, family_id) in corpus._cluster_meta.items():
            merged.register_cluster_meta(
                namespace_id(shard, cluster_id),
                category=category,
                family_id=namespace_id(shard, family_id),
            )
    return merged
