"""Merging per-shard and cross-shard results into one session view.

Two merges happen at the end of a sharded session:

* :func:`merge_candidate_sets` folds every shard's own blocking join and
  every cross-shard sweep join into one deduplicated
  :class:`MergedCandidates` set.  Each candidate carries directional
  provenance ``shard:<i>→<j>:<metric>`` — the pair first surfaced as a
  query from shard ``i`` against shard ``j``'s sub-universe under
  ``metric`` (``i == j`` for within-shard candidates, metric ``group``
  for ground-truth positives completed after the join).  Dedup runs on
  globally namespaced unordered offer-id keys, and sets are consumed in
  deterministic (shard, then shard-pair) order, so the merged set is
  byte-identical regardless of worker count or completion order.

* :func:`merge_benchmarks` / :func:`merge_corpora` build the merged
  benchmark view: per-variant pair/multi-class datasets concatenated
  across shards in shard order with namespaced offers, which a plain
  :class:`~repro.eval.runner.ExperimentRunner` consumes unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.blocking.candidates import BlockedPairSet
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.corpus.schema import ProductOffer, SyntheticCorpus
from repro.shard.namespace import namespace_id, namespace_offer, namespace_offers

__all__ = [
    "MergedCandidate",
    "MergedCandidates",
    "merge_candidate_sets",
    "merge_benchmarks",
    "merge_corpora",
]


@dataclass(frozen=True)
class MergedCandidate:
    """One candidate pair of the merged session-level set.

    ``offer_a``/``offer_b`` are globally namespaced; ``provenance`` is
    ``shard:<i>→<j>:<metric>`` with ``i`` the querying shard and ``j`` the
    shard whose sub-universe surfaced the candidate.
    """

    offer_a: ProductOffer
    offer_b: ProductOffer
    label: int
    score: float
    metric: str
    provenance: str


class MergedCandidates:
    """The session-wide deduplicated candidate set.

    Duck-type compatible with
    :class:`~repro.blocking.candidates.BlockedPairSet` where it matters
    (``pair_keys`` / ``k`` / ``metrics`` / ``__len__`` / ``summary`` /
    ``to_dataset``), so :func:`~repro.blocking.recall.blocking_recall`
    measures it against a (merged, namespaced) reference unchanged.
    """

    def __init__(
        self,
        pairs: list[MergedCandidate],
        *,
        k: int,
        metrics: tuple[str, ...],
        n_shards: int,
    ) -> None:
        self.pairs = pairs
        self.k = k
        self.metrics = metrics
        self.n_shards = n_shards

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[MergedCandidate]:
        return iter(self.pairs)

    def pair_keys(self) -> set[tuple[str, str]]:
        """Unordered (namespaced) offer-id keys, as ``LabeledPair.key()``."""
        keys: set[tuple[str, str]] = set()
        for pair in self.pairs:
            a, b = pair.offer_a.offer_id, pair.offer_b.offer_id
            keys.add((a, b) if a <= b else (b, a))
        return keys

    def to_dataset(self, name: str) -> PairDataset:
        """The merged candidates as one labeled ``PairDataset``."""
        dataset = PairDataset(name=name)
        dataset.pairs = [
            LabeledPair(
                pair_id=f"{name}-{position:07d}",
                offer_a=pair.offer_a,
                offer_b=pair.offer_b,
                label=pair.label,
                provenance=pair.provenance,
            )
            for position, pair in enumerate(self.pairs)
        ]
        return dataset

    def summary(self) -> dict[str, int]:
        positives = sum(pair.label for pair in self.pairs)
        cross = sum(
            1 for pair in self.pairs if not _is_within_shard(pair.provenance)
        )
        return {
            "all": len(self.pairs),
            "pos": positives,
            "neg": len(self.pairs) - positives,
            "cross_shard": cross,
        }

    def per_provenance_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pair in self.pairs:
            counts[pair.provenance] = counts.get(pair.provenance, 0) + 1
        return counts


def _is_within_shard(provenance: str) -> bool:
    _, _, tail = provenance.partition(":")
    direction, _, _ = tail.partition(":")
    source, _, target = direction.partition("→")
    return source == target


def provenance_tag(query_shard: int, candidate_shard: int, metric: str) -> str:
    """The canonical ``shard:<i>→<j>:<metric>`` provenance string."""
    return f"shard:{int(query_shard)}→{int(candidate_shard)}:{metric}"


def _blocked_to_merged(
    blocked: BlockedPairSet,
    shard_of_row: np.ndarray | int,
    seen: set[tuple[str, str]],
    out: list[MergedCandidate],
) -> None:
    """Append ``blocked``'s pairs (already namespaced) to the merge.

    ``shard_of_row`` maps engine rows to shard ids — a scalar for a
    within-shard set, the partition array for a cross-shard sweep.
    """
    offers = blocked.blocker.offers
    labels = blocked.blocker.group_labels
    if offers is None or labels is None:
        raise ValueError("merging needs blockers built with offers and labels")
    scalar_shard = shard_of_row if isinstance(shard_of_row, int) else None
    for pair in blocked.pairs:
        offer_a, offer_b = offers[pair.row_a], offers[pair.row_b]
        a, b = offer_a.offer_id, offer_b.offer_id
        key = (a, b) if a <= b else (b, a)
        if key in seen:
            continue
        seen.add(key)
        if scalar_shard is not None:
            query_shard = candidate_shard = scalar_shard
        else:
            query_shard = int(shard_of_row[pair.query_row])
            candidate = (
                pair.row_b if pair.row_a == pair.query_row else pair.row_a
            )
            candidate_shard = int(shard_of_row[candidate])
        out.append(
            MergedCandidate(
                offer_a=offer_a,
                offer_b=offer_b,
                label=int(labels[pair.row_a] == labels[pair.row_b]),
                score=pair.score,
                metric=pair.metric,
                provenance=provenance_tag(
                    query_shard, candidate_shard, pair.metric
                ),
            )
        )


def merge_candidate_sets(
    shard_sets: Sequence[tuple[int, BlockedPairSet]],
    cross_sets: Sequence[tuple[tuple[int, int], BlockedPairSet, np.ndarray]],
    *,
    k: int,
    metrics: Sequence[str],
    n_shards: int,
) -> MergedCandidates:
    """Fold per-shard joins and cross-shard sweeps into one candidate set.

    ``shard_sets`` holds ``(shard, blocked)`` per shard; ``cross_sets``
    holds ``((i, j), blocked, partition)`` per shard pair, with
    ``partition`` mapping the combined engine's rows to shard ids.  Both
    are consumed in the given order (the session passes shard order, then
    lexicographic pair order), and all blockers must carry namespaced
    offers/labels, so dedup keys are globally unique and the merge is
    deterministic by construction.
    """
    seen: set[tuple[str, str]] = set()
    pairs: list[MergedCandidate] = []
    for shard, blocked in shard_sets:
        _blocked_to_merged(blocked, int(shard), seen, pairs)
    for _, blocked, partition in cross_sets:
        _blocked_to_merged(blocked, partition, seen, pairs)
    return MergedCandidates(
        pairs, k=k, metrics=tuple(metrics), n_shards=n_shards
    )


# --------------------------------------------------------------------- #
# Merged benchmark view
# --------------------------------------------------------------------- #
def _merge_pair_datasets(
    datasets: Sequence[tuple[int, PairDataset]], name: str
) -> PairDataset:
    merged = PairDataset(name=name)
    for shard, dataset in datasets:
        merged.pairs.extend(
            LabeledPair(
                pair_id=namespace_id(shard, pair.pair_id),
                offer_a=namespace_offer(pair.offer_a, shard),
                offer_b=namespace_offer(pair.offer_b, shard),
                label=pair.label,
                provenance=pair.provenance,
            )
            for pair in dataset.pairs
        )
    return merged


def _merge_multiclass(
    datasets: Sequence[tuple[int, MulticlassDataset]], name: str
) -> MulticlassDataset:
    offers: list[ProductOffer] = []
    labels: list[str] = []
    for shard, dataset in datasets:
        offers.extend(namespace_offers(dataset.offers, shard))
        labels.extend(namespace_id(shard, label) for label in dataset.labels)
    return MulticlassDataset(name=name, offers=offers, labels=labels)


def merge_benchmarks(
    benchmarks: Sequence[WDCProductsBenchmark],
    *,
    shard_ids: Sequence[int] | None = None,
) -> WDCProductsBenchmark:
    """Concatenate per-shard benchmarks into one namespaced benchmark.

    Every shard must cover the same variant keys (the session spawns all
    shards from one base config, so they do); datasets are concatenated in
    shard order with ``s<i>:``-prefixed offer/pair ids and multi-class
    labels, producing ``merged-``-named datasets an
    :class:`~repro.eval.runner.ExperimentRunner` trains on unchanged.

    ``shard_ids`` names the shard behind each benchmark (default: the
    positional ``0..n-1``).  A degraded session passes the *surviving*
    shard ids here, so namespaces in the merged view always refer to the
    plan's shard numbering, never to a compacted survivor index.
    """
    if not benchmarks:
        raise ValueError("merge_benchmarks needs at least one benchmark")
    if shard_ids is None:
        shard_ids = range(len(benchmarks))
    shard_ids = list(shard_ids)
    if len(shard_ids) != len(benchmarks):
        raise ValueError(
            f"shard_ids covers {len(shard_ids)} shards but "
            f"{len(benchmarks)} benchmarks were given"
        )
    reference = benchmarks[0]
    for other in benchmarks[1:]:
        for attribute in (
            "train_sets",
            "valid_sets",
            "test_sets",
            "multiclass_train",
            "multiclass_valid",
            "multiclass_test",
        ):
            if set(getattr(other, attribute)) != set(
                getattr(reference, attribute)
            ):
                raise ValueError(
                    f"shard benchmarks disagree on {attribute} variants; "
                    "merged views need homogeneous shard configs"
                )
    merged = WDCProductsBenchmark()
    for attribute in ("train_sets", "valid_sets", "test_sets"):
        target = getattr(merged, attribute)
        for key, dataset in getattr(reference, attribute).items():
            target[key] = _merge_pair_datasets(
                [
                    (shard, getattr(benchmark, attribute)[key])
                    for shard, benchmark in zip(shard_ids, benchmarks)
                ],
                name=f"merged-{dataset.name}",
            )
    for attribute in ("multiclass_train", "multiclass_valid", "multiclass_test"):
        target = getattr(merged, attribute)
        for key, dataset in getattr(reference, attribute).items():
            target[key] = _merge_multiclass(
                [
                    (shard, getattr(benchmark, attribute)[key])
                    for shard, benchmark in zip(shard_ids, benchmarks)
                ],
                name=f"merged-{dataset.name}",
            )
    return merged


def merge_corpora(
    corpora: Sequence[SyntheticCorpus],
    *,
    shard_ids: Sequence[int] | None = None,
) -> SyntheticCorpus:
    """One namespaced corpus over every shard's cleansed offers.

    Cluster metadata (category / family) carries over with namespaced
    cluster and family ids, so cluster-level consumers (pre-training
    cluster extraction, profiling) see the same structure they would on a
    single corpus.  ``shard_ids`` names the shard behind each corpus
    (default positional) — degraded sessions pass survivor ids.
    """
    if shard_ids is None:
        shard_ids = range(len(corpora))
    shard_ids = list(shard_ids)
    if len(shard_ids) != len(corpora):
        raise ValueError(
            f"shard_ids covers {len(shard_ids)} shards but "
            f"{len(corpora)} corpora were given"
        )
    merged = SyntheticCorpus()
    for shard, corpus in zip(shard_ids, corpora):
        merged.extend(namespace_offers(corpus.offers, shard))
        for cluster_id, (category, family_id) in corpus._cluster_meta.items():
            merged.register_cluster_meta(
                namespace_id(shard, cluster_id),
                category=category,
                family_id=namespace_id(shard, family_id),
            )
    return merged
