"""Shard planning: independent per-shard build configs from one seed.

A :class:`ShardPlan` fixes *what* a sharded session builds before any work
starts: ``n_shards`` complete :class:`~repro.core.builder.BuildConfig`\\ s
whose seeds are derived through ``numpy.random.SeedSequence.spawn``.
Spawned children are keyed by their spawn index only, so shard ``i``'s
random streams depend on ``(session_seed, i)`` and nothing else — adding
shards, removing shards or building them in any order never perturbs the
corpora of the shards that stay.  This mirrors how the per-ratio builds
derive named streams from the master seed inside one corpus, lifted one
level up to whole corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.builder import BuildConfig
from repro.corpus.generator import CorpusConfig

__all__ = ["ShardPlan", "partition_corpus_config"]

_SEED_MODULUS = 2**32


def _share(total: int, parts: int, index: int) -> int:
    """``index``-th balanced share of ``total`` (remainder to low indexes)."""
    return total // parts + (1 if index < total % parts else 0)


def _ceil_div(total: int, parts: int) -> int:
    return -(-total // parts)


def partition_corpus_config(base: CorpusConfig, n_shards: int) -> CorpusConfig:
    """One shard's slice of ``base``'s corpus scale (ceil division).

    Family counts per category are divided by ``n_shards`` and rounded
    *up*, for two reasons: the shards' combined corpus is never smaller
    than the single corpus it replaces (the sharded-vs-single comparison
    cannot be won by quietly shrinking the workload), and every shard
    keeps the same per-category family floor — an exact split would hand
    some shard a remainder-starved corpus whose corner-case pool cannot
    sustain the shard's selection quota.  Dirtiness rates and per-product
    offer ranges are per-offer properties and stay untouched.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return replace(
        base,
        families_per_category_seen=_ceil_div(
            base.families_per_category_seen, n_shards
        ),
        families_per_category_unseen=_ceil_div(
            base.families_per_category_unseen, n_shards
        ),
    )


@dataclass(frozen=True)
class ShardPlan:
    """The immutable schedule of one sharded session.

    ``shard_configs[i]`` is the complete build config of shard ``i``;
    ``seed`` is the session seed the per-shard seeds were spawned from.
    Construct through :meth:`create` unless you need hand-rolled per-shard
    configs (heterogeneous scales are allowed — every shard is an
    independent unit of work).
    """

    shard_configs: tuple[BuildConfig, ...]
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.shard_configs:
            raise ValueError("a ShardPlan needs at least one shard")

    @property
    def n_shards(self) -> int:
        return len(self.shard_configs)

    @classmethod
    def create(
        cls,
        n_shards: int,
        *,
        base_config: BuildConfig | None = None,
        seed: int = 42,
        partition_scale: bool = True,
        ratio_threads: bool = False,
    ) -> "ShardPlan":
        """Spawn ``n_shards`` independent configs from ``base_config``.

        Shard ``i``'s build seed and corpus seed come from the ``i``-th
        ``SeedSequence.spawn`` child of ``seed`` — results are therefore
        independent of the shard count and of build ordering: shard 2 of a
        4-shard plan is byte-identical to shard 2 of a 16-shard plan at
        the same session seed.

        With ``partition_scale`` (default) each shard receives
        ``1/n_shards``-th of the base corpus families (ceil division, so
        the combined corpus covers the base) and its exact balanced share
        of ``n_products``, so the session's *total* work matches one
        single-corpus build of ``base_config``; pass
        ``partition_scale=False`` to give every shard the full base scale
        (n× the data, the scale-out configuration — which also scales the
        *corner-case pool*: a single corpus exhausts its selectable
        corner cases just past the default scale, while each shard
        selects locally and never does).

        ``ratio_threads`` defaults to off inside shards: the session's
        worker processes are the parallel unit, and nested per-shard
        thread pools only oversubscribe the cores the processes already
        occupy.  Per-shard results are byte-identical either way.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        base = base_config if base_config is not None else BuildConfig()
        children = np.random.SeedSequence(seed).spawn(n_shards)
        configs = []
        for shard, child in enumerate(children):
            build_seed, corpus_seed = (
                int(word) % _SEED_MODULUS
                for word in child.generate_state(2, dtype=np.uint64)
            )
            corpus = (
                partition_corpus_config(base.corpus, n_shards)
                if partition_scale
                else base.corpus
            )
            n_products = (
                _share(base.n_products, n_shards, shard)
                if partition_scale
                else base.n_products
            )
            configs.append(
                replace(
                    base,
                    seed=build_seed,
                    corpus=replace(corpus, seed=corpus_seed),
                    n_products=n_products,
                    parallel_ratio_builds=ratio_threads,
                )
            )
        return cls(shard_configs=tuple(configs), seed=seed)
