"""Supervised shard builds: timeouts, retry budgets, pool recovery.

The supervisor replaces the bare ``pool.map`` loop of early sharded
sessions with a failure-aware scheduler.  Every shard build attempt is
classified through the typed hierarchy in :mod:`repro.errors`, and the
response follows the classification:

* **transient** (:class:`~repro.errors.ShardCrashError` — a worker died
  and broke the pool — or :class:`~repro.errors.ShardTimeoutError`) —
  retry the *same* config.  Seeded builds are deterministic, so the
  retry reproduces byte-for-byte the build the fault interrupted; a
  session that recovers from a crash is indistinguishable from one that
  never crashed.
* **data exhaustion** (:class:`~repro.errors.CornerSelectionError` —
  the shard's corpus cannot sustain its corner-selection quota) — retry
  with *respawned seeds*: :func:`respawn_config` derives attempt ``n``'s
  build/corpus seeds from ``(session_seed, shard, n)`` and nothing else,
  so a reseeded retry is just as deterministic as the original plan
  (same session, same shard, same fault history ⇒ same corpus).
* **anything else** — presumed a code bug: never retried, surfaced
  immediately under ``failure_policy="raise"`` or recorded under
  ``"degrade"``.

Builds run in waves: all pending shards are submitted, results are
collected in shard order, failures schedule the next wave after one
exponential-backoff sleep (``backoff_base * 2**(attempt-1)``, capped).
The process executor enforces the wall-clock ``timeout`` preemptively —
a wave that times out or breaks its pool has the pool's workers
terminated and a fresh pool built for the next wave; serial and thread
executors cannot preempt a running build and classify post-hoc on the
attempt's measured elapsed time (the worker-side build clock, so queue
wait is never billed as build time).

With a :class:`~repro.shard.checkpoint.ShardCheckpointStore` attached,
verified checkpoints are loaded up front (those shards never enter the
build waves) and every freshly built shard is persisted on completion —
a killed session resumes by rebuilding only what is missing.
"""

from __future__ import annotations

import time
from pathlib import Path

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.builder import BuildArtifacts, BuildConfig, build_one_corpus
from repro.errors import (
    CornerSelectionError,
    ShardBuildError,
    ShardCrashError,
    ShardRetriesExhaustedError,
    ShardTimeoutError,
)
from repro.io.store import StoredShardHandle
from repro.shard.checkpoint import ShardCheckpointStore
from repro.shard.faults import FaultPlan
from repro.similarity.signatures import RowSignatures
from repro.utils.timer import Timer

__all__ = [
    "RetryPolicy",
    "AttemptRecord",
    "ShardOutcome",
    "SessionHealth",
    "ShardSupervisor",
    "respawn_config",
    "FAILURE_POLICIES",
]

_EXECUTORS = ("process", "thread", "serial")

FAILURE_POLICIES = ("raise", "degrade")

_SEED_MODULUS = 2**32


def respawn_config(
    base: BuildConfig, *, session_seed: int, shard: int, attempt: int
) -> BuildConfig:
    """``base`` with seeds respawned for retry ``attempt`` of ``shard``.

    The seeds are a pure function of ``(session_seed, shard, attempt)``
    — independent of what failed, when, or on which worker — so reseeded
    retries keep the session's determinism guarantee: two runs of the
    same plan hitting the same deterministic failure rebuild identical
    shards.  ``attempt`` is 1-based and must be ≥ 2 (attempt 1 is the
    plan's own spawned config).
    """
    if attempt < 2:
        raise ValueError(
            f"respawned configs start at attempt 2, got {attempt}"
        )
    entropy = np.random.SeedSequence([int(session_seed), int(shard), int(attempt)])
    build_seed, corpus_seed = (
        int(word) % _SEED_MODULUS
        for word in entropy.generate_state(2, dtype=np.uint64)
    )
    return replace(
        base, seed=build_seed, corpus=replace(base.corpus, seed=corpus_seed)
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry budget, backoff curve and wall-clock timeout."""

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def backoff(self, failed_attempt: int) -> float:
        """Sleep before the retry following ``failed_attempt`` (1-based)."""
        return min(
            self.backoff_base * (2 ** (failed_attempt - 1)), self.backoff_cap
        )


@dataclass(frozen=True)
class AttemptRecord:
    """One build attempt of one shard, as the health report records it."""

    attempt: int
    ok: bool
    error: str | None = None
    message: str | None = None
    elapsed: float = 0.0
    reseeded: bool = False

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "ok": self.ok,
            "error": self.error,
            "message": self.message,
            "elapsed_seconds": self.elapsed,
            "reseeded": self.reseeded,
        }


@dataclass
class ShardOutcome:
    """Everything the supervisor concluded about one planned shard."""

    shard: int
    artifacts: BuildArtifacts | None
    summary: RowSignatures | None
    attempts: tuple[AttemptRecord, ...]
    source: str  # "built" | "checkpoint" | "failed"
    config: BuildConfig
    failure: ShardBuildError | None = None

    @property
    def ok(self) -> bool:
        return self.artifacts is not None


@dataclass
class SessionHealth:
    """Per-shard status of a (possibly degraded) sharded session.

    The contract behind ``failure_policy="degrade"``: partial results are
    never silently presented as complete.  ``missing_pairs`` lists every
    shard pair absent from the cross-shard sweep because one side failed,
    and ``statuses`` / ``attempts`` record how each shard got here
    (``"built"``, ``"checkpoint"``, or ``"failed"`` with its full attempt
    ledger).
    """

    failure_policy: str
    planned_shards: int
    statuses: dict[int, str] = field(default_factory=dict)
    attempts: dict[int, tuple[AttemptRecord, ...]] = field(default_factory=dict)
    retries: int = 0
    checkpoints_loaded: int = 0
    failed_shards: tuple[int, ...] = ()
    surviving_shards: tuple[int, ...] = ()
    missing_pairs: tuple[tuple[int, int], ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.failed_shards)

    def as_dict(self) -> dict:
        return {
            "failure_policy": self.failure_policy,
            "planned_shards": self.planned_shards,
            "degraded": self.degraded,
            "statuses": {
                str(shard): status for shard, status in self.statuses.items()
            },
            "attempts": {
                str(shard): [record.as_dict() for record in records]
                for shard, records in self.attempts.items()
            },
            "retries": self.retries,
            "checkpoints_loaded": self.checkpoints_loaded,
            "failed_shards": list(self.failed_shards),
            "surviving_shards": list(self.surviving_shards),
            "missing_pairs": [list(pair) for pair in self.missing_pairs],
        }


def _build_one_shard(
    config: BuildConfig,
    *,
    shard: int,
    attempt: int,
    with_signatures: bool,
    fault_plan: FaultPlan | None = None,
) -> tuple[BuildArtifacts, RowSignatures | None, float]:
    """One shard build attempt plus (optionally) its signature summary.

    Module-level so process pools can pickle it.  Building the summary
    *here* means worker processes summarize the engines they just built;
    the parent only merges summaries.  Returns the worker-measured
    elapsed seconds as the third element — the clock supervisors judge
    post-hoc timeouts on, so queue wait never counts against the build.

    The fault hook fires before any pipeline stage: ``fault_plan`` is
    the explicit (picklable) plan, and when none is given the ambient
    ``REPRO_FAULT_PLAN`` environment plan applies — both test-only.
    """
    start = time.perf_counter()
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    if plan is not None:
        plan.inject(shard, attempt)
    store_backed = (
        config.store_dir is not None and config.store_backend == "sqlite"
    )
    if store_backed:
        # This worker owns the shard's store directory exclusively (the
        # supervisor never runs two attempts of one shard concurrently),
        # so a present writer.lock can only be stale debris from a
        # killed prior attempt — clear it or the rebuild refuses itself.
        stale_lock = Path(config.store_dir) / "writer.lock"
        try:
            stale_lock.unlink()
        except OSError:
            pass
    artifacts = build_one_corpus(config)
    summary = None
    if with_signatures and artifacts.engine is not None:
        summary = RowSignatures.from_engine(artifacts.engine)
    if store_backed:
        # Lazy-open contract: only the summary and a two-field handle
        # cross the pool boundary back to the parent — never the built
        # artifact graph (build_one_corpus already persisted the store).
        return (
            StoredShardHandle(str(config.store_dir), shard),
            summary,
            time.perf_counter() - start,
        )
    return artifacts, summary, time.perf_counter() - start


@dataclass
class _Pending:
    config: BuildConfig
    attempt: int
    reseeded: bool


class ShardSupervisor:
    """Schedules, supervises and (when needed) retries shard builds.

    ``build_fn`` defaults to :func:`_build_one_shard`; tests inject a
    lightweight module-level callable with the same signature to
    exercise supervision without paying for real corpus builds.
    """

    def __init__(
        self,
        configs,
        *,
        session_seed: int,
        executor: str = "process",
        max_workers: int | None = None,
        policy: RetryPolicy | None = None,
        failure_policy: str = "raise",
        fault_plan: FaultPlan | None = None,
        checkpoint_store: ShardCheckpointStore | None = None,
        with_signatures: bool = True,
        sleep=time.sleep,
        build_fn=None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, got "
                f"{failure_policy!r}"
            )
        self.configs = list(configs)
        self.session_seed = session_seed
        self.executor = executor
        self.max_workers = max_workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.failure_policy = failure_policy
        self.fault_plan = fault_plan
        self.checkpoint_store = checkpoint_store
        self.with_signatures = with_signatures
        self.sleep = sleep
        self.build_fn = build_fn if build_fn is not None else _build_one_shard
        self.retries = 0
        self.stage_timings: dict[str, float] = {}
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or len(self.configs)
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Terminate the pool's workers (hung or dead) and forget it."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            # A pool broken mid-shutdown has nothing left worth keeping.
            pass

    # ------------------------------------------------------------------ #
    # Attempt classification
    # ------------------------------------------------------------------ #
    def _classify(
        self, error: BaseException, *, shard: int, attempt: int, elapsed: float
    ) -> tuple[ShardBuildError, bool, bool]:
        """``(classified, retryable, reseed)`` for one failed attempt."""
        if isinstance(error, (ShardCrashError, ShardTimeoutError)):
            return error, True, False
        if isinstance(error, CornerSelectionError):
            wrapped = ShardBuildError(
                f"shard {shard} attempt {attempt} exhausted its corner-case "
                f"pool: {error}",
                shard=shard,
                attempt=attempt,
                stage="selection",
                elapsed=elapsed,
            )
            wrapped.__cause__ = error
            return wrapped, True, True
        if isinstance(error, BrokenProcessPool):
            crash = ShardCrashError(
                f"shard {shard} attempt {attempt}: worker process pool "
                "broke (a worker died — crash or OOM)",
                shard=shard,
                attempt=attempt,
                stage="build",
                elapsed=elapsed,
            )
            crash.__cause__ = error
            return crash, True, False
        wrapped = ShardBuildError(
            f"shard {shard} attempt {attempt} failed in the build pipeline: "
            f"{type(error).__name__}: {error}",
            shard=shard,
            attempt=attempt,
            stage="build",
            elapsed=elapsed,
        )
        wrapped.__cause__ = error if isinstance(error, Exception) else None
        return wrapped, False, False

    # ------------------------------------------------------------------ #
    # Wave execution
    # ------------------------------------------------------------------ #
    def _submit_args(self, shard: int, state: _Pending) -> tuple:
        return (
            state.config,
        ), dict(
            shard=shard,
            attempt=state.attempt,
            with_signatures=self.with_signatures,
            fault_plan=self.fault_plan,
        )

    def _serial_wave(self, wave, pending) -> dict:
        results = {}
        for shard in wave:
            args, kwargs = self._submit_args(shard, pending[shard])
            with Timer() as timer:
                try:
                    results[shard] = (True, self.build_fn(*args, **kwargs), 0.0)
                except Exception as error:
                    results[shard] = (False, error, timer.elapsed)
            if results[shard][0]:
                results[shard] = (
                    True,
                    results[shard][1],
                    results[shard][1][2],
                )
        return results

    def _thread_wave(self, wave, pending) -> dict:
        workers = self.max_workers or len(self.configs)
        results = {}
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for shard in wave:
                args, kwargs = self._submit_args(shard, pending[shard])
                futures[shard] = pool.submit(self.build_fn, *args, **kwargs)
            for shard in wave:
                with Timer() as timer:
                    try:
                        payload = futures[shard].result()
                        results[shard] = (True, payload, payload[2])
                    except Exception as error:
                        results[shard] = (False, error, timer.elapsed)
        return results

    def _process_wave(self, wave, pending) -> dict:
        results = {}
        pool = self._ensure_pool()
        futures = {}
        for shard in wave:
            args, kwargs = self._submit_args(shard, pending[shard])
            futures[shard] = pool.submit(self.build_fn, *args, **kwargs)
        start = time.monotonic()
        pool_tainted = False
        for shard in wave:
            state = pending[shard]
            try:
                if self.policy.timeout is None:
                    payload = futures[shard].result()
                else:
                    remaining = max(
                        0.0, start + self.policy.timeout - time.monotonic()
                    )
                    payload = futures[shard].result(timeout=remaining)
                results[shard] = (True, payload, payload[2])
            except FuturesTimeoutError:
                pool_tainted = True
                results[shard] = (
                    False,
                    ShardTimeoutError(
                        f"shard {shard} attempt {state.attempt} exceeded the "
                        f"{self.policy.timeout}s wall-clock budget",
                        shard=shard,
                        attempt=state.attempt,
                        stage="build",
                        elapsed=self.policy.timeout,
                    ),
                    self.policy.timeout or 0.0,
                )
            except BrokenProcessPool as error:
                pool_tainted = True
                results[shard] = (False, error, time.monotonic() - start)
            except Exception as error:
                results[shard] = (False, error, time.monotonic() - start)
        if pool_tainted:
            # Hung workers occupy slots and dead pools reject submits —
            # either way the next wave needs a fresh pool.
            self._kill_pool()
        return results

    def _run_wave(self, wave, pending) -> dict:
        if self.executor == "process" and len(self.configs) > 1:
            return self._process_wave(wave, pending)
        if self.executor == "thread" and len(self.configs) > 1:
            return self._thread_wave(wave, pending)
        return self._serial_wave(wave, pending)

    # ------------------------------------------------------------------ #
    def run(self) -> list[ShardOutcome]:
        """Supervise every planned shard to an outcome, in shard order.

        Raises the final :class:`~repro.errors.ShardBuildError` of the
        first (lowest-index) failed shard under ``failure_policy="raise"``;
        under ``"degrade"`` failed shards come back as ``failed``
        outcomes — unless *every* shard failed, which always raises (a
        session with zero surviving shards has no degraded mode to offer).
        """
        outcomes: dict[int, ShardOutcome] = {}
        attempts: dict[int, list[AttemptRecord]] = {
            shard: [] for shard in range(len(self.configs))
        }

        load_seconds = 0.0
        save_seconds = 0.0
        pending: dict[int, _Pending] = {}
        for shard, config in enumerate(self.configs):
            if self.checkpoint_store is not None:
                with Timer() as timer:
                    loaded = self.checkpoint_store.load(
                        shard, base_config=config
                    )
                load_seconds += timer.elapsed
                if loaded is not None:
                    artifacts, summary, manifest = loaded
                    if self.with_signatures and summary is None:
                        # Checkpoint written by an exhaustive-mode session;
                        # the sweep fills missing summaries on demand.
                        pass
                    outcomes[shard] = ShardOutcome(
                        shard=shard,
                        artifacts=artifacts,
                        summary=summary,
                        attempts=(),
                        source="checkpoint",
                        config=config,
                    )
                    continue
            pending[shard] = _Pending(config=config, attempt=1, reseeded=False)

        try:
            while pending:
                wave = sorted(pending)
                results = self._run_wave(wave, pending)
                retry_sleep = 0.0
                for shard in wave:
                    ok, payload, elapsed = results[shard]
                    state = pending[shard]
                    error: BaseException | None = None
                    if ok:
                        artifacts, summary, build_elapsed = payload
                        if isinstance(artifacts, StoredShardHandle):
                            # Adopt the worker's store by path: the open
                            # verifies the manifest + streamed sha256s,
                            # and a failure here is a code bug (the
                            # worker just reported success), so strict.
                            artifacts = artifacts.open(strict=True)
                        if (
                            self.policy.timeout is not None
                            and build_elapsed > self.policy.timeout
                        ):
                            # Post-hoc enforcement for executors that
                            # cannot preempt (and late process results).
                            error = ShardTimeoutError(
                                f"shard {shard} attempt {state.attempt} "
                                f"took {build_elapsed:.2f}s, over the "
                                f"{self.policy.timeout}s budget",
                                shard=shard,
                                attempt=state.attempt,
                                stage="build",
                                elapsed=build_elapsed,
                            )
                            elapsed = build_elapsed
                        else:
                            attempts[shard].append(
                                AttemptRecord(
                                    attempt=state.attempt,
                                    ok=True,
                                    elapsed=build_elapsed,
                                    reseeded=state.reseeded,
                                )
                            )
                            outcomes[shard] = ShardOutcome(
                                shard=shard,
                                artifacts=artifacts,
                                summary=summary,
                                attempts=tuple(attempts[shard]),
                                source="built",
                                config=state.config,
                            )
                            del pending[shard]
                            if self.checkpoint_store is not None:
                                with Timer() as timer:
                                    self.checkpoint_store.save(
                                        shard,
                                        artifacts,
                                        summary,
                                        base_config=self.configs[shard],
                                        built_config=state.config,
                                        attempt=state.attempt,
                                        elapsed=build_elapsed,
                                    )
                                save_seconds += timer.elapsed
                            continue
                    else:
                        error = payload

                    classified, retryable, reseed = self._classify(
                        error, shard=shard, attempt=state.attempt,
                        elapsed=elapsed,
                    )
                    attempts[shard].append(
                        AttemptRecord(
                            attempt=state.attempt,
                            ok=False,
                            error=type(
                                classified.__cause__ or classified
                            ).__name__,
                            message=str(classified),
                            elapsed=elapsed,
                            reseeded=state.reseeded,
                        )
                    )
                    if retryable and state.attempt < self.policy.max_attempts:
                        self.retries += 1
                        next_attempt = state.attempt + 1
                        next_config = (
                            respawn_config(
                                self.configs[shard],
                                session_seed=self.session_seed,
                                shard=shard,
                                attempt=next_attempt,
                            )
                            if reseed
                            else state.config
                        )
                        pending[shard] = _Pending(
                            config=next_config,
                            attempt=next_attempt,
                            reseeded=state.reseeded or reseed,
                        )
                        retry_sleep = max(
                            retry_sleep, self.policy.backoff(state.attempt)
                        )
                        continue

                    # Out of budget (or not retryable): final failure.
                    del pending[shard]
                    if retryable:
                        final: ShardBuildError = ShardRetriesExhaustedError(
                            f"shard {shard} failed all "
                            f"{self.policy.max_attempts} attempts; last "
                            f"error: {classified}",
                            shard=shard,
                            attempt=state.attempt,
                            stage=classified.stage,
                            elapsed=elapsed,
                        )
                        final.__cause__ = classified
                    else:
                        final = classified
                    outcomes[shard] = ShardOutcome(
                        shard=shard,
                        artifacts=None,
                        summary=None,
                        attempts=tuple(attempts[shard]),
                        source="failed",
                        config=state.config,
                        failure=final,
                    )
                    if self.failure_policy == "raise":
                        raise final
                if pending and retry_sleep > 0:
                    # One backoff per wave: concurrent shards share the
                    # longest scheduled backoff instead of stacking them.
                    self.sleep(retry_sleep)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
            self.stage_timings["shard:retries"] = float(self.retries)
            if self.checkpoint_store is not None:
                self.stage_timings["checkpoint:load"] = load_seconds
                self.stage_timings["checkpoint:save"] = save_seconds

        ordered = [outcomes[shard] for shard in sorted(outcomes)]
        if not any(outcome.ok for outcome in ordered):
            failures = [
                outcome.failure for outcome in ordered if outcome.failure
            ]
            error = ShardBuildError(
                f"all {len(self.configs)} shards failed — no surviving "
                "shards to degrade to"
            )
            error.__cause__ = failures[0] if failures else None
            raise error
        return ordered

    # ------------------------------------------------------------------ #
    def health(
        self,
        outcomes: list[ShardOutcome],
        *,
        missing_pairs: tuple[tuple[int, int], ...] = (),
    ) -> SessionHealth:
        """The :class:`SessionHealth` report of one completed run."""
        return SessionHealth(
            failure_policy=self.failure_policy,
            planned_shards=len(self.configs),
            statuses={
                outcome.shard: outcome.source for outcome in outcomes
            },
            attempts={
                outcome.shard: outcome.attempts for outcome in outcomes
            },
            retries=self.retries,
            checkpoints_loaded=sum(
                1 for outcome in outcomes if outcome.source == "checkpoint"
            ),
            failed_shards=tuple(
                outcome.shard for outcome in outcomes if not outcome.ok
            ),
            surviving_shards=tuple(
                outcome.shard for outcome in outcomes if outcome.ok
            ),
            missing_pairs=missing_pairs,
        )
