"""Per-shard checkpoints: crash-resume without rebuilding finished work.

A :class:`ShardCheckpointStore` persists every completed shard of a
sharded session under one session directory::

    <root>/
      shard-0000/
        manifest.json     # config fingerprints, seeds, payload sha256
        artifacts.pkl     # pickled (BuildArtifacts, RowSignatures | None)
      shard-0001/
        ...

The manifest is the commit record: the payload is written first (to a
temp file, then atomically renamed), the manifest last, so a session
killed mid-write leaves either no manifest (checkpoint ignored) or a
complete, verifiable pair.  :meth:`ShardCheckpointStore.load` verifies
both the payload's sha256 and the shard's *base config fingerprint* —
the fingerprint of the config the plan assigned the shard, not of the
config that ultimately built it.  The distinction matters for retried
shards: a corner-selection retry respawns the shard's seeds, so the
config that produced the artifacts differs from the planned one, but the
respawn chain is a deterministic function of ``(session_seed, shard,
attempt)`` — the checkpoint is still *the* canonical outcome of the
planned shard and resuming must accept it.  Both fingerprints are
recorded (``base_fingerprint`` gates the load, ``config_fingerprint``
documents what actually built the payload).

A checkpoint that fails any verification is treated as missing (the
shard is rebuilt) unless ``strict=True``, which raises
:class:`~repro.errors.CheckpointError` naming what mismatched — the mode
for callers that need to *know* a resume will be exact.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.builder import BuildConfig
from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ShardCheckpointStore",
    "config_fingerprint",
]

CHECKPOINT_SCHEMA = 1

_MANIFEST = "manifest.json"
_PAYLOAD = "artifacts.pkl"


def _jsonable(value: Any) -> Any:
    """A stable, JSON-serializable projection of a config value tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def config_fingerprint(config: BuildConfig) -> str:
    """sha256 over the config's stable JSON projection.

    Two configs fingerprint equally iff every field (nested dataclasses,
    enums and tuples included) is equal — the identity a checkpoint is
    keyed on.
    """
    payload = json.dumps(_jsonable(config), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


class ShardCheckpointStore:
    """Directory-backed store of completed shard artifacts.

    ``clock`` supplies the manifest's ``created_at`` wall-clock stamp
    (documentation only — it is deliberately outside the payload sha256
    and the config fingerprints, so two runs of the same plan produce
    byte-identical *verifiable* state and merely different timestamps).
    Injectable so tests can pin it.
    """

    def __init__(
        self, root: Path | str, *, clock: Callable[[], float] | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = time.time if clock is None else clock

    def shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:04d}"

    def manifest_path(self, shard: int) -> Path:
        return self.shard_dir(shard) / _MANIFEST

    def payload_path(self, shard: int) -> Path:
        return self.shard_dir(shard) / _PAYLOAD

    # ------------------------------------------------------------------ #
    def save(
        self,
        shard: int,
        artifacts,
        summary,
        *,
        base_config: BuildConfig,
        built_config: BuildConfig | None = None,
        attempt: int = 1,
        elapsed: float = 0.0,
    ) -> Path:
        """Persist one completed shard; returns the manifest path.

        ``base_config`` is the plan's config for this shard (the resume
        key); ``built_config`` the config that actually produced the
        artifacts (defaults to ``base_config`` — differs only after a
        reseeded retry).
        """
        built = built_config if built_config is not None else base_config
        directory = self.shard_dir(shard)
        directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            (artifacts, summary), protocol=pickle.HIGHEST_PROTOCOL
        )
        payload_path = self.payload_path(shard)
        temp_path = payload_path.with_suffix(".pkl.tmp")
        temp_path.write_bytes(payload)
        os.replace(temp_path, payload_path)
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "shard": shard,
            "base_fingerprint": config_fingerprint(base_config),
            "config_fingerprint": config_fingerprint(built),
            "build_seed": built.seed,
            "corpus_seed": built.corpus.seed,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "attempt": attempt,
            "elapsed_seconds": elapsed,
            "created_at": self._clock(),
        }
        manifest_path = self.manifest_path(shard)
        temp_manifest = manifest_path.with_suffix(".json.tmp")
        temp_manifest.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(temp_manifest, manifest_path)
        return manifest_path

    # ------------------------------------------------------------------ #
    def _verify(
        self, shard: int, base_config: BuildConfig
    ) -> tuple[dict, bytes] | str:
        """The verified (manifest, payload) pair, or a rejection reason."""
        manifest_path = self.manifest_path(shard)
        if not manifest_path.exists():
            return "no manifest"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return "manifest unreadable or truncated"
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            return (
                f"manifest schema {manifest.get('schema')!r} != "
                f"{CHECKPOINT_SCHEMA}"
            )
        expected = config_fingerprint(base_config)
        if manifest.get("base_fingerprint") != expected:
            return (
                "base config fingerprint mismatch (checkpoint belongs to "
                "a different plan/config)"
            )
        try:
            payload = self.payload_path(shard).read_bytes()
        except OSError:
            return "payload missing"
        if hashlib.sha256(payload).hexdigest() != manifest.get(
            "payload_sha256"
        ):
            return "payload sha256 mismatch (truncated or corrupt)"
        return manifest, payload

    def load(
        self,
        shard: int,
        *,
        base_config: BuildConfig,
        strict: bool = False,
    ):
        """``(artifacts, summary, manifest)`` or ``None``.

        ``None`` means "no usable checkpoint — rebuild the shard": the
        checkpoint is absent, truncated, from another config, or its
        payload fails the sha256.  With ``strict=True`` a present-but-
        unverifiable checkpoint raises :class:`CheckpointError` instead
        of silently rebuilding.
        """
        verified = self._verify(shard, base_config)
        if isinstance(verified, str):
            if strict and verified != "no manifest":
                raise CheckpointError(
                    f"shard {shard} checkpoint at {self.shard_dir(shard)} "
                    f"failed verification: {verified}"
                )
            return None
        manifest, payload = verified
        artifacts, summary = pickle.loads(payload)
        return artifacts, summary, manifest

    def completed_shards(self, configs) -> list[int]:
        """Shards of ``configs`` with a verifiable checkpoint on disk."""
        return [
            shard
            for shard, config in enumerate(configs)
            if not isinstance(self._verify(shard, config), str)
        ]
