"""Per-shard checkpoints: crash-resume without rebuilding finished work.

A :class:`ShardCheckpointStore` persists every completed shard of a
sharded session under one session directory, in one of two backends:

``backend="pickle"`` (historical)::

    <root>/
      shard-0000/
        manifest.json     # config fingerprints, seeds, payload sha256
        artifacts.pkl     # pickled (BuildArtifacts, RowSignatures | None)

``backend="sqlite"`` (out-of-core)::

    <root>/
      shard-0000/
        manifest.json     # commit point of the artifact store
        shard.db          # queryable schema (see repro.io.store)
        *.npy             # mmap sidecars: incidence matrix, signatures

Both share the same commit protocol: payload files are written first
(temp file, then atomic rename), the manifest last, so a session killed
mid-write leaves either no manifest (checkpoint ignored) or a complete,
verifiable state.  Verification is *streamed* — the payload's sha256 is
hashed in fixed-size chunks against the manifest record before anything
is deserialized, so verifying a multi-GB shard never doubles peak RSS.

:meth:`ShardCheckpointStore.load` verifies the shard's *base config
fingerprint* — the fingerprint of the config the plan assigned the
shard, not of the config that ultimately built it.  The distinction
matters for retried shards: a corner-selection retry respawns the
shard's seeds, so the config that produced the artifacts differs from
the planned one, but the respawn chain is a deterministic function of
``(session_seed, shard, attempt)`` — the checkpoint is still *the*
canonical outcome of the planned shard and resuming must accept it.
Both fingerprints are recorded (``base_fingerprint`` gates the load,
``config_fingerprint`` documents what actually built the payload).

A checkpoint that fails any verification is treated as missing (the
shard is rebuilt) unless ``strict=True``, which raises
:class:`~repro.errors.CheckpointError` (pickle backend) or
:class:`~repro.errors.StoreError` (sqlite backend) naming what
mismatched — the mode for callers that need to *know* a resume will be
exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Callable

from repro.core.builder import BuildConfig
from repro.errors import CheckpointError, StoreError
from repro.io.store import (
    StoredShard,
    _jsonable,  # noqa: F401  (re-exported for backward compatibility)
    amend_manifest,
    config_fingerprint,
    stream_sha256,
    verify_store,
    write_store,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_BACKENDS",
    "ShardCheckpointStore",
    "config_fingerprint",
]

CHECKPOINT_SCHEMA = 1
CHECKPOINT_BACKENDS = ("pickle", "sqlite")

_MANIFEST = "manifest.json"
_PAYLOAD = "artifacts.pkl"


class ShardCheckpointStore:
    """Directory-backed store of completed shard artifacts.

    ``backend`` selects the payload format: ``"pickle"`` persists the
    whole ``(artifacts, summary)`` object graph, ``"sqlite"`` delegates
    to the queryable artifact store of :mod:`repro.io.store` (whose
    shards workers can open lazily by path).  ``clock`` supplies the
    manifest's ``created_at`` wall-clock stamp (documentation only — it
    is deliberately outside the payload sha256 and the config
    fingerprints, so two runs of the same plan produce byte-identical
    *verifiable* state and merely different timestamps).  Injectable so
    tests can pin it.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        clock: Callable[[], float] | None = None,
        backend: str = "pickle",
    ) -> None:
        if backend not in CHECKPOINT_BACKENDS:
            raise ValueError(
                f"backend must be one of {CHECKPOINT_BACKENDS}, got "
                f"{backend!r}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.backend = backend
        self._clock = time.time if clock is None else clock

    def shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:04d}"

    def manifest_path(self, shard: int) -> Path:
        return self.shard_dir(shard) / _MANIFEST

    def payload_path(self, shard: int) -> Path:
        return self.shard_dir(shard) / _PAYLOAD

    # ------------------------------------------------------------------ #
    def save(
        self,
        shard: int,
        artifacts,
        summary,
        *,
        base_config: BuildConfig,
        built_config: BuildConfig | None = None,
        attempt: int = 1,
        elapsed: float = 0.0,
    ) -> Path:
        """Persist one completed shard; returns the manifest path.

        ``base_config`` is the plan's config for this shard (the resume
        key); ``built_config`` the config that actually produced the
        artifacts (defaults to ``base_config`` — differs only after a
        reseeded retry).

        Under the sqlite backend an *adopted* :class:`StoredShard` (a
        worker already wrote the store into this shard's directory) is
        committed by amending its manifest with the plan's resume key —
        no payload is rewritten; anything else is written out as a fresh
        store.
        """
        built = built_config if built_config is not None else base_config
        if self.backend == "sqlite":
            return self._save_sqlite(
                shard,
                artifacts,
                base_config=base_config,
                attempt=attempt,
                elapsed=elapsed,
            )
        directory = self.shard_dir(shard)
        directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            (artifacts, summary), protocol=pickle.HIGHEST_PROTOCOL
        )
        payload_path = self.payload_path(shard)
        temp_path = payload_path.with_suffix(".pkl.tmp")
        temp_path.write_bytes(payload)
        os.replace(temp_path, payload_path)
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "shard": shard,
            "base_fingerprint": config_fingerprint(base_config),
            "config_fingerprint": config_fingerprint(built),
            "build_seed": built.seed,
            "corpus_seed": built.corpus.seed,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "attempt": attempt,
            "elapsed_seconds": elapsed,
            "created_at": self._clock(),
        }
        manifest_path = self.manifest_path(shard)
        temp_manifest = manifest_path.with_suffix(".json.tmp")
        temp_manifest.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(temp_manifest, manifest_path)
        return manifest_path

    def _save_sqlite(
        self,
        shard: int,
        artifacts,
        *,
        base_config: BuildConfig,
        attempt: int,
        elapsed: float,
    ) -> Path:
        directory = self.shard_dir(shard)
        base_fingerprint = config_fingerprint(base_config)
        if isinstance(artifacts, StoredShard):
            if artifacts.directory.resolve() != directory.resolve():
                raise StoreError(
                    f"cannot adopt shard {shard} store at "
                    f"{artifacts.directory}: checkpoint expects it at "
                    f"{directory}"
                )
            amend_manifest(
                directory,
                shard=shard,
                base_fingerprint=base_fingerprint,
                attempt=attempt,
                elapsed=elapsed,
            )
            return directory / _MANIFEST
        return write_store(
            directory,
            artifacts,
            shard=shard,
            base_fingerprint=base_fingerprint,
            attempt=attempt,
            elapsed=elapsed,
            clock=self._clock,
        )

    # ------------------------------------------------------------------ #
    def _verify(
        self, shard: int, base_config: BuildConfig
    ) -> tuple[dict, Path] | str:
        """The verified (manifest, payload path) pair, or a rejection reason.

        The payload's sha256 is streamed in chunks — verification never
        loads the payload whole; :meth:`load` deserializes from the
        returned path only after the hash matches.
        """
        manifest_path = self.manifest_path(shard)
        if not manifest_path.exists():
            return "no manifest"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return "manifest unreadable or truncated"
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            return (
                f"manifest schema {manifest.get('schema')!r} != "
                f"{CHECKPOINT_SCHEMA}"
            )
        expected = config_fingerprint(base_config)
        if manifest.get("base_fingerprint") != expected:
            return (
                "base config fingerprint mismatch (checkpoint belongs to "
                "a different plan/config)"
            )
        payload_path = self.payload_path(shard)
        digest = stream_sha256(payload_path)
        if digest is None:
            return "payload missing"
        if digest != manifest.get("payload_sha256"):
            return "payload sha256 mismatch (truncated or corrupt)"
        return manifest, payload_path

    def load(
        self,
        shard: int,
        *,
        base_config: BuildConfig,
        strict: bool = False,
    ):
        """``(artifacts, summary, manifest)`` or ``None``.

        ``None`` means "no usable checkpoint — rebuild the shard": the
        checkpoint is absent, truncated, from another config, or its
        payload fails the sha256.  With ``strict=True`` a present-but-
        unverifiable checkpoint raises (:class:`CheckpointError` for the
        pickle backend, :class:`~repro.errors.StoreError` for sqlite)
        instead of silently rebuilding.

        The sqlite backend returns a lazily-opened
        :class:`~repro.io.store.StoredShard` as ``artifacts`` and ``None``
        as the summary — signature summaries are rebuilt on demand off
        the store's mmap engine by the sweep.
        """
        if self.backend == "sqlite":
            verified = verify_store(
                self.shard_dir(shard),
                base_fingerprint=config_fingerprint(base_config),
            )
            if isinstance(verified, str):
                if strict and verified != "no manifest":
                    raise StoreError(
                        f"shard {shard} store at {self.shard_dir(shard)} "
                        f"failed verification: {verified}"
                    )
                return None
            return StoredShard(self.shard_dir(shard), verified), None, verified
        verified = self._verify(shard, base_config)
        if isinstance(verified, str):
            if strict and verified != "no manifest":
                raise CheckpointError(
                    f"shard {shard} checkpoint at {self.shard_dir(shard)} "
                    f"failed verification: {verified}"
                )
            return None
        manifest, payload_path = verified
        with open(payload_path, "rb") as handle:
            artifacts, summary = pickle.load(handle)
        return artifacts, summary, manifest

    def completed_shards(self, configs) -> list[int]:
        """Shards of ``configs`` with a verifiable checkpoint on disk."""
        if self.backend == "sqlite":
            return [
                shard
                for shard, config in enumerate(configs)
                if not isinstance(
                    verify_store(
                        self.shard_dir(shard),
                        base_fingerprint=config_fingerprint(config),
                    ),
                    str,
                )
            ]
        return [
            shard
            for shard, config in enumerate(configs)
            if not isinstance(self._verify(shard, config), str)
        ]
