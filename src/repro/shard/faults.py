"""Deterministic fault injection for the shard supervisor's test paths.

A :class:`FaultPlan` is a declarative list of faults keyed on
``(shard, attempt)`` — *crash the worker of shard 1 on attempt 1*,
*sleep shard 2 past its timeout on attempt 1*, *raise a corner-selection
failure* — threaded through
:func:`~repro.shard.supervisor._build_one_shard` so every recovery path
of the supervisor (pool rebuild, same-config retry, reseeded retry,
degraded continuation) is reachable deterministically in CI instead of
waiting for a real OOM.

Plans travel two ways: passed explicitly (picklable, so they reach
worker processes through the pool), or ambient through the
``REPRO_FAULT_PLAN`` environment variable as JSON — worker processes
inherit the environment, which lets an external harness (the CI chaos
smoke step) inject faults without touching any call site:

    REPRO_FAULT_PLAN='[{"shard": 1, "attempt": 1, "kind": "crash"}]'

Faults fire *at most once* per (shard, attempt) key by construction —
the supervisor passes the current attempt number, so a retried shard
simply no longer matches the spec and builds honestly.  Injection is
test-only machinery: no production path constructs a plan.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass

from repro.errors import CornerSelectionError, ShardCrashError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "FAULT_PLAN_ENV"]

FAULT_KINDS = ("crash", "sleep", "corner_selection")

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

# Exit code of an injected worker crash; distinctive on purpose so a CI
# log showing a worker dying with it is immediately attributable.
_CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens to ``shard`` on ``attempt``.

    ``kind`` is one of :data:`FAULT_KINDS`:

    * ``"crash"`` — kill the worker process outright (``os._exit``), so
      the parent sees a genuine ``BrokenProcessPool``.  Under the serial
      or thread executor (where dying would take the session down) a
      :class:`~repro.errors.ShardCrashError` is raised instead — the
      same transient classification through the same supervisor path.
    * ``"sleep"`` — sleep ``seconds`` before building, driving the
      attempt past a supervisor timeout.
    * ``"corner_selection"`` — raise a
      :class:`~repro.errors.CornerSelectionError`, the deterministic
      data-exhaustion failure whose retry must respawn the shard seeds.
    """

    shard: int
    attempt: int
    kind: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.attempt < 1:
            raise ValueError(
                f"fault attempts are 1-based, got {self.attempt}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of injected faults."""

    faults: tuple[FaultSpec, ...] = ()

    def spec_for(self, shard: int, attempt: int) -> FaultSpec | None:
        """The first fault registered for ``(shard, attempt)``, if any."""
        for spec in self.faults:
            if spec.shard == shard and spec.attempt == attempt:
                return spec
        return None

    def inject(self, shard: int, attempt: int, *, sleep=time.sleep) -> None:
        """Fire the fault registered for ``(shard, attempt)``, if any.

        Called at the top of a shard build attempt, before any pipeline
        stage runs.  ``sleep`` is injectable so unit tests can assert
        sleep faults without waiting.
        """
        spec = self.spec_for(shard, attempt)
        if spec is None:
            return
        if spec.kind == "sleep":
            sleep(spec.seconds)
        elif spec.kind == "crash":
            if multiprocessing.parent_process() is not None:
                os._exit(_CRASH_EXIT_CODE)
            raise ShardCrashError(
                f"injected crash of shard {shard} on attempt {attempt}",
                shard=shard,
                attempt=attempt,
                stage="build",
            )
        elif spec.kind == "corner_selection":
            raise CornerSelectionError(
                f"injected corner-selection failure of shard {shard} on "
                f"attempt {attempt}: needed 800, found 795",
                needed=800,
                found=795,
                part="seen",
                corner_case_ratio=0.5,
                kind="corner",
            )

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        return json.dumps([asdict(spec) for spec in self.faults])

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        entries = json.loads(payload)
        if not isinstance(entries, list):
            raise ValueError(
                "a JSON fault plan must be a list of fault objects, got "
                f"{type(entries).__name__}"
            )
        return cls(faults=tuple(FaultSpec(**entry) for entry in entries))

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The ambient :data:`FAULT_PLAN_ENV` plan, or ``None``.

        ``environ`` binds *at call time*, not import time: a default of
        ``environ=os.environ`` in the signature would capture the mapping
        object that existed when this module was imported, so a test
        replacing ``os.environ`` wholesale (``monkeypatch.setattr``)
        would be silently ignored.
        """
        if environ is None:
            environ = os.environ  # repro-lint: disable=RNG004 -- from_env is the documented ambient entry point for the CI chaos harness
        payload = environ.get(FAULT_PLAN_ENV)
        if not payload:
            return None
        return cls.from_json(payload)
