"""Global namespacing of per-shard identifiers.

Every shard generates its corpus from the same catalog, so raw offer ids
(``off-0000001``) and cluster ids (``seen-...``) collide across shards
while naming *different* products.  As soon as rows from several shards
meet in one universe — the cross-shard blocking sweep, the merged
benchmark view — identifiers must become globally unique: ``s<shard>:``
prefixes make equality checks (pair dedup, cluster labeling, group
exclusion) correct across the whole session, and a uniform per-shard
prefix preserves the lexicographic order within each shard, so sorted
iteration stays deterministic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.corpus.schema import ProductOffer

__all__ = [
    "shard_tag",
    "namespace_id",
    "namespace_offer",
    "namespace_offers",
    "namespace_pair_dataset",
    "namespace_multiclass_dataset",
]


def shard_tag(shard: int) -> str:
    """The canonical prefix of shard ``shard``: ``s0``, ``s1``, …"""
    return f"s{int(shard)}"


def namespace_id(shard: int, raw_id: str) -> str:
    return f"{shard_tag(shard)}:{raw_id}"


def namespace_offer(offer: ProductOffer, shard: int) -> ProductOffer:
    """The offer with globally unique ``offer_id``/cluster ids."""
    return replace(
        offer,
        offer_id=namespace_id(shard, offer.offer_id),
        cluster_id=namespace_id(shard, offer.cluster_id),
        true_cluster_id=(
            None
            if offer.true_cluster_id is None
            else namespace_id(shard, offer.true_cluster_id)
        ),
    )


def namespace_offers(
    offers: Sequence[ProductOffer], shard: int
) -> list[ProductOffer]:
    return [namespace_offer(offer, shard) for offer in offers]


def namespace_pair_dataset(
    dataset: PairDataset, shard: int, *, name: str | None = None
) -> PairDataset:
    """The dataset with namespaced pair ids and offers (labels unchanged)."""
    tag = shard_tag(shard)
    renamed = PairDataset(name=name if name is not None else dataset.name)
    renamed.pairs = [
        LabeledPair(
            pair_id=f"{tag}:{pair.pair_id}",
            offer_a=namespace_offer(pair.offer_a, shard),
            offer_b=namespace_offer(pair.offer_b, shard),
            label=pair.label,
            provenance=pair.provenance,
        )
        for pair in dataset.pairs
    ]
    return renamed


def namespace_multiclass_dataset(
    dataset: MulticlassDataset, shard: int, *, name: str | None = None
) -> MulticlassDataset:
    """The dataset with namespaced offers and (cluster-id) labels."""
    return MulticlassDataset(
        name=name if name is not None else dataset.name,
        offers=namespace_offers(dataset.offers, shard),
        labels=[namespace_id(shard, label) for label in dataset.labels],
    )
