"""Multi-corpus sharding: process-pool builds + cross-shard blocking.

The shard layer makes the *corpus* the parallel unit.  A
:class:`ShardPlan` spawns N independent build configs from one session
seed (``SeedSequence.spawn`` — shard identity is stable under shard count
and ordering), a :class:`ShardedBenchmarkSession` builds them in worker
processes and sweeps every shard pair with the engine-backed
:class:`~repro.blocking.candidates.CandidateBlocker`, and the merged
views (:class:`~repro.shard.merge.MergedCandidates`, merged benchmark /
corpus / engine) plug into the existing recall and experiment runners
unchanged.

The cross-shard sweep runs in ``"signature"`` mode by default: a global
two-level :class:`SignatureIndex` (prefix signatures under a merged
frequency order, per-token length windows) prunes shard pairs and row
blocks before any engine concatenation — see
:mod:`repro.shard.signature_index` and
:mod:`repro.similarity.signatures`.  ``sweep_mode="exhaustive"``
restores the historical full bipartite sweep.
"""

from repro.shard.checkpoint import (
    CHECKPOINT_BACKENDS,
    CHECKPOINT_SCHEMA,
    ShardCheckpointStore,
    config_fingerprint,
)
from repro.shard.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
)
from repro.shard.merge import (
    MERGED_SCHEMA,
    MergedCandidate,
    MergedCandidates,
    MergedCandidateStore,
    StoredMergedCandidates,
    iter_merged_candidates,
    merge_benchmarks,
    merge_candidate_sets,
    merge_corpora,
)
from repro.shard.namespace import (
    namespace_id,
    namespace_multiclass_dataset,
    namespace_offer,
    namespace_offers,
    namespace_pair_dataset,
    shard_tag,
)
from repro.shard.plan import ShardPlan, partition_corpus_config
from repro.shard.session import (
    DEFAULT_SIGNATURE_THRESHOLD,
    SWEEP_MODES,
    MergedArtifacts,
    ShardedArtifacts,
    ShardedBenchmarkSession,
)
from repro.shard.signature_index import SignatureIndex, SweepPruneStats
from repro.shard.supervisor import (
    FAILURE_POLICIES,
    AttemptRecord,
    RetryPolicy,
    SessionHealth,
    ShardOutcome,
    ShardSupervisor,
    respawn_config,
)
from repro.shard.sweep import (
    CROSS_SHARD_METRICS,
    ShardUniverse,
    cross_shard_blocker,
    cross_shard_candidates,
    shard_blocker,
    shard_universe,
    split_universe,
)

__all__ = [
    "ShardPlan",
    "partition_corpus_config",
    "ShardedBenchmarkSession",
    "ShardedArtifacts",
    "MergedArtifacts",
    "ShardSupervisor",
    "RetryPolicy",
    "AttemptRecord",
    "ShardOutcome",
    "SessionHealth",
    "respawn_config",
    "FAILURE_POLICIES",
    "ShardCheckpointStore",
    "config_fingerprint",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_BACKENDS",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "SignatureIndex",
    "SweepPruneStats",
    "SWEEP_MODES",
    "DEFAULT_SIGNATURE_THRESHOLD",
    "MergedCandidate",
    "MergedCandidates",
    "MergedCandidateStore",
    "StoredMergedCandidates",
    "MERGED_SCHEMA",
    "iter_merged_candidates",
    "merge_benchmarks",
    "merge_candidate_sets",
    "merge_corpora",
    "shard_tag",
    "namespace_id",
    "namespace_offer",
    "namespace_offers",
    "namespace_pair_dataset",
    "namespace_multiclass_dataset",
    "CROSS_SHARD_METRICS",
    "ShardUniverse",
    "cross_shard_blocker",
    "cross_shard_candidates",
    "shard_blocker",
    "shard_universe",
    "split_universe",
]
