"""WDC Products — a from-scratch reproduction of the EDBT 2024 benchmark.

Reproduces Peeters, Der & Bizer, *WDC Products: A Multi-Dimensional Entity
Matching Benchmark* end to end: the creation pipeline (synthetic web corpus
-> cleansing -> grouping -> selection -> splitting -> pair generation), the
benchmark artifact (27 pair-wise + 9 multi-class variants along the
corner-case / unseen / development-set-size dimensions), and the evaluation
of six matching systems.

Entry points:

>>> from repro.core import BenchmarkBuilder, BuildConfig
>>> artifacts = BenchmarkBuilder(BuildConfig.small()).build()
>>> task = artifacts.benchmark.pairwise_tasks()[0]

See README.md for the full tour and DESIGN.md for the substitution notes.
"""

from repro.core import (
    ALL_MULTICLASS_VARIANTS,
    ALL_PAIRWISE_VARIANTS,
    BenchmarkBuilder,
    BuildArtifacts,
    BuildConfig,
    CornerCaseRatio,
    DevSetSize,
    UnseenRatio,
    WDCProductsBenchmark,
)
from repro.corpus import CorpusConfig, CorpusGenerator

__version__ = "1.0.0"

__all__ = [
    "BenchmarkBuilder",
    "BuildArtifacts",
    "BuildConfig",
    "WDCProductsBenchmark",
    "CornerCaseRatio",
    "DevSetSize",
    "UnseenRatio",
    "ALL_PAIRWISE_VARIANTS",
    "ALL_MULTICLASS_VARIANTS",
    "CorpusConfig",
    "CorpusGenerator",
    "__version__",
]
