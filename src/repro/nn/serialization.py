"""Save/load module parameters as compressed numpy archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = ["state_dict", "load_state_dict", "save_module", "load_module"]


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Snapshot all named parameters as plain arrays."""
    return {name: tensor.data.copy() for name, tensor in module.named_parameters()}


def load_state_dict(module: Module, state: dict[str, np.ndarray]) -> None:
    """Copy arrays from ``state`` into the module's parameters, by name."""
    parameters = dict(module.named_parameters())
    missing = set(parameters) - set(state)
    unexpected = set(state) - set(parameters)
    if missing or unexpected:
        raise KeyError(
            f"state dict mismatch: missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}"
        )
    for name, tensor in parameters.items():
        value = np.asarray(state[name])
        if value.shape != tensor.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: {value.shape} != {tensor.data.shape}"
            )
        tensor.data[...] = value


def save_module(module: Module, path: str | Path) -> None:
    """Write the module's parameters to an ``.npz`` archive."""
    np.savez_compressed(Path(path), **state_dict(module))


def load_module(module: Module, path: str | Path) -> None:
    """Restore parameters previously written by :func:`save_module`."""
    with np.load(Path(path)) as archive:
        load_state_dict(module, {name: archive[name] for name in archive.files})
