"""Minimal deep-learning framework (numpy reverse-mode autograd).

This package is the substrate for the paper's sub-symbolic matchers.  The
original systems fine-tune RoBERTa-base; with no GPU, no network and no
pretrained weights available, we train small Transformer encoders from
scratch on the benchmark itself.  The framework implements exactly what
those matchers need: a broadcasting-aware autograd :class:`Tensor`,
embedding/linear/layer-norm/dropout layers, multi-head self-attention, a
Transformer encoder, Adam with linear warmup-decay (the paper's schedule),
and the cross-entropy and supervised-contrastive losses.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from repro.nn.optim import SGD, Adam, WarmupLinearSchedule
from repro.nn.losses import cross_entropy, supervised_contrastive_loss

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "SGD",
    "Adam",
    "WarmupLinearSchedule",
    "cross_entropy",
    "supervised_contrastive_loss",
]
