"""Neural-network modules built on the autograd :class:`Tensor`."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential"]


class Module:
    """Base class: parameter discovery, train/eval mode, zero_grad."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable tensors, depth-first over attributes."""
        seen: set[int] = set()
        stack: list[object] = [self]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            if isinstance(obj, Tensor):
                if obj.requires_grad:
                    yield obj
                continue
            if isinstance(obj, Module):
                stack.extend(vars(obj).values())
            elif isinstance(obj, (list, tuple)):
                stack.extend(obj)
            elif isinstance(obj, dict):
                stack.extend(obj.values())

    def named_parameters(self) -> list[tuple[str, Tensor]]:
        """Deterministically ordered (path, parameter) pairs."""
        result: list[tuple[str, Tensor]] = []
        self._collect_named(result, prefix="", seen=set())
        return result

    def _collect_named(
        self, result: list[tuple[str, Tensor]], *, prefix: str, seen: set[int]
    ) -> None:
        for name in sorted(vars(self)):
            value = vars(self)[name]
            self._collect_value(result, value, f"{prefix}{name}", seen)

    def _collect_value(
        self,
        result: list[tuple[str, Tensor]],
        value: object,
        path: str,
        seen: set[int],
    ) -> None:
        if id(value) in seen:
            return
        if isinstance(value, Tensor):
            if value.requires_grad:
                seen.add(id(value))
                result.append((path, value))
        elif isinstance(value, Module):
            seen.add(id(value))
            value._collect_named(result, prefix=path + ".", seen=seen)
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                self._collect_value(result, item, f"{path}.{index}", seen)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b``.

    ``init="xavier"`` is the default; ``init="identity"`` starts a square
    layer at the identity plus small noise — used by attention query/key
    projections so dot-product attention begins as exact content matching.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: str = "xavier",
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        if init == "identity":
            if in_features != out_features:
                raise ValueError("identity init requires a square layer")
            weight = np.eye(in_features) + rng.normal(
                0.0, 0.02, size=(in_features, out_features)
            )
        elif init == "xavier":
            bound = np.sqrt(6.0 / (in_features + out_features))
            weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        else:
            raise ValueError(f"unknown init: {init!r}")
        self.weight = Tensor(weight, requires_grad=True)
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to learned vectors."""

    def __init__(self, num_embeddings: int, dim: int, *, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Tensor(
            rng.normal(0.0, 0.02, size=(num_embeddings, dim)), requires_grad=True
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight.gather_rows(np.asarray(ids))


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, *, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.shift = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.1, *, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return inputs
        keep = 1.0 - self.rate
        mask = self._rng.random(inputs.shape) < keep
        return inputs * Tensor(mask.astype(np.float64) / keep)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for module in self.modules:
            out = module(out)
        return out
