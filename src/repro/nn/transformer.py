"""Transformer encoder — the RoBERTa-base stand-in.

Architecture follows the original encoder (token + position embeddings,
pre-norm attention/FFN blocks with residuals) scaled down to run on a
laptop CPU in seconds: the matchers default to 1-2 layers and a model
dimension of 32-64.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer block: LN → MHSA → residual, LN → FFN → residual."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        *,
        ffn_dim: int | None = None,
        dropout: float = 0.1,
        activation: str = "relu",
        seed: int = 0,
    ):
        super().__init__()
        # RoBERTa uses GELU and a 4x FFN; at this scale ReLU with a 2x FFN
        # is indistinguishable in quality and several times cheaper (GELU's
        # tanh dominates the numpy step time).
        ffn_dim = ffn_dim if ffn_dim is not None else dim * 2
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported activation: {activation!r}")
        self.activation = activation
        self.attention_norm = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, n_heads, seed=seed)
        self.attention_dropout = Dropout(dropout, seed=seed + 11)
        self.ffn_norm = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, seed=seed + 21)
        self.ffn_out = Linear(ffn_dim, dim, seed=seed + 22)
        self.ffn_dropout = Dropout(dropout, seed=seed + 23)

    def forward(self, hidden: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        attended = self.attention(self.attention_norm(hidden), padding_mask)
        hidden = hidden + self.attention_dropout(attended)
        pre_activation = self.ffn_in(self.ffn_norm(hidden))
        activated = (
            pre_activation.relu()
            if self.activation == "relu"
            else pre_activation.gelu()
        )
        transformed = self.ffn_out(activated)
        return hidden + self.ffn_dropout(transformed)


class TransformerEncoder(Module):
    """Token+position embeddings, N encoder layers, final LayerNorm.

    ``encode`` returns the full hidden-state sequence; ``pool`` extracts the
    [CLS] vector (position 0), matching how the pair-wise matchers read off
    a fixed-size representation.
    """

    def __init__(
        self,
        vocab_size: int,
        *,
        dim: int = 32,
        n_heads: int = 2,
        n_layers: int = 1,
        max_length: int = 64,
        dropout: float = 0.1,
        pad_id: int = 0,
        seed: int = 0,
    ):
        super().__init__()
        self.dim = dim
        self.max_length = max_length
        self.pad_id = pad_id
        self.token_embedding = Embedding(vocab_size, dim, seed=seed)
        self.position_embedding = Embedding(max_length, dim, seed=seed + 1)
        self.embedding_dropout = Dropout(dropout, seed=seed + 2)
        self.layers = [
            TransformerEncoderLayer(
                dim, n_heads, dropout=dropout, seed=seed + 100 * (index + 1)
            )
            for index in range(n_layers)
        ]
        self.final_norm = LayerNorm(dim)

    def padding_mask(self, token_ids: np.ndarray) -> np.ndarray:
        """Boolean mask that is True on padding positions."""
        return np.asarray(token_ids) == self.pad_id

    def encode(self, token_ids: np.ndarray) -> Tensor:
        """Encode ``(batch, seq)`` int ids into ``(batch, seq, dim)`` states."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        batch, seq = token_ids.shape
        if seq > self.max_length:
            raise ValueError(f"sequence length {seq} exceeds max {self.max_length}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        hidden = self.embedding_dropout(hidden)
        mask = self.padding_mask(token_ids)
        for layer in self.layers:
            hidden = layer(hidden, mask)
        return self.final_norm(hidden)

    def pool(self, token_ids: np.ndarray) -> Tensor:
        """[CLS] pooling: the hidden state at position 0."""
        return self.encode(token_ids).index_select_first()
