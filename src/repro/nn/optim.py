"""Optimizers and learning-rate schedules.

The paper fine-tunes every neural matcher with "a linearly decreasing
learning rate with warmup"; :class:`WarmupLinearSchedule` reproduces that
schedule and both optimizers accept it in place of a constant rate.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam", "WarmupLinearSchedule"]


class WarmupLinearSchedule:
    """Linear warmup to ``peak_lr`` followed by linear decay to zero."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must lie in [0, total_steps]")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        """Learning rate for 1-indexed optimizer ``step``."""
        step = min(max(step, 1), self.total_steps)
        if self.warmup_steps and step <= self.warmup_steps:
            return self.peak_lr * step / self.warmup_steps
        remaining = self.total_steps - step
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.peak_lr * max(remaining, 0) / denom


class _Optimizer:
    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.step_count = 0

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def _current_lr(self, lr: "float | WarmupLinearSchedule") -> float:
        if isinstance(lr, WarmupLinearSchedule):
            return lr.lr_at(self.step_count)
        return lr


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: "float | WarmupLinearSchedule" = 0.01,
        *,
        momentum: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        lr = self._current_lr(self.lr)
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                update = velocity
            else:
                update = parameter.grad
            parameter.data -= lr * update


class Adam(_Optimizer):
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: "float | WarmupLinearSchedule" = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        lr = self._current_lr(self.lr)
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                parameter.data -= lr * self.weight_decay * parameter.data
            parameter.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
