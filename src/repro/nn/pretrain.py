"""Masked-language-model pre-training — the RoBERTa-checkpoint analog.

The paper's neural matchers all start from RoBERTa-base, i.e. from an
encoder that already knows the lexical structure of web text.  Without a
pretrained checkpoint, a from-scratch mini Transformer cannot learn
entity matching from a few hundred positive pairs.  ``MiniLM`` closes that
gap at laptop scale: a subword tokenizer plus Transformer encoder
pretrained with masked-token prediction on the synthetic corpus's offer
texts (our stand-in for "the web").  Matchers clone the pretrained encoder
and fine-tune, exactly mirroring the fine-tune-from-checkpoint recipe.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, WarmupLinearSchedule
from repro.nn.serialization import load_state_dict, state_dict
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder
from repro.text.vocabulary import SubwordTokenizer

__all__ = [
    "MiniLM",
    "PairHead",
    "N_LEXICAL_FEATURES",
    "lexical_overlap_features",
    "digit_piece_ids",
]

_HASH_BUCKETS = 256
N_LEXICAL_FEATURES = 5 + 2 * _HASH_BUCKETS


class PairHead(Module):
    """Two-layer classification head over [CLS] + lexical features.

    The decisive matching rule is non-linear (e.g. "high overlap AND no
    digit contradiction"), so the head needs one hidden layer; a single
    linear map cannot express the required feature interactions.
    """

    def __init__(self, in_features: int, *, hidden: int = 32, seed: int = 0):
        super().__init__()
        self.hidden_layer = Linear(in_features, hidden, seed=seed)
        self.output_layer = Linear(hidden, 2, seed=seed + 1)

    def forward(self, inputs):
        return self.output_layer(self.hidden_layer(inputs).relu())


def digit_piece_ids(tokenizer: SubwordTokenizer) -> set[int]:
    """Vocabulary ids of subword pieces containing a digit."""
    return {
        tokenizer.vocab.id_of(piece)
        for piece in tokenizer.vocab
        if any(char.isdigit() for char in piece)
    }


def lexical_overlap_features(
    left_ids: Sequence[int], right_ids: Sequence[int], digit_pieces: set[int]
) -> list[float]:
    """Explicit token-overlap evidence for pair classification heads.

    RoBERTa-base computes lexical alignment internally; a 10^5-parameter
    encoder cannot, so pair classifiers additionally receive the overlap
    statistics a cross-encoder would otherwise have to rediscover:
    piece-set Jaccard, shared-digit-piece count, a digit *contradiction*
    indicator (both sides carry digit pieces the other lacks — the
    signature of sibling products), and the unmatched-digit counts.
    """
    left, right = set(left_ids), set(right_ids)
    union = len(left | right)
    jaccard = len(left & right) / union if union else 0.0
    left_digits = left & digit_pieces
    right_digits = right & digit_pieces
    shared_digits = len(left_digits & right_digits)
    only_left = len(left_digits - right_digits)
    only_right = len(right_digits - left_digits)
    contradiction = 1.0 if (only_left > 0 and only_right > 0) else 0.0
    scalars = [
        jaccard,
        min(shared_digits, 8) / 8.0,
        contradiction,
        min(only_left, 8) / 8.0,
        min(only_right, 8) / 8.0,
    ]
    # Hashed identity detail: WHICH pieces co-occur and which appear on one
    # side only — the per-token evidence a word-co-occurrence classifier
    # uses and a large pretrained encoder computes internally.
    shared_hash = [0.0] * _HASH_BUCKETS
    for piece in left & right:
        shared_hash[piece % _HASH_BUCKETS] = 1.0
    diff_hash = [0.0] * _HASH_BUCKETS
    for piece in left ^ right:
        diff_hash[piece % _HASH_BUCKETS] = 1.0
    return scalars + shared_hash + diff_hash


class MiniLM:
    """Tokenizer + MLM-pretrained Transformer encoder."""

    def __init__(
        self,
        *,
        dim: int = 32,
        n_heads: int = 2,
        n_layers: int = 2,
        max_length: int = 48,
        vocab_size: int = 4096,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.n_heads = n_heads
        self.n_layers = n_layers
        self.max_length = max_length
        self.vocab_size = vocab_size
        self.seed = seed
        self.tokenizer: SubwordTokenizer | None = None
        self.encoder: TransformerEncoder | None = None
        self.pair_head: PairHead | None = None

    # ------------------------------------------------------------------ #
    def pretrain(
        self,
        texts: Sequence[str],
        *,
        steps: int = 1200,
        batch_size: int = 64,
        mask_rate: float = 0.15,
        peak_lr: float = 3e-3,
        segment_length: int = 24,
    ) -> "MiniLM":
        """Train tokenizer and encoder with masked-token prediction.

        Masked positions are replaced with the ``<unk>`` token (serving as
        the mask symbol) and the model predicts the original piece id.
        """
        rng = np.random.default_rng(self.seed)
        self.tokenizer = SubwordTokenizer(vocab_size=self.vocab_size).train(texts)
        self.encoder = TransformerEncoder(
            len(self.tokenizer),
            dim=self.dim,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            max_length=self.max_length,
            dropout=0.1,
            pad_id=self.tokenizer.pad_id,
            seed=self.seed,
        )
        mlm_head = Linear(self.dim, len(self.tokenizer), seed=self.seed + 99)

        sequences = [
            ids
            for text in texts
            if (ids := self.tokenizer.encode(text, max_length=segment_length))
            and len(ids) >= 4
        ]
        if not sequences:
            raise ValueError("no usable pre-training sequences")

        mask_id = self.tokenizer.vocab.unk_id
        pad_id = self.tokenizer.pad_id
        parameters = list(self.encoder.parameters()) + list(mlm_head.parameters())
        schedule = WarmupLinearSchedule(peak_lr, max(1, steps // 20), steps)
        optimizer = Adam(parameters, lr=schedule, weight_decay=0.01)

        for _step in range(steps):
            chosen = rng.integers(0, len(sequences), size=batch_size)
            batch_sequences = [sequences[int(i)] for i in chosen]
            width = max(len(seq) for seq in batch_sequences)
            tokens = np.full((batch_size, width), pad_id, dtype=np.int64)
            for row, seq in enumerate(batch_sequences):
                tokens[row, : len(seq)] = seq

            is_real = tokens != pad_id
            mask = (rng.random(tokens.shape) < mask_rate) & is_real
            if not mask.any():
                continue
            corrupted = np.where(mask, mask_id, tokens)

            hidden = self.encoder.encode(corrupted)
            flat = hidden.reshape(batch_size * width, self.dim)
            rows = np.flatnonzero(mask.reshape(-1))
            logits = mlm_head(flat.gather_rows(rows))
            targets = tokens.reshape(-1)[rows]
            loss = cross_entropy(logits, targets)

            for parameter in parameters:
                parameter.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    # ------------------------------------------------------------------ #
    def pretrain_matching(
        self,
        clusters: Sequence[tuple[str, str, Sequence[str]]],
        *,
        steps: int = 1500,
        pairs_per_side: int = 32,
        peak_lr: float = 2e-3,
        hard_negative_rate: float = 0.5,
    ) -> "MiniLM":
        """Silver-pair matching pre-training on identifier-clustered text.

        The paper's matchers inherit general matching ability from
        RoBERTa's web-scale pre-training; a 10^5-parameter encoder cannot
        get that from masked-token prediction alone.  The corpus itself
        supplies the replacement signal: offers sharing a product
        identifier are silver *positives*, offers of sibling products in
        the same family are hard silver *negatives*.  ``clusters`` must be
        ``(cluster_id, family_id, texts)`` triples and — to keep the
        benchmark's unseen dimension meaningful — must only contain
        clusters that are *not part of the benchmark*.

        Trains the encoder end-to-end with a binary pair head on
        ``[CLS] a [SEP] b [SEP]`` sequences; the head is kept so
        fine-tuning can start from it.
        """
        if self.encoder is None or self.tokenizer is None:
            raise RuntimeError("run pretrain() before pretrain_matching()")
        usable = [
            (cluster_id, family_id, list(texts))
            for cluster_id, family_id, texts in clusters
            if len(texts) >= 2
        ]
        if not usable:
            raise ValueError("need clusters with at least two texts each")

        rng = np.random.default_rng(self.seed + 17)
        by_family: dict[str, list[int]] = {}
        for position, (_, family_id, _) in enumerate(usable):
            by_family.setdefault(family_id, []).append(position)

        self.pair_head = PairHead(self.dim + N_LEXICAL_FEATURES, seed=self.seed + 7)
        parameters = list(self.encoder.parameters()) + list(self.pair_head.parameters())
        schedule = WarmupLinearSchedule(peak_lr, max(1, steps // 20), steps)
        optimizer = Adam(parameters, lr=schedule, weight_decay=0.01)
        pad_id = self.tokenizer.pad_id
        digits = digit_piece_ids(self.tokenizer)

        def encode_pair(left: str, right: str) -> tuple[list[int], list[float]]:
            assert self.tokenizer is not None
            half = (self.max_length - 3) // 2
            left_ids = self.tokenizer.encode(left, max_length=half)
            right_ids = self.tokenizer.encode(right, max_length=half)
            joint = self.tokenizer.encode_pair(left, right, max_length=self.max_length)
            return joint, lexical_overlap_features(left_ids, right_ids, digits)

        for _step in range(steps):
            sequences: list[list[int]] = []
            features: list[list[float]] = []
            labels: list[int] = []
            # Positives: two offers of one cluster.
            for _ in range(pairs_per_side):
                _, _, texts = usable[int(rng.integers(len(usable)))]
                i, j = rng.choice(len(texts), size=2, replace=False)
                ids, feats = encode_pair(texts[int(i)], texts[int(j)])
                sequences.append(ids)
                features.append(feats)
                labels.append(1)
            # Negatives: sibling-product (hard) or random (easy) pairs.
            for _ in range(pairs_per_side):
                anchor_pos = int(rng.integers(len(usable)))
                cluster_id, family_id, texts = usable[anchor_pos]
                other_pos = anchor_pos
                if rng.random() < hard_negative_rate:
                    siblings = [
                        p for p in by_family[family_id] if p != anchor_pos
                    ]
                    if siblings:
                        other_pos = siblings[int(rng.integers(len(siblings)))]
                if other_pos == anchor_pos:
                    while other_pos == anchor_pos:
                        other_pos = int(rng.integers(len(usable)))
                _, _, other_texts = usable[other_pos]
                left = texts[int(rng.integers(len(texts)))]
                right = other_texts[int(rng.integers(len(other_texts)))]
                ids, feats = encode_pair(left, right)
                sequences.append(ids)
                features.append(feats)
                labels.append(0)

            width = max(len(seq) for seq in sequences)
            tokens = np.full((len(sequences), width), pad_id, dtype=np.int64)
            for row, seq in enumerate(sequences):
                tokens[row, : len(seq)] = seq
            pooled = self.encoder.pool(tokens)
            combined = Tensor.concat(
                [pooled, Tensor(np.array(features))], axis=-1
            )
            logits = self.pair_head(combined)
            loss = cross_entropy(logits, np.array(labels))
            for parameter in parameters:
                parameter.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    def initialize_pair_head(self, target: "PairHead") -> None:
        """Copy the silver-pretrained pair head into ``target`` if present."""
        if self.pair_head is None:
            return
        source = dict(self.pair_head.named_parameters())
        for name, tensor in target.named_parameters():
            pretrained = source.get(name)
            if pretrained is not None and pretrained.data.shape == tensor.data.shape:
                tensor.data[...] = pretrained.data

    def initialize_encoder(self, target: TransformerEncoder) -> None:
        """Copy pretrained weights into ``target`` (checkpoint loading).

        ``target`` must share the architecture except possibly a shorter
        ``max_length``; the position-embedding table is sliced accordingly
        (analogous to loading RoBERTa into a shorter-context model).
        """
        if self.encoder is None:
            raise RuntimeError("MiniLM.pretrain() must be called first")
        source = dict(self.encoder.named_parameters())
        for name, parameter in target.named_parameters():
            pretrained = source.get(name)
            if pretrained is None:
                continue
            if pretrained.data.shape == parameter.data.shape:
                parameter.data[...] = pretrained.data
            elif (
                name.startswith("position_embedding")
                and pretrained.data.shape[1:] == parameter.data.shape[1:]
            ):
                rows = min(pretrained.data.shape[0], parameter.data.shape[0])
                parameter.data[:rows] = pretrained.data[:rows]
            else:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{pretrained.data.shape} vs {parameter.data.shape}"
                )

    def clone_encoder(self) -> TransformerEncoder:
        """A fresh encoder initialized with the pretrained weights."""
        if self.encoder is None or self.tokenizer is None:
            raise RuntimeError("MiniLM.pretrain() must be called first")
        clone = TransformerEncoder(
            len(self.tokenizer),
            dim=self.dim,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            max_length=self.max_length,
            dropout=0.1,
            pad_id=self.tokenizer.pad_id,
            seed=self.seed,
        )
        load_state_dict(clone, state_dict(self.encoder))
        return clone

    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> None:
        """Persist the checkpoint (weights + tokenizer + config)."""
        if self.encoder is None or self.tokenizer is None:
            raise RuntimeError("nothing to save before pretrain()")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        weights = state_dict(self.encoder)
        if self.pair_head is not None:
            for name, tensor in self.pair_head.named_parameters():
                weights[f"pair_head.{name}"] = tensor.data.copy()
        np.savez_compressed(directory / "weights.npz", **weights)
        config = {
            "dim": self.dim,
            "n_heads": self.n_heads,
            "n_layers": self.n_layers,
            "max_length": self.max_length,
            "vocab_size": self.vocab_size,
            "seed": self.seed,
            "max_piece_len": self.tokenizer.max_piece_len,
            "pieces": [
                piece
                for piece in self.tokenizer.vocab
                if piece not in type(self.tokenizer.vocab).SPECIALS
            ],
            "has_pair_head": self.pair_head is not None,
        }
        (directory / "config.json").write_text(
            json.dumps(config), encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: str | Path) -> "MiniLM":
        """Restore a checkpoint written by :meth:`save`."""
        directory = Path(directory)
        config = json.loads((directory / "config.json").read_text(encoding="utf-8"))
        lm = cls(
            dim=config["dim"],
            n_heads=config["n_heads"],
            n_layers=config["n_layers"],
            max_length=config["max_length"],
            vocab_size=config["vocab_size"],
            seed=config["seed"],
        )
        tokenizer = SubwordTokenizer(
            vocab_size=config["vocab_size"], max_piece_len=config["max_piece_len"]
        )
        # Rebuild the tokenizer state directly (bypasses train()).
        from repro.text.vocabulary import Vocabulary

        tokenizer.vocab = Vocabulary()
        for piece in config["pieces"]:
            tokenizer.vocab.add(piece)
        tokenizer._pieces = set(config["pieces"])
        tokenizer._trained = True
        lm.tokenizer = tokenizer

        lm.encoder = TransformerEncoder(
            len(tokenizer),
            dim=lm.dim,
            n_heads=lm.n_heads,
            n_layers=lm.n_layers,
            max_length=lm.max_length,
            dropout=0.1,
            pad_id=tokenizer.pad_id,
            seed=lm.seed,
        )
        with np.load(directory / "weights.npz") as archive:
            weights = {name: archive[name] for name in archive.files}
        pair_head_weights = {
            name[len("pair_head."):]: value
            for name, value in weights.items()
            if name.startswith("pair_head.")
        }
        encoder_weights = {
            name: value
            for name, value in weights.items()
            if not name.startswith("pair_head.")
        }
        load_state_dict(lm.encoder, encoder_weights)
        if config.get("has_pair_head") and pair_head_weights:
            lm.pair_head = PairHead(lm.dim + N_LEXICAL_FEATURES, seed=lm.seed + 7)
            for name, tensor in lm.pair_head.named_parameters():
                value = pair_head_weights.get(name)
                if value is not None and value.shape == tensor.data.shape:
                    tensor.data[...] = value
        return lm
