"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``np.ndarray`` and records the operations that
produced it; calling :meth:`Tensor.backward` on a scalar loss propagates
gradients to every tensor created with ``requires_grad=True``.  Broadcasting
is fully supported: gradients flowing into a broadcast operand are summed
back to its original shape.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Temporarily disable graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (inverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Collapse axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        *,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self)=1).

        Nodes are processed in reverse topological order, so by the time a
        node's ``_backward`` closure runs, its ``.grad`` already holds the
        full gradient accumulated from every consumer.  Interior-node
        gradients are freed afterwards; leaves (parameters) keep theirs.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar")
            gradient = np.ones_like(self.data)
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")

        # Topological order via iterative DFS (avoids recursion limits).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(gradient, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            if node._parents and node is not self:
                node.grad = None  # free interior gradients

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(self.data + other_t.data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(self.data - other_t.data, (self, other_t), backward)

    def __rsub__(self, other: float) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(self.data * other_t.data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(self.data / other_t.data, (self, other_t), backward)

    def __rtruediv__(self, other: float) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * np.power(self.data, exponent - 1))

        return Tensor._make(np.power(self.data, exponent), (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix / tensor ops
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        """Batched matrix multiply with numpy ``@`` semantics."""

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, axis_a: int, axis_b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis_a, axis_b))

        return Tensor._make(np.swapaxes(self.data, axis_a, axis_b), (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape) / count)

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self.data[indices]`` — the embedding primitive."""
        indices = np.asarray(indices)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
            self._accumulate(full)

        return Tensor._make(self.data[indices], (self,), backward)

    def index_select_first(self) -> "Tensor":
        """Select position 0 along axis 1 — the [CLS] pooling primitive."""

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            full[:, 0] = grad
            self._accumulate(full)

        return Tensor._make(self.data[:, 0], (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0, *sizes])

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer: list[slice] = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------ #
    # Nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximated GELU (the Transformer FFN activation)."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (self.data + 0.044715 * self.data**3)
        tanh = np.tanh(inner)
        out = 0.5 * self.data * (1.0 + tanh)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh**2
            d_inner = c * (1.0 + 3 * 0.044715 * self.data**2)
            local = 0.5 * (1.0 + tanh) + 0.5 * self.data * sech2 * d_inner
            self._accumulate(grad * local)

        return Tensor._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out**2))

        return Tensor._make(out, (self,), backward)

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out)

        return Tensor._make(out, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out, 1e-12))

        return Tensor._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out * (1.0 - out))

        return Tensor._make(out, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out).sum(axis=axis, keepdims=True)
            self._accumulate(out * (grad - dot))

        return Tensor._make(out, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Set entries where ``mask`` is True to ``value`` (no grad there)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"
