"""Training losses: cross-entropy and supervised contrastive (SupCon).

Cross-entropy drives the RoBERTa/Ditto/HierGAT fine-tuning and R-SupCon's
second stage; :func:`supervised_contrastive_loss` implements Khosla et
al.'s SupCon objective used in R-SupCon's first stage (all offers of the
same product are mutual positives inside a batch).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["cross_entropy", "supervised_contrastive_loss", "log_softmax"]


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax built from autograd primitives."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    *,
    class_weights: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy for integer ``labels`` over ``(batch, C)`` logits.

    ``class_weights`` (length C) rescales each example by the weight of its
    gold class — used to counter the 1:4 positive/negative imbalance in the
    pair-wise training sets.
    """
    labels = np.asarray(labels)
    batch, n_classes = logits.shape
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} != ({batch},)")
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros((batch, n_classes))
    one_hot[np.arange(batch), labels] = 1.0
    if class_weights is not None:
        weights = np.asarray(class_weights, dtype=np.float64)[labels]
        picked = (log_probs * Tensor(one_hot)).sum(axis=-1) * Tensor(weights)
        return -(picked.sum() / float(weights.sum()))
    picked = (log_probs * Tensor(one_hot)).sum(axis=-1)
    return -picked.mean()


def supervised_contrastive_loss(
    embeddings: Tensor,
    labels: np.ndarray,
    *,
    temperature: float = 0.07,
) -> Tensor:
    """Supervised contrastive loss (Khosla et al., 2020), L_out variant.

    ``embeddings`` is ``(batch, dim)``; rows are L2-normalized internally.
    For each anchor i the positives are all other rows with the same label;
    anchors without positives contribute zero.
    """
    labels = np.asarray(labels)
    batch = embeddings.shape[0]
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} != ({batch},)")
    if batch < 2:
        raise ValueError("SupCon needs at least two examples per batch")

    norms = (embeddings * embeddings).sum(axis=-1, keepdims=True).sqrt() + 1e-12
    normalized = embeddings / norms
    logits = (normalized @ normalized.transpose(0, 1)) * (1.0 / temperature)

    eye = np.eye(batch, dtype=bool)
    # Mask self-similarities out of the denominator.
    masked_logits = logits.masked_fill(eye, -1e9)
    log_probs = masked_logits - masked_logits.exp().sum(axis=-1, keepdims=True).log()

    positive_mask = (labels[:, None] == labels[None, :]) & ~eye
    positive_counts = positive_mask.sum(axis=1)
    has_positive = positive_counts > 0
    if not np.any(has_positive):
        # No positive pairs in this batch: loss is identically zero but must
        # stay connected to the graph so backward() remains valid.
        return (embeddings * 0.0).sum()

    weights = np.zeros((batch, batch))
    rows = np.where(has_positive)[0]
    weights[rows] = positive_mask[rows] / positive_counts[rows, None]
    per_anchor = (log_probs * Tensor(weights)).sum(axis=-1)
    return -(per_anchor.sum() / float(has_positive.sum()))
