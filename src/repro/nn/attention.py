"""Multi-head scaled-dot-product self-attention."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard Transformer self-attention over a padded batch.

    ``forward`` takes hidden states shaped ``(batch, seq, dim)`` and a
    boolean ``padding_mask`` shaped ``(batch, seq)`` that is True on padding
    positions; attention weights onto padding are forced to zero.
    """

    def __init__(self, dim: int, n_heads: int, *, seed: int = 0):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        # Identity-initialized Q/K start attention as content matching:
        # a token's strongest key is its own embedding, so "is my twin on
        # the other side of the pair?" is computable from step one — the
        # operation corner-case discrimination depends on.
        self.query = Linear(dim, dim, init="identity", seed=seed)
        self.key = Linear(dim, dim, init="identity", seed=seed + 1)
        self.value = Linear(dim, dim, seed=seed + 2)
        self.output = Linear(dim, dim, seed=seed + 3)

    def _split_heads(self, tensor: Tensor, batch: int, seq: int) -> Tensor:
        # (b, s, d) -> (b, h, s, hd)
        return tensor.reshape(batch, seq, self.n_heads, self.head_dim).transpose(1, 2)

    def forward(self, hidden: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        batch, seq, _ = hidden.shape
        q = self._split_heads(self.query(hidden), batch, seq)
        k = self._split_heads(self.key(hidden), batch, seq)
        v = self._split_heads(self.value(hidden), batch, seq)

        scores = (q @ k.transpose(2, 3)) * (1.0 / np.sqrt(self.head_dim))
        if padding_mask is not None:
            mask = np.asarray(padding_mask, dtype=bool)
            if mask.shape != (batch, seq):
                raise ValueError(
                    f"padding_mask shape {mask.shape} != {(batch, seq)}"
                )
            # Broadcast to (b, h, q, k): mask keys that are padding.
            key_mask = mask[:, None, None, :]
            scores = scores.masked_fill(
                np.broadcast_to(key_mask, scores.shape), _NEG_INF
            )
        weights = scores.softmax(axis=-1)
        context = weights @ v  # (b, h, s, hd)
        merged = context.transpose(1, 2).reshape(batch, seq, self.dim)
        return self.output(merged)
