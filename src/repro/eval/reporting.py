"""Paper-style rendering of experiment results.

``format_table3/4/5`` print the same rows the paper reports; the
``figure_series``/``format_figure`` helpers produce the one-dimensional
slices visualized in Figures 4, 5 and 6.
"""

from __future__ import annotations

from repro.core.dimensions import (
    CornerCaseRatio,
    DevSetSize,
    MulticlassVariant,
    PairwiseVariant,
    UnseenRatio,
)
from repro.eval.runner import NEURAL_SYSTEMS, MulticlassResults, PairwiseResults

__all__ = [
    "format_table3",
    "format_table4",
    "format_table5",
    "figure_series",
    "format_figure",
]

_SYSTEM_TITLES = {
    "word_cooc": "Word-Cooc",
    "word_occ": "Word-Occ",
    "magellan": "Magellan",
    "roberta": "RoBERTa",
    "ditto": "Ditto",
    "hiergat": "HierGAT",
    "rsupcon": "R-SupCon",
}


def _cell(value: float | None) -> str:
    return f"{value * 100:6.2f}" if value is not None else "   -  "


def format_table3(results: PairwiseResults, *, systems: list[str] | None = None) -> str:
    """Table 3: F1 per system x (dev size, cc, unseen)."""
    systems = systems if systems is not None else results.systems()
    header_one = f"{'Dev Size':<8} {'CC':<4}"
    header_two = " " * 13
    for system in systems:
        header_one += f" | {_SYSTEM_TITLES.get(system, system):^22}"
        header_two += " | " + " ".join(f"{u.label[:6]:>6}" for u in UnseenRatio)
    lines = [header_one, header_two, "-" * len(header_one)]
    for corner_cases in CornerCaseRatio:
        for dev_size in DevSetSize:
            row = f"{dev_size.label:<8} {corner_cases.label:<4}"
            for system in systems:
                cells = []
                for unseen in UnseenRatio:
                    variant = PairwiseVariant(corner_cases, dev_size, unseen)
                    score = results.get(system, variant)
                    cells.append(_cell(score.f1 if score else None))
                row += " | " + " ".join(cells)
            lines.append(row)
    return "\n".join(lines)


def format_table4(results: PairwiseResults, *, systems: list[str] | None = None) -> str:
    """Table 4: precision and recall of the neural systems."""
    if systems is None:
        systems = [s for s in NEURAL_SYSTEMS if s in results.systems()]
    lines = []
    header = f"{'Dev Size':<8} {'CC':<4}"
    for system in systems:
        header += f" | {_SYSTEM_TITLES.get(system, system):^29}"
    sub = " " * 13
    for _ in systems:
        sub += " | " + " ".join(
            f"{u.label[:4]:>4}P {u.label[:3]:>3}R" for u in UnseenRatio
        )
    lines.extend([header, sub, "-" * len(header)])
    for corner_cases in CornerCaseRatio:
        for dev_size in DevSetSize:
            row = f"{dev_size.label:<8} {corner_cases.label:<4}"
            for system in systems:
                cells = []
                for unseen in UnseenRatio:
                    variant = PairwiseVariant(corner_cases, dev_size, unseen)
                    score = results.get(system, variant)
                    if score is None:
                        cells.append("  -    -  ")
                    else:
                        cells.append(
                            f"{score.precision * 100:4.1f} {score.recall * 100:4.1f}"
                        )
                row += " | " + " ".join(cells)
            lines.append(row)
    return "\n".join(lines)


def format_table5(results: MulticlassResults, *, systems: list[str] | None = None) -> str:
    """Table 5: multi-class micro-F1."""
    if systems is None:
        systems = sorted({system for system, _ in results.scores})
    header = f"{'Dev Size':<8} {'CC':<4}" + "".join(
        f" | {_SYSTEM_TITLES.get(s, s):>9}" for s in systems
    )
    lines = [header, "-" * len(header)]
    for corner_cases in CornerCaseRatio:
        for dev_size in DevSetSize:
            variant = MulticlassVariant(corner_cases, dev_size)
            row = f"{dev_size.label:<8} {corner_cases.label:<4}"
            for system in systems:
                value = results.get(system, variant)
                row += f" | {_cell(value):>9}"
            lines.append(row)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Figures 4-6: one-dimensional slices
# --------------------------------------------------------------------- #
def figure_series(
    results: PairwiseResults,
    *,
    vary: str,
    corner_cases: CornerCaseRatio = CornerCaseRatio.CC50,
    dev_size: DevSetSize = DevSetSize.MEDIUM,
    unseen: UnseenRatio = UnseenRatio.SEEN,
    systems: list[str] | None = None,
) -> dict[str, list[tuple[str, float]]]:
    """F1 series along one dimension, the other two held fixed.

    ``vary`` is one of ``corner_cases`` (Figure 4), ``unseen`` (Figure 5)
    or ``dev_size`` (Figure 6); the paper's fixed values are the defaults.
    """
    systems = systems if systems is not None else results.systems()
    if vary == "corner_cases":
        points = [(cc.label, PairwiseVariant(cc, dev_size, unseen)) for cc in
                  (CornerCaseRatio.CC20, CornerCaseRatio.CC50, CornerCaseRatio.CC80)]
    elif vary == "unseen":
        points = [(u.label, PairwiseVariant(corner_cases, dev_size, u)) for u in UnseenRatio]
    elif vary == "dev_size":
        points = [(d.label, PairwiseVariant(corner_cases, d, unseen)) for d in DevSetSize]
    else:
        raise ValueError(f"unknown dimension: {vary!r}")

    series: dict[str, list[tuple[str, float]]] = {}
    for system in systems:
        values = []
        for label, variant in points:
            score = results.get(system, variant)
            if score is not None:
                values.append((label, score.f1))
        if values:
            series[system] = values
    return series


def format_figure(series: dict[str, list[tuple[str, float]]], *, title: str) -> str:
    """Text rendering of a figure: one line per system with F1 values."""
    lines = [title]
    for system, points in series.items():
        name = _SYSTEM_TITLES.get(system, system)
        rendered = "  ".join(f"{label}: {value * 100:5.2f}" for label, value in points)
        lines.append(f"  {name:<10} {rendered}")
    return "\n".join(lines)
