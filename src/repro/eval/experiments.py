"""Experiment definitions for Tables 3-5 (Section 5.2-5.3).

Tables 3 and 4 come from the *same* training runs (Table 3 reports F1,
Table 4 precision/recall of the neural systems), so they share one
:func:`run_table3_and_4` invocation.
"""

from __future__ import annotations

from repro.eval.runner import (
    MULTICLASS_SYSTEMS,
    PAIRWISE_SYSTEMS,
    ExperimentRunner,
    MulticlassResults,
    PairwiseResults,
)

__all__ = ["run_table3_and_4", "run_table5"]


def run_table3_and_4(
    runner: ExperimentRunner,
    *,
    systems: tuple[str, ...] = PAIRWISE_SYSTEMS,
    progress: bool = False,
) -> PairwiseResults:
    """Train and evaluate the pair-wise grid feeding Tables 3 and 4."""
    return runner.run_pairwise(systems, progress=progress)


def run_table5(
    runner: ExperimentRunner,
    *,
    systems: tuple[str, ...] = MULTICLASS_SYSTEMS,
    progress: bool = False,
) -> MulticlassResults:
    """Train and evaluate the multi-class grid feeding Table 5."""
    return runner.run_multiclass(systems, progress=progress)
