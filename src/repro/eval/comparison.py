"""Table 6: comparison of WDC Products to existing benchmarks.

The rows for the other benchmarks are static metadata transcribed from the
paper; the WDC Products row is *computed live* from the built benchmark so
the reproduction reports its own artifact's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.benchmark import WDCProductsBenchmark
from repro.core.profiling import benchmark_totals

__all__ = ["Table6Row", "TABLE6_ROWS", "wdc_products_row", "table6_rows", "format_table6"]


@dataclass(frozen=True)
class Table6Row:
    """One benchmark's landscape statistics."""

    benchmark: str
    domain: str
    n_sources: int
    n_entities: int
    n_records: str
    n_attributes: int
    avg_density: float
    n_matches: int
    n_non_matches: int | None
    avg_matches_per_entity: float
    fixed_splits: str
    dev_size_matches: str
    test_size_matches: str


# Static rows transcribed from Table 6 of the paper.
TABLE6_ROWS: tuple[Table6Row, ...] = (
    Table6Row("Abt-Buy", "Product", 2, 1012, "1,081/1,092", 3, 0.63, 1095, None, 1.08, "yes* (1)", "7,659 (822)", "1,916 (206)"),
    Table6Row("Amazon-Google", "Product", 2, 995, "1,363/3,226", 4, 0.75, 1298, None, 1.30, "yes* (1)", "9,167 (933)", "2,293 (234)"),
    Table6Row("DBLP-ACM", "Bibliogr.", 2, 2220, "2,614/2,294", 4, 1.00, 2223, None, 1.00, "yes* (1)", "9,890 (1,776)", "2,473 (444)"),
    Table6Row("DBLP-Scholar", "Bibliogr.", 2, 2351, "2,616/64,263", 4, 0.81, 5346, None, 2.27, "yes* (1)", "22,965 (4,277)", "5,742 (1,070)"),
    Table6Row("Restaurants", "Company", 2, 110, "533/331", 5, 1.00, 112, None, 1.02, "yes* (1)", "757 (88)", "189 (22)"),
    Table6Row("Cora", "Bibliogr.", 1, 118, "1,879", 18, 0.31, 64578, 268082, 547.27, "no", "-", "-"),
    Table6Row("Walmart-Amazon", "Product", 2, 846, "2,554/22,074", 10, 0.84, 1154, None, 1.36, "yes* (1)", "8,193 (769)", "2,049 (193)"),
    Table6Row("Company", "Company", 2, 28200, "28,200/28,200", 1, 1.00, 28200, 84432, 1.00, "yes* (1)", "90,129 (22,560)", "22,503 (5,640)"),
    Table6Row("Beer", "Product", 2, 68, "4,345/3,000", 4, 0.96, 68, 382, 1.00, "yes* (1)", "359 (54)", "91 (14)"),
    Table6Row("iTunes-Amazon", "Product", 2, 120, "6,906/55,932", 7, 0.99, 132, 407, 1.10, "yes* (1)", "430 (105)", "109 (27)"),
    Table6Row("Camera (Alaska)", "Product", 24, 103, "3,865", 56, 0.13, 157157, None, 1525.80, "no", "-", "-"),
    Table6Row("Monitor (Alaska)", "Product", 26, 242, "2,283", 87, 0.17, 13556, None, 56.02, "no", "-", "-"),
    Table6Row("Ember", "Product", 1, 350, "6,245", 5, 1.00, 5053, 206296, 14.44, "yes (1)", "8,000 (1,974)", "50,000 (500)"),
    Table6Row("LSPM Computers", "Product", 269, 745, "3,665", 4, 0.51, 7478, 59571, 10.04, "yes (4)", "68,461 (9,690)", "1,100 (300)"),
    Table6Row("LSPM Cameras", "Product", 190, 562, "4,068", 4, 0.43, 9564, 35899, 17.02, "yes (4)", "42,277 (7,178)", "1,100 (300)"),
    Table6Row("LSPM Watches", "Product", 235, 615, "4,676", 4, 0.50, 9991, 53105, 16.25, "yes (4)", "61,569 (9,264)", "1,100 (300)"),
    Table6Row("LSPM Shoes", "Product", 120, 562, "2,808", 4, 0.41, 4440, 39088, 7.90, "yes (4)", "42,429 (4,141)", "1,100 (300)"),
)

# The paper's own WDC Products row, for paper-vs-measured comparison.
PAPER_WDC_ROW = Table6Row(
    "WDC Products (paper)", "Product", 3259, 2162, "11,715", 5, 0.79,
    28299, 124899, 13.09, "yes (3)", "24,335 (8,971)", "4,500 (500)",
)


def wdc_products_row(benchmark: WDCProductsBenchmark) -> Table6Row:
    """Compute the WDC Products row from the built benchmark."""
    totals = benchmark_totals(benchmark)
    offers = benchmark.unique_offers()
    sources = {getattr(offer, "source", "") for offer in offers.values()}
    entities = {getattr(offer, "cluster_id", "") for offer in offers.values()}
    n_entities = len(entities)

    # Attribute density over the five benchmark attributes.
    filled = 0
    for offer in offers.values():
        filled += sum(
            value is not None and value != ""
            for value in (
                offer.title,  # type: ignore[union-attr]
                offer.description,  # type: ignore[union-attr]
                offer.price,  # type: ignore[union-attr]
                offer.price_currency,  # type: ignore[union-attr]
                offer.brand,  # type: ignore[union-attr]
            )
        )
    density = filled / (5 * max(len(offers), 1))

    largest_train = max(
        (dataset for dataset in benchmark.train_sets.values()),
        key=len,
        default=None,
    )
    largest_valid = max(
        (dataset for dataset in benchmark.valid_sets.values()),
        key=len,
        default=None,
    )
    dev_all = (len(largest_train) if largest_train else 0) + (
        len(largest_valid) if largest_valid else 0
    )
    dev_pos = (len(largest_train.positives()) if largest_train else 0) + (
        len(largest_valid.positives()) if largest_valid else 0
    )
    test = next(iter(benchmark.test_sets.values()), None)
    return Table6Row(
        benchmark="WDC Products (this reproduction)",
        domain="Product",
        n_sources=len(sources),
        n_entities=n_entities,
        n_records=f"{totals['offers']:,}",
        n_attributes=5,
        avg_density=round(density, 2),
        n_matches=totals["matches"],
        n_non_matches=totals["non_matches"],
        avg_matches_per_entity=round(totals["matches"] / max(n_entities, 1), 2),
        fixed_splits="yes (3)",
        dev_size_matches=f"{dev_all:,} ({dev_pos:,})",
        test_size_matches=(
            f"{len(test):,} ({len(test.positives()):,})" if test else "-"
        ),
    )


def table6_rows(benchmark: WDCProductsBenchmark) -> list[Table6Row]:
    """All rows: the static landscape plus paper and reproduction rows."""
    return [*TABLE6_ROWS, PAPER_WDC_ROW, wdc_products_row(benchmark)]


def format_table6(rows: list[Table6Row]) -> str:
    header = (
        f"{'Benchmark':<34} {'Domain':<9} {'#Src':>5} {'#Ent':>6} {'#Records':>14} "
        f"{'#Attr':>5} {'Dens':>5} {'#Match':>8} {'#NonM':>8} {'M/Ent':>8} "
        f"{'Splits':>9} {'Dev(pos)':>17} {'Test(pos)':>14}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:<34} {row.domain:<9} {row.n_sources:>5} {row.n_entities:>6} "
            f"{row.n_records:>14} {row.n_attributes:>5} {row.avg_density:>5.2f} "
            f"{row.n_matches:>8,} "
            f"{row.n_non_matches if row.n_non_matches is not None else '-':>8} "
            f"{row.avg_matches_per_entity:>8.2f} {row.fixed_splits:>9} "
            f"{row.dev_size_matches:>17} {row.test_size_matches:>14}"
        )
    return "\n".join(lines)
