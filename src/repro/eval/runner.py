"""Training/evaluation driver for the Section-5 experiments."""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # circular-import-free hint for from_session
    from repro.shard.session import ShardedArtifacts

from repro.blocking.candidates import CandidateBlocker
from repro.core.benchmark import PairwiseTask
from repro.core.builder import BuildArtifacts
from repro.core.datasets import PairDataset
from repro.corpus.schema import ProductOffer
from repro.core.dimensions import (
    ALL_MULTICLASS_VARIANTS,
    CornerCaseRatio,
    DevSetSize,
    MulticlassVariant,
    PairwiseVariant,
    UnseenRatio,
)
from repro.matchers.base import MulticlassMatcher, PairwiseMatcher
from repro.matchers.ditto import DittoMatcher
from repro.matchers.hiergat import HierGATMatcher
from repro.matchers.magellan import MagellanMatcher
from repro.matchers.rsupcon import RSupConMatcher, RSupConMulticlass
from repro.matchers.serialize import serialize_offer
from repro.matchers.transformer import (
    TrainSettings,
    TransformerMatcher,
    TransformerMulticlass,
)
from repro.matchers.word_cooc import (
    SERIALIZED_ATTRIBUTE,
    WordCoocMatcher,
    WordOccurrenceClassifier,
)
from repro.ml.metrics import PRF1
from repro.nn.pretrain import MiniLM
from repro.similarity.engine import SimilarityEngine

__all__ = [
    "EvalSettings",
    "ExperimentRunner",
    "PairwiseResults",
    "MulticlassResults",
    "PAIRWISE_SYSTEMS",
    "MULTICLASS_SYSTEMS",
]

PAIRWISE_SYSTEMS = ("word_cooc", "magellan", "roberta", "ditto", "hiergat", "rsupcon")
MULTICLASS_SYSTEMS = ("word_occ", "roberta", "rsupcon")
NEURAL_SYSTEMS = ("roberta", "ditto", "hiergat", "rsupcon")


@dataclass(frozen=True)
class EvalSettings:
    """Scale knobs for an experiment run.

    ``from_env`` maps ``REPRO_BENCH_SCALE`` to a preset: ``smoke`` (one
    grid cell, tiny budgets), ``default`` (full grid, one seed), ``full``
    (full grid, three seeds, larger budgets — the paper's protocol).
    """

    seeds: tuple[int, ...] = (0,)
    mlm_steps: int = 250
    matching_steps: int = 2000
    step_budget: int = 600
    pretrain_epochs: int = 12  # R-SupCon stage 1
    corner_ratios: tuple[CornerCaseRatio, ...] = tuple(CornerCaseRatio)
    dev_sizes: tuple[DevSetSize, ...] = tuple(DevSetSize)
    unseen_ratios: tuple[UnseenRatio, ...] = tuple(UnseenRatio)
    # Restriction of the (cc, dev) grid; None = full product.  The default
    # covers the paper's Figure 4/5/6 slices (five cells); "full" runs all
    # nine cells as in Tables 3-5.
    pairwise_cells: tuple[tuple[CornerCaseRatio, DevSetSize], ...] | None = None
    multiclass_cells: tuple[tuple[CornerCaseRatio, DevSetSize], ...] | None = None

    @classmethod
    def smoke(cls) -> "EvalSettings":
        return cls(
            seeds=(0,),
            mlm_steps=120,
            matching_steps=150,
            step_budget=250,
            pretrain_epochs=4,
            corner_ratios=(CornerCaseRatio.CC50,),
            dev_sizes=(DevSetSize.MEDIUM,),
            pairwise_cells=((CornerCaseRatio.CC50, DevSetSize.MEDIUM),),
            multiclass_cells=((CornerCaseRatio.CC50, DevSetSize.MEDIUM),),
        )

    @classmethod
    def default(cls) -> "EvalSettings":
        figure_cells = (
            (CornerCaseRatio.CC80, DevSetSize.MEDIUM),
            (CornerCaseRatio.CC50, DevSetSize.MEDIUM),
            (CornerCaseRatio.CC20, DevSetSize.MEDIUM),
            (CornerCaseRatio.CC50, DevSetSize.SMALL),
            (CornerCaseRatio.CC50, DevSetSize.LARGE),
        )
        return cls(
            pairwise_cells=figure_cells,
            multiclass_cells=(
                (CornerCaseRatio.CC50, DevSetSize.SMALL),
                (CornerCaseRatio.CC50, DevSetSize.MEDIUM),
                (CornerCaseRatio.CC50, DevSetSize.LARGE),
            ),
        )

    @classmethod
    def full(cls) -> "EvalSettings":
        return cls(
            seeds=(0, 1, 2),
            mlm_steps=800,
            matching_steps=3000,
            step_budget=1500,
            pretrain_epochs=25,
        )

    def resolved_pairwise_cells(self) -> tuple[tuple[CornerCaseRatio, DevSetSize], ...]:
        if self.pairwise_cells is not None:
            return self.pairwise_cells
        return tuple(
            (cc, dev) for cc in self.corner_ratios for dev in self.dev_sizes
        )

    def resolved_multiclass_cells(self) -> tuple[tuple[CornerCaseRatio, DevSetSize], ...]:
        if self.multiclass_cells is not None:
            return self.multiclass_cells
        return tuple(
            (cc, dev) for cc in self.corner_ratios for dev in self.dev_sizes
        )

    @classmethod
    def from_env(
        cls, variable: str = "REPRO_BENCH_SCALE", environ=None
    ) -> "EvalSettings":
        """Settings selected by the ambient scale variable.

        ``environ`` binds at call time so test monkeypatching of
        ``os.environ`` is always honored.
        """
        if environ is None:
            environ = os.environ  # repro-lint: disable=RNG004 -- from_env is the documented ambient entry point for benchmark scale selection
        scale = environ.get(variable, "default").lower()
        if scale == "smoke":
            return cls.smoke()
        if scale == "full":
            return cls.full()
        return cls.default()


def _mean_prf1(values: list[PRF1]) -> PRF1:
    return PRF1(
        float(np.mean([v.precision for v in values])),
        float(np.mean([v.recall for v in values])),
        float(np.mean([v.f1 for v in values])),
    )


@dataclass
class PairwiseResults:
    """PRF1 per (system, corner-cases, dev size, unseen), seed-averaged."""

    scores: dict[tuple[str, PairwiseVariant], PRF1] = field(default_factory=dict)
    per_seed: dict[tuple[str, PairwiseVariant, int], PRF1] = field(default_factory=dict)

    def get(self, system: str, variant: PairwiseVariant) -> PRF1 | None:
        return self.scores.get((system, variant))

    def systems(self) -> list[str]:
        return sorted({system for system, _ in self.scores})


@dataclass
class MulticlassResults:
    """Micro-F1 per (system, variant), seed-averaged."""

    scores: dict[tuple[str, MulticlassVariant], float] = field(default_factory=dict)

    def get(self, system: str, variant: MulticlassVariant) -> float | None:
        return self.scores.get((system, variant))


class ExperimentRunner:
    """Trains the matching systems across the benchmark grid.

    ``artifacts`` is either a single-corpus
    :class:`~repro.core.builder.BuildArtifacts` or the merged view of a
    sharded session (:class:`~repro.shard.MergedArtifacts`, obtained via
    :meth:`from_session`) — the runner only reads ``benchmark``,
    ``cleansed``, ``engine``, ``splits`` and ``pretraining_clusters``,
    which both provide.
    """

    def __init__(
        self,
        artifacts: BuildArtifacts,
        *,
        settings: EvalSettings | None = None,
    ) -> None:
        self.artifacts = artifacts
        self.settings = settings if settings is not None else EvalSettings.from_env()
        self._checkpoints: dict[int, MiniLM] = {}
        self._featurization_backend: tuple[SimilarityEngine, dict[str, int]] | None = None

    @classmethod
    def from_session(
        cls,
        session: "ShardedArtifacts",
        *,
        settings: EvalSettings | None = None,
    ) -> "ExperimentRunner":
        """A runner over a sharded session's merged benchmark view.

        Training, evaluation and featurization run on the merged
        (namespaced) datasets and the concatenated engine exactly as they
        would on a single corpus.  Split-scoped blocking helpers
        (:meth:`blocked_pairwise` …) stay per-shard: offer splits belong
        to the shard that split its own corpus — construct a per-shard
        runner from ``session.shards[i]`` for those.
        """
        return cls(session.merged_artifacts(), settings=settings)

    # ------------------------------------------------------------------ #
    def featurization_backend(self) -> tuple[SimilarityEngine, dict[str, int]]:
        """One corpus-level featurization engine shared by all matchers.

        Reuses the build's :class:`SimilarityEngine` when present (its
        title tokenization is already paid for) and registers the
        description/brand/serialized attribute texts the symbolic matchers
        featurize with.  Attribute token views build lazily on first use
        and are then shared across every dataset, grid cell and seed.
        """
        if self._featurization_backend is None:
            offers = self.artifacts.cleansed.offers
            engine = self.artifacts.engine
            if engine is None or len(engine) != len(offers):
                engine = SimilarityEngine([offer.title for offer in offers])
            if not engine.has_attribute("description"):
                engine.register_attribute(
                    "description", [offer.description for offer in offers]
                )
            if not engine.has_attribute("brand"):
                engine.register_attribute("brand", [offer.brand for offer in offers])
            if not engine.has_attribute(SERIALIZED_ATTRIBUTE):
                engine.register_attribute(
                    SERIALIZED_ATTRIBUTE, [serialize_offer(offer) for offer in offers]
                )
            offer_rows = {
                offer.offer_id: row for row, offer in enumerate(offers)
            }
            self._featurization_backend = (engine, offer_rows)
        return self._featurization_backend

    # ------------------------------------------------------------------ #
    # Blocking-sourced candidates (no materialized pair sets)
    # ------------------------------------------------------------------ #
    def blocked_dataset(
        self,
        entries: list[tuple[str, ProductOffer]],
        name: str,
        *,
        k: int = 10,
        metrics: Sequence[str] | None = None,
    ) -> PairDataset:
        """A labeled pair set blocked from one split's raw offers.

        The split becomes a view over the shared featurization engine and
        its candidate pairs come from the top-``k`` join (union over
        ``metrics``, default all engine metrics) plus the ground-truth
        within-cluster positives — no benchmark pair set is read.
        """
        engine, offer_rows = self.featurization_backend()
        blocker = CandidateBlocker.over_entries(engine, entries, offer_rows)
        if metrics is None:
            metrics = blocker.engine.metric_names
        blocked = blocker.candidates(
            k=k, metrics=metrics, include_group_positives=True
        )
        return blocked.to_dataset(name)

    def blocked_pairwise(
        self,
        corner_cases: CornerCaseRatio,
        dev_size: DevSetSize,
        unseen: UnseenRatio = UnseenRatio.SEEN,
        *,
        k: int = 10,
        metrics: Sequence[str] | None = None,
    ) -> PairwiseTask:
        """One pair-wise variant with all three splits blocked, not read.

        Train, validation and test candidates are generated from the raw
        split offers through the blocking join; the benchmark's
        materialized pair sets are never touched, so this is the path a
        million-offer corpus without pre-built pairs would take.
        """
        split = self.artifacts.splits[corner_cases]
        variant = PairwiseVariant(corner_cases, dev_size, unseen)
        prefix = f"blocked-{variant.name}"
        return PairwiseTask(
            variant=variant,
            train=self.blocked_dataset(
                split.train_offers(dev_size), f"{prefix}-train", k=k, metrics=metrics
            ),
            valid=self.blocked_dataset(
                split.valid_offers(), f"{prefix}-valid", k=k, metrics=metrics
            ),
            test=self.blocked_dataset(
                split.test_offers(unseen), f"{prefix}-test", k=k, metrics=metrics
            ),
        )

    def run_pairwise_from_blocking(
        self,
        systems: tuple[str, ...] = ("word_cooc", "magellan"),
        *,
        k: int = 10,
        metrics: Sequence[str] | None = None,
        progress: bool = False,
    ) -> PairwiseResults:
        """Train/evaluate pair-wise systems on blocking-generated candidates.

        The mirror of :meth:`run_pairwise` for corpora without
        materialized pair sets: every (train, valid, test) cell is blocked
        on demand from the raw split offers.  Each split is blocked at
        most once across systems, seeds and unseen ratios — train/valid
        depend only on (cc, dev); only the test split varies with the
        unseen ratio.
        """
        settings = self.settings
        results = PairwiseResults()
        train_sets: dict[tuple[CornerCaseRatio, DevSetSize], PairDataset] = {}
        valid_sets: dict[CornerCaseRatio, PairDataset] = {}
        test_sets: dict[tuple[CornerCaseRatio, UnseenRatio], PairDataset] = {}

        def fit_sets_for(cc, dev):
            split = self.artifacts.splits[cc]
            if (cc, dev) not in train_sets:
                train_sets[(cc, dev)] = self.blocked_dataset(
                    split.train_offers(dev),
                    f"blocked-{cc.label}-{dev.value}-train",
                    k=k,
                    metrics=metrics,
                )
            if cc not in valid_sets:
                valid_sets[cc] = self.blocked_dataset(
                    split.valid_offers(), f"blocked-{cc.label}-valid", k=k, metrics=metrics
                )
            return train_sets[(cc, dev)], valid_sets[cc]

        def test_set_for(cc, unseen):
            key = (cc, unseen)
            if key not in test_sets:
                split = self.artifacts.splits[cc]
                test_sets[key] = self.blocked_dataset(
                    split.test_offers(unseen),
                    f"blocked-{cc.label}-test-{unseen.label.lower()}",
                    k=k,
                    metrics=metrics,
                )
            return test_sets[key]

        for system in systems:
            for corner_cases, dev_size in settings.resolved_pairwise_cells():
                per_unseen: dict[UnseenRatio, list[PRF1]] = {
                    unseen: [] for unseen in settings.unseen_ratios
                }
                for seed in settings.seeds:
                    matcher = self.make_pairwise(system, seed)
                    train, valid = fit_sets_for(corner_cases, dev_size)
                    matcher.fit(train, valid)
                    for unseen in settings.unseen_ratios:
                        variant = PairwiseVariant(corner_cases, dev_size, unseen)
                        test = test_set_for(corner_cases, unseen)
                        score = matcher.evaluate(test)
                        per_unseen[unseen].append(score)
                        results.per_seed[(system, variant, seed)] = score
                for unseen in settings.unseen_ratios:
                    variant = PairwiseVariant(corner_cases, dev_size, unseen)
                    results.scores[(system, variant)] = _mean_prf1(per_unseen[unseen])
                    if progress:
                        score = results.scores[(system, variant)]
                        print(
                            f"  {system:10s} {variant.name:24s} "
                            f"F1={score.f1 * 100:.2f} (blocked)",
                            flush=True,
                        )
        return results

    # ------------------------------------------------------------------ #
    def checkpoint(self, seed: int) -> MiniLM:
        """The pretrained encoder checkpoint (RoBERTa-base analog).

        Built once per seed on corpus clusters that are never part of the
        benchmark, then shared by all neural matchers — mirroring how every
        system in the paper starts from the same public checkpoint.
        """
        if seed not in self._checkpoints:
            # Same serialization as the fine-tuned matchers, so the
            # checkpoint's input distribution matches fine-tuning.
            clusters = self.artifacts.pretraining_clusters(
                serializer=lambda offer: serialize_offer(
                    offer, include_description=False
                )
            )
            texts = [text for _, _, cluster_texts in clusters for text in cluster_texts]
            lm = MiniLM(seed=seed)
            lm.pretrain(texts, steps=self.settings.mlm_steps)
            lm.pretrain_matching(
                clusters,
                steps=self.settings.matching_steps,
                pairs_per_side=48,
                peak_lr=3e-3,
                hard_negative_rate=0.6,
            )
            self._checkpoints[seed] = lm
        return self._checkpoints[seed]

    def _train_settings(self) -> TrainSettings:
        return TrainSettings(step_budget=self.settings.step_budget)

    def make_pairwise(self, system: str, seed: int) -> PairwiseMatcher:
        """Instantiate one pair-wise matching system.

        The symbolic systems featurize through the shared corpus-level
        engine, so they never re-tokenize an offer that any other matcher
        (or dataset) has already touched.
        """
        if system == "word_cooc":
            engine, offer_rows = self.featurization_backend()
            return WordCoocMatcher(seed=seed, engine=engine, offer_rows=offer_rows)
        if system == "magellan":
            engine, offer_rows = self.featurization_backend()
            return MagellanMatcher(seed=seed, engine=engine, offer_rows=offer_rows)
        if system == "roberta":
            return TransformerMatcher(
                settings=self._train_settings(), pretrained=self.checkpoint(seed), seed=seed
            )
        if system == "ditto":
            return DittoMatcher(
                settings=self._train_settings(), pretrained=self.checkpoint(seed), seed=seed
            )
        if system == "hiergat":
            matcher = HierGATMatcher(seed=seed)
            matcher.pretrained = self.checkpoint(seed)
            return matcher
        if system == "rsupcon":
            return RSupConMatcher(
                settings=self._train_settings(),
                pretrain_epochs=self.settings.pretrain_epochs,
                pretrained=self.checkpoint(seed),
                seed=seed,
            )
        raise ValueError(f"unknown pair-wise system: {system!r}")

    def make_multiclass(self, system: str, seed: int) -> MulticlassMatcher:
        """Instantiate one multi-class matching system."""
        if system == "word_occ":
            return WordOccurrenceClassifier(seed=seed)
        if system == "roberta":
            return TransformerMulticlass(
                settings=self._train_settings(), pretrained=self.checkpoint(seed), seed=seed
            )
        if system == "rsupcon":
            return RSupConMulticlass(
                settings=self._train_settings(),
                pretrain_epochs=self.settings.pretrain_epochs,
                pretrained=self.checkpoint(seed),
                seed=seed,
            )
        raise ValueError(f"unknown multi-class system: {system!r}")

    # ------------------------------------------------------------------ #
    def run_pairwise(
        self,
        systems: tuple[str, ...] = PAIRWISE_SYSTEMS,
        *,
        progress: bool = False,
    ) -> PairwiseResults:
        """Train each system per (cc, dev, seed); evaluate on all test sets."""
        settings = self.settings
        benchmark = self.artifacts.benchmark
        results = PairwiseResults()
        for system in systems:
            for corner_cases, dev_size in settings.resolved_pairwise_cells():
                per_unseen: dict[UnseenRatio, list[PRF1]] = {
                    unseen: [] for unseen in settings.unseen_ratios
                }
                for seed in settings.seeds:
                    matcher = self.make_pairwise(system, seed)
                    task = benchmark.pairwise(corner_cases, dev_size, UnseenRatio.SEEN)
                    matcher.fit(task.train, task.valid)
                    for unseen in settings.unseen_ratios:
                        variant = PairwiseVariant(corner_cases, dev_size, unseen)
                        test = benchmark.test_sets[(corner_cases, unseen)]
                        score = matcher.evaluate(test)
                        per_unseen[unseen].append(score)
                        results.per_seed[(system, variant, seed)] = score
                for unseen in settings.unseen_ratios:
                    variant = PairwiseVariant(corner_cases, dev_size, unseen)
                    results.scores[(system, variant)] = _mean_prf1(per_unseen[unseen])
                    if progress:
                        score = results.scores[(system, variant)]
                        print(
                            f"  {system:10s} {variant.name:24s} "
                            f"F1={score.f1 * 100:.2f}",
                            flush=True,
                        )
        return results

    def run_multiclass(
        self,
        systems: tuple[str, ...] = MULTICLASS_SYSTEMS,
        *,
        progress: bool = False,
    ) -> MulticlassResults:
        """Train/evaluate the multi-class systems over their 9 variants."""
        settings = self.settings
        benchmark = self.artifacts.benchmark
        results = MulticlassResults()
        for system in systems:
            for corner_cases, dev_size in settings.resolved_multiclass_cells():
                variant = MulticlassVariant(corner_cases, dev_size)
                scores: list[float] = []
                for seed in settings.seeds:
                    matcher = self.make_multiclass(system, seed)
                    task = benchmark.multiclass(variant.corner_cases, variant.dev_size)
                    matcher.fit(task.train, task.valid)
                    scores.append(matcher.evaluate(task.test))
                results.scores[(system, variant)] = float(np.mean(scores))
                if progress:
                    print(
                        f"  {system:10s} {variant.name:16s} "
                        f"micro-F1={results.scores[(system, variant)] * 100:.2f}",
                        flush=True,
                    )
        return results
