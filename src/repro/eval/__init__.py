"""The Section-5 experimental harness.

``ExperimentRunner`` trains matchers over the benchmark grid (averaging
seeds, reusing each trained model across the three test sets) and the
``experiments``/``reporting`` modules turn its results into the paper's
Tables 3-5 and Figures 4-6.  ``comparison`` regenerates the benchmark-
landscape Table 6.
"""

from repro.eval.runner import (
    EvalSettings,
    ExperimentRunner,
    MulticlassResults,
    PairwiseResults,
)
from repro.eval.experiments import run_table3_and_4, run_table5
from repro.eval.reporting import (
    figure_series,
    format_figure,
    format_table3,
    format_table4,
    format_table5,
)
from repro.eval.comparison import TABLE6_ROWS, table6_rows

__all__ = [
    "EvalSettings",
    "ExperimentRunner",
    "PairwiseResults",
    "MulticlassResults",
    "run_table3_and_4",
    "run_table5",
    "figure_series",
    "format_figure",
    "format_table3",
    "format_table4",
    "format_table5",
    "TABLE6_ROWS",
    "table6_rows",
]
