"""Blocking recall against materialized benchmark pair sets.

Blocking only helps if the candidate join actually surfaces the pairs the
benchmark would have materialized: every within-cluster positive, and the
corner-case negatives the pair generator picks as each offer's most
similar cross-cluster offers.  :func:`blocking_recall` measures exactly
that — the fraction of a reference :class:`~repro.core.datasets.PairDataset`
recovered by a :class:`~repro.blocking.candidates.BlockedPairSet`, broken
down by the reference pairs' provenance.  Random negatives are reported
too but are *expected* to be missed (they are drawn uniformly, not by
similarity); the headline numbers are ``positive_recall`` and
``corner_negative_recall``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.candidates import BlockedPairSet
from repro.core.datasets import PairDataset

__all__ = ["BlockingRecallReport", "blocking_recall"]


@dataclass(frozen=True)
class BlockingRecallReport:
    """Recovered/total reference pairs, overall and per provenance."""

    reference: str
    k: int
    metrics: tuple[str, ...]
    n_candidate_pairs: int
    per_provenance: dict[str, tuple[int, int]]  # provenance -> (hit, total)

    def recall(self, provenance: str | None = None) -> float:
        """Recovered fraction for one provenance (or all pairs)."""
        if provenance is not None:
            hit, total = self.per_provenance.get(provenance, (0, 0))
        else:
            hit = sum(h for h, _ in self.per_provenance.values())
            total = sum(t for _, t in self.per_provenance.values())
        return hit / total if total else 1.0

    @property
    def positive_recall(self) -> float:
        return self.recall("positive")

    @property
    def corner_negative_recall(self) -> float:
        return self.recall("corner_negative")

    def as_dict(self) -> dict:
        """JSON-friendly form (benchmark artifacts, CI uploads)."""
        return {
            "reference": self.reference,
            "k": self.k,
            "metrics": list(self.metrics),
            "n_candidate_pairs": self.n_candidate_pairs,
            "per_provenance": {
                provenance: {"hit": hit, "total": total}
                for provenance, (hit, total) in sorted(self.per_provenance.items())
            },
            "positive_recall": self.positive_recall,
            "corner_negative_recall": self.corner_negative_recall,
            "overall_recall": self.recall(),
        }


def blocking_recall(
    blocked: "BlockedPairSet | object", reference: PairDataset
) -> BlockingRecallReport:
    """How much of ``reference`` the blocked candidate set recovers.

    Pairs are matched on unordered offer-id keys, so the comparison is
    independent of row order and of which side was the blocking query.
    ``blocked`` may be any candidate set exposing ``pair_keys()``, ``k``,
    ``metrics`` and ``__len__`` — a single sweep's
    :class:`~repro.blocking.candidates.BlockedPairSet` or the merged
    per-shard + cross-shard set of a
    :class:`~repro.shard.ShardedBenchmarkSession`
    (:class:`~repro.shard.merge.MergedCandidates`); for a merged set the
    reference should be the correspondingly namespaced merged benchmark
    dataset.
    """
    candidate_keys = blocked.pair_keys()
    per_provenance: dict[str, list[int]] = {}
    for pair in reference:
        provenance = pair.provenance or "unknown"
        hit_total = per_provenance.setdefault(provenance, [0, 0])
        hit_total[1] += 1
        if pair.key() in candidate_keys:
            hit_total[0] += 1
    return BlockingRecallReport(
        reference=reference.name,
        k=blocked.k,
        metrics=blocked.metrics,
        n_candidate_pairs=len(blocked),
        per_provenance={
            provenance: (hit, total)
            for provenance, (hit, total) in per_provenance.items()
        },
    )
