"""Candidate blocking over the similarity engine (no materialized pairs)."""

from repro.blocking.candidates import BlockedPair, BlockedPairSet, CandidateBlocker
from repro.blocking.recall import BlockingRecallReport, blocking_recall

__all__ = [
    "BlockedPair",
    "BlockedPairSet",
    "CandidateBlocker",
    "BlockingRecallReport",
    "blocking_recall",
]
