"""Engine-backed candidate blocking (the materialization-free pair source).

The paper's benchmark hands every matcher pre-materialized pair sets; this
module is the stage that removes that requirement.  A
:class:`CandidateBlocker` runs a batched top-k sparse join over a
:class:`~repro.similarity.engine.SimilarityEngine`'s token-incidence
matrix — chunked sparse row products, so the dense score block stays
bounded no matter how many offers are blocked — and yields a
:class:`BlockedPairSet` of scored candidate pairs with per-metric
provenance.  Same-cluster candidates can be kept (matcher training wants
the positives *and* the hard cross-cluster negatives the join surfaces) or
excluded by integer group id, compared chunk by chunk instead of through
the dense ``(queries, universe)`` boolean mask the pair generator used to
build.

Blocked candidates label themselves from cluster identity, so
``BlockedPairSet.to_dataset`` produces a normal
:class:`~repro.core.datasets.PairDataset` any pair-wise matcher can train
and evaluate on — see
:meth:`repro.eval.runner.ExperimentRunner.run_pairwise_from_blocking`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.datasets import LabeledPair, PairDataset
from repro.corpus.schema import ProductOffer
from repro.similarity.engine import SimilarityEngine

__all__ = ["BlockedPair", "BlockedPairSet", "CandidateBlocker"]


@dataclass(frozen=True)
class BlockedPair:
    """One candidate pair surfaced by blocking.

    ``query_row``/``rank`` record provenance: the pair first appeared as
    the ``rank``-th candidate (0-based) of ``query_row``'s top-k list
    under ``metric``.  ``row_a < row_b`` always; ``score`` is the
    similarity under the surfacing metric.
    """

    row_a: int
    row_b: int
    score: float
    metric: str
    query_row: int
    rank: int


class BlockedPairSet:
    """The deduplicated candidate pairs of one blocking sweep."""

    def __init__(
        self,
        blocker: "CandidateBlocker",
        pairs: list[BlockedPair],
        *,
        k: int,
        metrics: tuple[str, ...],
        n_queries: int,
    ) -> None:
        self.blocker = blocker
        self.pairs = pairs
        self.k = k
        self.metrics = metrics
        self.n_queries = n_queries

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[BlockedPair]:
        return iter(self.pairs)

    def pair_keys(self) -> set[tuple[str, str]]:
        """Unordered offer-id keys, comparable to ``LabeledPair.key()``."""
        ids = self.blocker.offer_ids
        if ids is None:
            raise ValueError("blocker was built without offers")
        keys: set[tuple[str, str]] = set()
        for pair in self.pairs:
            a, b = ids[pair.row_a], ids[pair.row_b]
            keys.add((a, b) if a <= b else (b, a))
        return keys

    def to_dataset(self, name: str) -> PairDataset:
        """Label candidates from cluster identity into a ``PairDataset``.

        Pairs keep their surfacing order; provenance records the metric
        (``"blocking:cosine"`` …) so downstream profiling can distinguish
        blocked pairs from materialized ones.
        """
        offers = self.blocker.offers
        labels = self.blocker.group_labels
        if offers is None or labels is None:
            raise ValueError(
                "to_dataset needs a blocker built with offers and group labels"
            )
        dataset = PairDataset(name=name)
        dataset.pairs = [
            LabeledPair(
                pair_id=f"{name}-{position:06d}",
                offer_a=offers[pair.row_a],
                offer_b=offers[pair.row_b],
                label=int(labels[pair.row_a] == labels[pair.row_b]),
                provenance=f"blocking:{pair.metric}",
            )
            for position, pair in enumerate(self.pairs)
        ]
        return dataset

    def summary(self) -> dict[str, int]:
        labels = self.blocker.group_labels
        positives = 0
        if labels is not None:
            positives = sum(
                1
                for pair in self.pairs
                if labels[pair.row_a] == labels[pair.row_b]
            )
        return {
            "all": len(self.pairs),
            "pos": positives,
            "neg": len(self.pairs) - positives,
        }

    def with_group_positives(self) -> "BlockedPairSet":
        """This set plus every within-group pair the join did not surface.

        The completion that ``candidates(include_group_positives=True)``
        applies, factored out so one raw join can serve both the gated
        join-only recall recording and the training-shaped completed set
        without running the top-k sweep twice.  Returns a new set; pairs
        keep their order with the completed positives appended (metric
        ``"group"``, rank ``-1``, cosine score), exactly as the inline
        completion has always ordered them.
        """
        blocker = self.blocker
        group_ids = blocker._group_ids
        if group_ids is None:
            raise ValueError("with_group_positives needs group labels")
        seen = {
            key
            for pair in self.pairs
            if (key := blocker._pair_key(pair.row_a, pair.row_b)) is not None
        }
        pairs = list(self.pairs)
        members_by_group: dict[int, list[int]] = {}
        for row, group in enumerate(group_ids):
            members_by_group.setdefault(int(group), []).append(row)
        missing: list[tuple[int, int]] = []
        for group in sorted(members_by_group):
            members = members_by_group[group]
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    key = blocker._pair_key(a, b)
                    if key is not None and key not in seen:
                        seen.add(key)
                        missing.append((a, b))
        if missing:
            scores = blocker.engine.pair_features_batch(
                missing, metrics=("cosine",)
            )[:, 0]
            pairs.extend(
                BlockedPair(
                    row_a=a,
                    row_b=b,
                    score=float(score),
                    metric="group",
                    query_row=a,
                    rank=-1,
                )
                for (a, b), score in zip(missing, scores)
            )
        return BlockedPairSet(
            blocker,
            pairs,
            k=self.k,
            metrics=self.metrics,
            n_queries=self.n_queries,
        )


class CandidateBlocker:
    """Batched top-k candidate join over one engine's title universe.

    ``offers`` and ``group_labels`` (one cluster/product label per engine
    row) are optional: without them the blocker still yields row-indexed
    pairs, but labeling (``to_dataset``) and offer-id keying
    (``pair_keys``) need them.

    When the engine's universe spans *multiple corpora* (e.g. a
    :meth:`SimilarityEngine.concat` over several shards' engines), offer
    ids and cluster labels must be globally namespaced by the caller
    (``s<shard>:<id>``): raw per-corpus ids collide across shards, which
    would both merge unrelated clusters into one group id and make the
    offer-identity dedup treat distinct offers as duplicates of each
    other.  See :mod:`repro.shard` for the namespacing helpers.
    """

    def __init__(
        self,
        engine: SimilarityEngine,
        *,
        offers: Sequence[ProductOffer] | None = None,
        group_labels: Sequence[str] | None = None,
    ) -> None:
        if offers is not None and len(offers) != len(engine):
            raise ValueError(
                f"{len(offers)} offers for an engine of {len(engine)} rows"
            )
        if group_labels is not None and len(group_labels) != len(engine):
            raise ValueError(
                f"{len(group_labels)} group labels for an engine of "
                f"{len(engine)} rows"
            )
        self.engine = engine
        self.offers = None if offers is None else list(offers)
        self.group_labels = None if group_labels is None else list(group_labels)
        self.offer_ids = (
            None
            if self.offers is None
            else [offer.offer_id for offer in self.offers]
        )
        self._group_ids: np.ndarray | None = (
            None
            if self.group_labels is None
            else np.unique(np.asarray(self.group_labels), return_inverse=True)[1]
        )
        # Candidate pairs dedup on *offer identity* when known: a split
        # carrying the same offer id on two rows must neither pair an
        # offer with itself nor emit the same offer pair twice.  Without
        # offer ids, row identity is the best available key.
        if self.offer_ids is not None:
            interned: dict[str, int] = {}
            self._pair_keys_by_row = np.array(
                [
                    interned.setdefault(offer_id, len(interned))
                    for offer_id in self.offer_ids
                ],
                dtype=np.intp,
            )
            self._key_span = len(interned)
        else:
            self._pair_keys_by_row = np.arange(len(engine), dtype=np.intp)
            self._key_span = len(engine)

    @classmethod
    def over_entries(
        cls,
        engine: SimilarityEngine,
        entries: Sequence[tuple[str, ProductOffer]],
        offer_rows: dict[str, int],
    ) -> "CandidateBlocker":
        """A blocker over one split's ``(cluster_id, offer)`` entries.

        The split becomes a cheap :meth:`SimilarityEngine.view` over the
        corpus-level engine — no re-tokenization — and candidates are
        confined to the split, so blocked training pairs can never leak
        offers from another split.
        """
        rows = [offer_rows[offer.offer_id] for _, offer in entries]
        return cls(
            engine.view(rows),
            offers=[offer for _, offer in entries],
            group_labels=[cluster_id for cluster_id, _ in entries],
        )

    def __len__(self) -> int:
        return len(self.engine)

    def _pair_key(self, a: int, b: int) -> int | None:
        """Unordered offer-identity dedup key of rows ``a``/``b``.

        ``None`` when both rows carry the same offer (never a pair).
        """
        row_keys = self._pair_keys_by_row
        key_a, key_b = int(row_keys[a]), int(row_keys[b])
        if key_a == key_b:  # the same offer on both rows
            return None
        return (
            key_a * self._key_span + key_b
            if key_a < key_b
            else key_b * self._key_span + key_a
        )

    def candidates(
        self,
        query_rows: Sequence[int] | None = None,
        *,
        k: int,
        metrics: Sequence[str] = ("cosine",),
        exclude_same_group: bool = False,
        exclude_same_partition: Sequence[int] | np.ndarray | None = None,
        include_group_positives: bool = False,
    ) -> BlockedPairSet:
        """Top-``k`` candidates of every query row under each metric.

        Results merge across metrics and mirrored queries on unordered
        offer-identity pairs (row pairs when the blocker has no offers) —
        a pair surfaced from both sides, under two metrics, or through a
        duplicated offer id appears once, attributed to its first
        surfacing (metrics in the given order, queries in the given
        order, then by rank), and an offer never pairs with its own
        duplicate row.  With ``exclude_same_group`` the query's own
        cluster is masked by group id; the default keeps same-cluster
        candidates, which is what labeled matcher training wants.

        ``exclude_same_partition`` (one integer partition id per universe
        row) restricts every query to candidates from a *different*
        partition: the cross-corpus join, where the universe concatenates
        several shards' rows and only cross-shard pairs are wanted — each
        shard's offers query every other shard's sub-universe, and
        within-shard pairs are left to that shard's own join.  The
        comparison rides the engine's chunked group exclusion, so no
        ``(queries, universe)`` boolean matrix is materialized.

        ``include_group_positives`` appends every within-group pair the
        join did not surface (metric ``"group"``, rank ``-1``, cosine
        score): supervised training data takes its positives from the
        ground-truth clusters and lets the join supply the hard
        negatives, so no positive is ever lost to a low-similarity noise
        offer.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        queries = (
            np.arange(len(self.engine), dtype=np.intp)
            if query_rows is None
            else np.asarray(list(query_rows), dtype=np.intp)
        )
        group_ids = self._group_ids
        if (exclude_same_group or include_group_positives) and group_ids is None:
            raise ValueError(
                "exclude_same_group/include_group_positives need group labels"
            )
        if exclude_same_group and include_group_positives:
            raise ValueError(
                "exclude_same_group and include_group_positives are exclusive"
            )
        partition = None
        if exclude_same_partition is not None:
            if exclude_same_group:
                raise ValueError(
                    "exclude_same_group and exclude_same_partition are "
                    "exclusive (a partition already masks the query's own "
                    "sub-universe, clusters and all)"
                )
            if include_group_positives:
                raise ValueError(
                    "exclude_same_partition and include_group_positives are "
                    "exclusive (groups never span partitions, so completing "
                    "them would re-admit the same-partition pairs the "
                    "restriction excludes)"
                )
            partition = np.asarray(exclude_same_partition).ravel()
            if partition.size != len(self.engine):
                raise ValueError(
                    f"exclude_same_partition covers {partition.size} rows, "
                    f"engine has {len(self.engine)}"
                )

        seen: set[int] = set()
        pair_key = self._pair_key

        exclude_groups = None
        if exclude_same_group:
            exclude_groups = (group_ids[queries], group_ids)
        elif partition is not None:
            exclude_groups = (partition[queries], partition)

        pairs: list[BlockedPair] = []
        for metric in metrics:
            batches = self.engine.top_k_scores_batch(
                queries,
                metric,
                k=k,
                exclude_groups=exclude_groups,
            )
            for query, (chosen, scores) in zip(queries, batches):
                query = int(query)
                for rank, (candidate, score) in enumerate(zip(chosen, scores)):
                    key = pair_key(query, candidate)
                    if key is None or key in seen:
                        continue
                    seen.add(key)
                    a, b = (
                        (query, candidate)
                        if query < candidate
                        else (candidate, query)
                    )
                    pairs.append(
                        BlockedPair(
                            row_a=a,
                            row_b=b,
                            score=float(score),
                            metric=metric,
                            query_row=query,
                            rank=rank,
                        )
                    )
        blocked = BlockedPairSet(
            self,
            pairs,
            k=k,
            metrics=tuple(metrics),
            n_queries=int(queries.size),
        )
        if include_group_positives:
            blocked = blocked.with_group_positives()
        return blocked
