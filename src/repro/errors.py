"""Typed errors for the build pipeline and the shard fault-tolerance layer.

Failure *classification* is what lets a supervisor act sensibly: a worker
crash or a hung build is transient (retry the same config — a seeded
build is deterministic, so the retry reproduces exactly what the lost
attempt would have produced), corner-case exhaustion is a deterministic
property of the data (retrying the same seed fails the same way, so the
retry must respawn the shard's seeds), and anything else is presumed a
code bug (retrying cannot help and only hides the traceback).  The
hierarchy encodes those three classes:

* :class:`CornerSelectionError` — data exhaustion inside product
  selection.  Subclasses :class:`ValueError` so every pre-existing
  ``except ValueError`` caller keeps working, but carries the
  needed/found counts and the corner-case ratio being built so a
  supervisor (or a user reading the message) can tell "the corpus cannot
  sustain this quota" apart from a genuine bug.
* :class:`ShardBuildError` — the supervisor-facing wrapper: shard index,
  attempt number, pipeline stage and elapsed seconds travel with the
  error.  :class:`ShardCrashError` (worker process died / pool broke),
  :class:`ShardTimeoutError` (wall-clock budget exceeded) and
  :class:`ShardRetriesExhaustedError` (budget spent, final state) refine
  it.
* :class:`CheckpointError` — a shard checkpoint that exists but cannot
  be trusted (manifest/payload fingerprint mismatch) when the caller
  asked for strict verification.
* :class:`StoreError` — an on-disk artifact store that refuses to open:
  truncated sidecar, schema-version mismatch, manifest/sha mismatch, or
  a concurrent second writer holding the store's write lock.
* :class:`ServiceError` — the serving layer's family:
  :class:`ServiceOverloadError` (admission queue full — the typed shed
  signal callers are expected to catch and back off on),
  :class:`ServiceDeadlineError` (the request aged past its deadline
  while queued) and :class:`ServiceClosedError` (submitted to a service
  that is not running).

All shard errors cross process boundaries: worker exceptions are
pickled back to the parent by ``concurrent.futures``, so every class
with keyword state defines ``__reduce__``.  The service errors carry
their context in the message only, so default pickling suffices.

:class:`EmbeddingsDroppedWarning` rides along here as the typed signal
for :meth:`SimilarityEngine.concat`'s embedding-dropping behaviour —
the LSA spaces of the input engines are not comparable, so the combined
engine cannot serve ``lsa_embedding``; serving-layer callers either
acknowledge the drop (``strict_embeddings=False``) or turn it into an
error (``strict_embeddings=True``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CornerSelectionError",
    "ShardBuildError",
    "ShardCrashError",
    "ShardTimeoutError",
    "ShardRetriesExhaustedError",
    "CheckpointError",
    "StoreError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceDeadlineError",
    "ServiceClosedError",
    "EmbeddingsDroppedWarning",
]


class ReproError(Exception):
    """Base class of every typed error raised by this package."""


class CornerSelectionError(ReproError, ValueError):
    """Product selection ran out of usable corner-case (or filler) data.

    Raised by :func:`repro.core.selection.select_products` when the
    grouped corpus cannot sustain the requested quota — the "needed 800,
    found 795" failure mode of scaled-up single-corpus builds.  This is
    *data exhaustion*, not a code bug: the same seed deterministically
    fails again, which is why shard supervisors respond by respawning
    the shard's seeds instead of retrying verbatim.

    Subclasses :class:`ValueError` for backward compatibility with every
    caller written against the untyped raise.
    """

    def __init__(
        self,
        message: str,
        *,
        needed: int | None = None,
        found: int | None = None,
        part: str | None = None,
        corner_case_ratio: float | None = None,
        kind: str = "corner",
    ) -> None:
        super().__init__(message)
        self.needed = needed
        self.found = found
        self.part = part
        self.corner_case_ratio = corner_case_ratio
        self.kind = kind

    def __reduce__(self):
        return (
            _rebuild_corner_selection_error,
            (
                self.args[0] if self.args else "",
                self.needed,
                self.found,
                self.part,
                self.corner_case_ratio,
                self.kind,
            ),
        )


def _rebuild_corner_selection_error(
    message, needed, found, part, corner_case_ratio, kind
):
    return CornerSelectionError(
        message,
        needed=needed,
        found=found,
        part=part,
        corner_case_ratio=corner_case_ratio,
        kind=kind,
    )


class ShardBuildError(ReproError):
    """A shard build attempt failed.

    Carries everything a supervisor's ledger needs: which shard, which
    attempt (1-based), the pipeline stage the failure is attributed to,
    and the attempt's elapsed wall-clock seconds.  The underlying
    exception, when one exists, rides along as ``__cause__``.
    """

    def __init__(
        self,
        message: str = "",
        *,
        shard: int | None = None,
        attempt: int | None = None,
        stage: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempt = attempt
        self.stage = stage
        self.elapsed = elapsed

    def __reduce__(self):
        return (
            _rebuild_shard_build_error,
            (
                type(self),
                self.args[0] if self.args else "",
                self.shard,
                self.attempt,
                self.stage,
                self.elapsed,
            ),
        )


def _rebuild_shard_build_error(cls, message, shard, attempt, stage, elapsed):
    return cls(
        message, shard=shard, attempt=attempt, stage=stage, elapsed=elapsed
    )


class ShardCrashError(ShardBuildError):
    """The shard's worker died (broken process pool or simulated crash).

    Transient by classification: the attempt never reported a result, so
    retrying the *same* config reproduces exactly the build the crash
    interrupted.  Note that one crashed worker breaks the whole pool —
    sibling shards in flight surface as :class:`ShardCrashError` too and
    are retried the same way.
    """


class ShardTimeoutError(ShardBuildError):
    """The shard build exceeded its wall-clock budget.

    Transient by classification (a hung worker, an overloaded machine):
    the retry reuses the same config.  Process executors enforce the
    budget preemptively (the hung worker is terminated with the pool);
    serial and thread executors cannot preempt a running build and
    classify post-hoc on the attempt's measured elapsed time.
    """


class ShardRetriesExhaustedError(ShardBuildError):
    """A shard failed every attempt its retry budget allowed.

    The final classification of a failed shard; ``__cause__`` is the
    last attempt's error.  Under ``failure_policy="raise"`` the session
    surfaces this, under ``"degrade"`` it is recorded in the
    :class:`~repro.shard.supervisor.SessionHealth` report instead.
    """


class CheckpointError(ReproError):
    """A shard checkpoint exists but failed verification."""


class StoreError(ReproError):
    """An on-disk artifact store cannot be opened (or written) safely.

    Raised by :mod:`repro.io.store` when a store is truncated, carries a
    different schema version, fails its streamed sha256 verification, or
    is locked by a concurrent writer.  Session-level callers treat an
    unverifiable store like a missing checkpoint (rebuild the shard);
    strict callers surface this error instead.
    """


class ServiceError(ReproError):
    """Base class of the online match-serving layer's typed errors."""


class ServiceOverloadError(ServiceError):
    """The service's bounded admission queue is full.

    The typed shed signal of :class:`~repro.serve.MatchService`: rather
    than queueing unboundedly (and letting every request's latency grow
    without limit), the service rejects new work at admission once the
    queue is at capacity.  Callers back off and retry; the benchmark's
    shed-rate counter counts exactly these.
    """


class ServiceDeadlineError(ServiceError):
    """The request exceeded its deadline while waiting to be served.

    Raised into the caller's future when the worker dequeues a request
    whose per-query deadline has already passed — stale work is dropped
    instead of scored, so a backlog burns down instead of serving
    answers nobody is waiting for anymore.
    """


class ServiceClosedError(ServiceError):
    """The service is not running (never started, stopping, or stopped)."""


class EmbeddingsDroppedWarning(UserWarning):
    """``SimilarityEngine.concat`` dropped the input engines' embeddings.

    Each input engine's LSA model is fitted on its own corpus, so their
    vectors are not comparable and the combined engine serves the token
    metrics only.  Warned by default; callers silence it by passing
    ``strict_embeddings=False`` (an acknowledged drop) or escalate it to
    a :class:`ValueError` with ``strict_embeddings=True``.
    """
