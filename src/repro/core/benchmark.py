"""The benchmark artifact: 27 pair-wise + 9 multi-class variants."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.datasets import MulticlassDataset, PairDataset
from repro.core.dimensions import (
    ALL_MULTICLASS_VARIANTS,
    ALL_PAIRWISE_VARIANTS,
    CornerCaseRatio,
    DevSetSize,
    MulticlassVariant,
    PairwiseVariant,
    UnseenRatio,
)

__all__ = ["PairwiseTask", "MulticlassTask", "WDCProductsBenchmark"]


@dataclass(frozen=True)
class PairwiseTask:
    """Train/valid/test pair sets for one pair-wise variant."""

    variant: PairwiseVariant
    train: PairDataset
    valid: PairDataset
    test: PairDataset


@dataclass(frozen=True)
class MulticlassTask:
    """Train/valid/test offer sets for one multi-class variant."""

    variant: MulticlassVariant
    train: MulticlassDataset
    valid: MulticlassDataset
    test: MulticlassDataset


@dataclass
class WDCProductsBenchmark:
    """Container with accessors for every variant of the benchmark.

    Internally the benchmark stores nine training sets, nine validation
    sets and nine test sets (per formulation); the 27 pair-wise variants
    are combinations of those, exactly as in the paper.
    """

    train_sets: dict[tuple[CornerCaseRatio, DevSetSize], PairDataset] = field(
        default_factory=dict
    )
    valid_sets: dict[tuple[CornerCaseRatio, DevSetSize], PairDataset] = field(
        default_factory=dict
    )
    test_sets: dict[tuple[CornerCaseRatio, UnseenRatio], PairDataset] = field(
        default_factory=dict
    )
    multiclass_train: dict[tuple[CornerCaseRatio, DevSetSize], MulticlassDataset] = (
        field(default_factory=dict)
    )
    multiclass_valid: dict[CornerCaseRatio, MulticlassDataset] = field(
        default_factory=dict
    )
    multiclass_test: dict[CornerCaseRatio, MulticlassDataset] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------ #
    def pairwise(
        self,
        corner_cases: CornerCaseRatio,
        dev_size: DevSetSize,
        unseen: UnseenRatio,
    ) -> PairwiseTask:
        """One of the 27 pair-wise variants."""
        variant = PairwiseVariant(corner_cases, dev_size, unseen)
        return PairwiseTask(
            variant=variant,
            train=self.train_sets[(corner_cases, dev_size)],
            valid=self.valid_sets[(corner_cases, dev_size)],
            test=self.test_sets[(corner_cases, unseen)],
        )

    def multiclass(
        self, corner_cases: CornerCaseRatio, dev_size: DevSetSize
    ) -> MulticlassTask:
        """One of the 9 multi-class variants."""
        variant = MulticlassVariant(corner_cases, dev_size)
        return MulticlassTask(
            variant=variant,
            train=self.multiclass_train[(corner_cases, dev_size)],
            valid=self.multiclass_valid[corner_cases],
            test=self.multiclass_test[corner_cases],
        )

    def pairwise_tasks(self) -> list[PairwiseTask]:
        return [
            self.pairwise(v.corner_cases, v.dev_size, v.unseen)
            for v in ALL_PAIRWISE_VARIANTS
        ]

    def multiclass_tasks(self) -> list[MulticlassTask]:
        return [
            self.multiclass(v.corner_cases, v.dev_size)
            for v in ALL_MULTICLASS_VARIANTS
        ]

    def unique_offers(self) -> dict[str, object]:
        """All distinct offers across every stored dataset."""
        offers: dict[str, object] = {}
        for dataset in list(self.train_sets.values()) + list(
            self.valid_sets.values()
        ) + list(self.test_sets.values()):
            for offer in dataset.offers():
                offers[offer.offer_id] = offer
        for collection in (self.multiclass_train, self.multiclass_valid, self.multiclass_test):
            for dataset in collection.values():
                for offer in dataset.offers:
                    offers[offer.offer_id] = offer
        return offers
