"""The multi-class formulation (Sections 2 and 3.5).

The multi-class datasets reuse *exactly* the offers of the pair-wise
splits: training offers labeled with their product id, validation and test
offers likewise.  Because every offer belongs to exactly one split, the
pair-wise and multi-class tasks stay comparable — the property the paper
highlights as unique to WDC Products.
"""

from __future__ import annotations

from repro.core.datasets import MulticlassDataset
from repro.core.dimensions import DevSetSize, UnseenRatio
from repro.core.splitting import OfferSplit

__all__ = [
    "build_multiclass_datasets",
    "build_multiclass_eval",
    "build_multiclass_train",
]


def build_multiclass_train(
    split: OfferSplit,
    *,
    dev_size: DevSetSize,
    name_prefix: str = "multiclass",
) -> MulticlassDataset:
    """The multi-class training set for one development-set size."""
    train_entries = split.train_offers(dev_size)
    return MulticlassDataset(
        name=f"{name_prefix}-train-{dev_size.value}",
        offers=[offer for _, offer in train_entries],
        labels=[cluster_id for cluster_id, _ in train_entries],
    )


def build_multiclass_eval(
    split: OfferSplit,
    *,
    name_prefix: str = "multiclass",
) -> tuple[MulticlassDataset, MulticlassDataset]:
    """The (valid, test) multi-class sets — independent of the dev size.

    The test set is always the fully *seen* test set — multi-class
    matching recognizes a previously known set of products, so unseen
    products have no label in the space.
    """
    valid_entries = split.valid_offers()
    test_entries = split.test_offers(UnseenRatio.SEEN)
    valid = MulticlassDataset(
        name=f"{name_prefix}-valid",
        offers=[offer for _, offer in valid_entries],
        labels=[cluster_id for cluster_id, _ in valid_entries],
    )
    test = MulticlassDataset(
        name=f"{name_prefix}-test",
        offers=[offer for _, offer in test_entries],
        labels=[cluster_id for cluster_id, _ in test_entries],
    )
    return valid, test


def build_multiclass_datasets(
    split: OfferSplit,
    *,
    dev_size: DevSetSize,
    name_prefix: str = "multiclass",
) -> tuple[MulticlassDataset, MulticlassDataset, MulticlassDataset]:
    """Return (train, valid, test) multi-class datasets for ``dev_size``."""
    train = build_multiclass_train(split, dev_size=dev_size, name_prefix=name_prefix)
    valid, test = build_multiclass_eval(split, name_prefix=name_prefix)
    return train, valid, test
