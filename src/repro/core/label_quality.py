"""The label-quality study of Section 4.

Two expert annotators check match/non-match labels on a sample of pairs
drawn from all nine test splits: 100/60/40 pairs per corner-case ratio
(balanced positives/negatives), 600 pairs total.  The paper estimates a
noise level of 4.00%/4.17% with a Cohen's kappa of 0.91.

In this reproduction the annotators are *simulated*: the synthetic corpus
records each offer's true product (``true_cluster_id``), so a pair's true
label is known exactly; each annotator reports the true label flipped with
an independent per-annotator error probability.  The study then measures
exactly what the paper's annotators measured — disagreement between
benchmark labels and (imperfect) human judgment, plus inter-annotator
agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import LabeledPair
from repro.core.dimensions import CornerCaseRatio, UnseenRatio
from repro.corpus.schema import ProductOffer
from repro.ml.metrics import cohen_kappa

__all__ = ["LabelQualityStudy", "LabelQualityResult", "true_pair_label"]

_SAMPLES_PER_RATIO = {
    CornerCaseRatio.CC80: 100,
    CornerCaseRatio.CC50: 60,
    CornerCaseRatio.CC20: 40,
}


def true_pair_label(offer_a: ProductOffer, offer_b: ProductOffer) -> int:
    """Ground-truth match label from the generator's provenance."""
    true_a = offer_a.true_cluster_id or offer_a.cluster_id
    true_b = offer_b.true_cluster_id or offer_b.cluster_id
    return int(true_a == true_b)


@dataclass
class LabelQualityResult:
    """Outcome of the study."""

    n_pairs: int
    noise_estimate_annotator_one: float
    noise_estimate_annotator_two: float
    true_noise_rate: float
    kappa: float
    sampled_pairs: list[LabeledPair] = field(default_factory=list)


class LabelQualityStudy:
    """Samples test pairs and simulates two expert annotators."""

    def __init__(
        self,
        *,
        annotator_error: float = 0.02,
        seed: int = 1234,
    ) -> None:
        if not 0.0 <= annotator_error < 0.5:
            raise ValueError("annotator_error must lie in [0, 0.5)")
        self.annotator_error = annotator_error
        self.seed = seed

    def _sample_split(
        self,
        pairs: list[LabeledPair],
        n_samples: int,
        rng: np.random.Generator,
    ) -> list[LabeledPair]:
        """Equal positives and negatives from one test split."""
        positives = [pair for pair in pairs if pair.label == 1]
        negatives = [pair for pair in pairs if pair.label == 0]
        half = n_samples // 2
        chosen: list[LabeledPair] = []
        for pool in (positives, negatives):
            take = min(half, len(pool))
            indices = rng.choice(len(pool), size=take, replace=False)
            chosen.extend(pool[int(i)] for i in indices)
        return chosen

    def run(self, benchmark: WDCProductsBenchmark) -> LabelQualityResult:
        """Execute the full study over all nine test splits."""
        rng = np.random.default_rng(self.seed)
        sampled: list[LabeledPair] = []
        for corner_cases, per_ratio in _SAMPLES_PER_RATIO.items():
            # Three test splits (unseen ratios) exist per corner-case
            # ratio; the per-ratio sample is spread evenly over them.
            # Custom builds may cover a subset of the ratios.
            per_split = max(2, per_ratio // len(UnseenRatio))
            for unseen in UnseenRatio:
                dataset = benchmark.test_sets.get((corner_cases, unseen))
                if dataset is None:
                    continue
                sampled.extend(self._sample_split(dataset.pairs, per_split, rng))
        if not sampled:
            raise ValueError("benchmark contains no test sets to sample")

        benchmark_labels = np.array([pair.label for pair in sampled])
        truth = np.array(
            [true_pair_label(pair.offer_a, pair.offer_b) for pair in sampled]
        )

        def annotate(annotator_rng: np.random.Generator) -> np.ndarray:
            flips = annotator_rng.random(len(truth)) < self.annotator_error
            return np.where(flips, 1 - truth, truth)

        annotator_one = annotate(np.random.default_rng(self.seed + 1))
        annotator_two = annotate(np.random.default_rng(self.seed + 2))

        return LabelQualityResult(
            n_pairs=len(sampled),
            noise_estimate_annotator_one=float(
                np.mean(annotator_one != benchmark_labels)
            ),
            noise_estimate_annotator_two=float(
                np.mean(annotator_two != benchmark_labels)
            ),
            true_noise_rate=float(np.mean(truth != benchmark_labels)),
            kappa=cohen_kappa(annotator_one.tolist(), annotator_two.tolist()),
            sampled_pairs=sampled,
        )
