"""Pair generation (Section 3.6).

For each split (a list of offers with product labels) the generator emits
all positive pairs inside each product cluster, then for every offer a
number of *corner-case negatives* — the most similar offers from other
clusters under a randomly drawn similarity metric — plus one random
negative.  The number of corner negatives per offer depends on the
development-set size (3 large / 2 medium / 1 small); test sets and large
validation sets use the large setting.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

import numpy as np

from repro.core.datasets import LabeledPair, PairDataset
from repro.corpus.schema import ProductOffer
from repro.similarity.embedding import LsaEmbeddingModel
from repro.similarity.engine import SimilarityEngine
from repro.similarity.index import TitleSimilaritySearch

__all__ = ["generate_pairs"]

# Largest flat dedup mirror (id_span² boolean cells) the generator will
# allocate for vectorized candidate consumption; larger splits keep the
# set-only scalar path.  1 << 26 cells is a 64 MB array at ~8k offers.
_DENSE_DEDUP_CELLS = 1 << 26


def generate_pairs(
    entries: list[tuple[str, ProductOffer]],
    *,
    name: str,
    corner_negatives_per_offer: int,
    random_negatives_per_offer: int = 1,
    rng: np.random.Generator,
    embedding_model: LsaEmbeddingModel | None = None,
    engine: SimilarityEngine | None = None,
    offer_rows: dict[str, int] | None = None,
) -> PairDataset:
    """Generate the labeled pair set for one split.

    ``entries`` are ``(cluster_id, offer)`` tuples; offers of the same
    cluster produce positives, offers of different clusters negatives.
    With ``engine`` and ``offer_rows`` (offer id → engine row) the split's
    similarity index is a cheap view over the shared corpus-level engine;
    otherwise a standalone index is built from the split's titles.
    """
    if corner_negatives_per_offer < 0 or random_negatives_per_offer < 0:
        raise ValueError("negative counts must be non-negative")

    offers = [offer for _, offer in entries]
    cluster_ids = [cluster_id for cluster_id, _ in entries]
    if engine is not None and offer_rows is not None:
        index = TitleSimilaritySearch.over_view(
            engine, [offer_rows[offer.offer_id] for offer in offers]
        )
    else:
        index = TitleSimilaritySearch(
            [offer.title for offer in offers], embedding_model=embedding_model
        )
    metric_names = index.metric_names

    # Dedup runs on sorted integer pair keys (offer ids interned to dense
    # ints) and pair materialization is deferred: the hot loops only touch
    # int tuples, and the LabeledPair objects are built in one final pass.
    # ``used_dense`` mirrors ``used_keys`` as a flat boolean array so the
    # corner-negative consumption can test candidate batches with one NumPy
    # mask instead of per-candidate Python calls; splits too large for the
    # dense mirror fall back to the scalar loop.
    id_index: dict[str, int] = {}
    offer_keys = [
        id_index.setdefault(offer.offer_id, len(id_index)) for offer in offers
    ]
    id_span = len(id_index)
    offer_key_array = np.asarray(offer_keys, dtype=np.intp)
    used_keys: set[int] = set()
    used_dense: np.ndarray | None = (
        np.zeros(id_span * id_span, dtype=bool)
        if id_span * id_span <= _DENSE_DEDUP_CELLS
        else None
    )
    added: list[tuple[int, int, int, str]] = []
    negatives = 0

    def add_pair(a: int, b: int, label: int, provenance: str) -> bool:
        nonlocal negatives
        key_a, key_b = offer_keys[a], offer_keys[b]
        if key_a == key_b:  # the same offer on both sides
            return False
        key = key_a * id_span + key_b if key_a < key_b else key_b * id_span + key_a
        if key in used_keys:
            return False
        used_keys.add(key)
        if used_dense is not None:
            used_dense[key] = True
        added.append((a, b, label, provenance))
        if label == 0:
            negatives += 1
        return True

    def consume_corner_candidates(
        position: int, candidates: list[int], start: int, need: int
    ) -> int:
        """Add up to ``need`` unused candidates from ``candidates[start:]``.

        The vectorized equivalent of calling :func:`add_pair` candidate by
        candidate: pair keys, dedup membership and first-occurrence-within-
        batch handling are all NumPy masks, and only the chosen candidates
        mutate the dedup state — exactly the pairs the scalar loop would
        have added, in the same order.
        """
        nonlocal negatives
        assert used_dense is not None
        if need <= 0 or start >= len(candidates):
            return 0
        cand = np.asarray(candidates[start:], dtype=np.intp)
        keys_c = offer_key_array[cand]
        key_q = offer_keys[position]
        lo = np.minimum(keys_c, key_q)
        pair_keys = lo * id_span + (keys_c + key_q - lo)
        usable = (keys_c != key_q) & ~used_dense[pair_keys]
        order = np.flatnonzero(usable)
        if order.size > 1:
            # A pair key duplicated inside the batch (the same offer id
            # under two candidate positions) is used by its first
            # appearance only, as the scalar dedup would have it.
            first = np.unique(pair_keys[order], return_index=True)[1]
            if first.size != order.size:
                keep = np.zeros(order.size, dtype=bool)
                keep[first] = True
                order = order[keep]
        chosen = order[:need]
        for index_chosen in chosen:
            key = int(pair_keys[index_chosen])
            used_keys.add(key)
            used_dense[key] = True
            added.append((position, int(cand[index_chosen]), 0, "corner_negative"))
        negatives += int(chosen.size)
        return int(chosen.size)

    # ---------------------------------------------------------------- #
    # Positives: all offer pairs inside each product cluster.
    # ---------------------------------------------------------------- #
    by_cluster: dict[str, list[int]] = defaultdict(list)
    for position, cluster_id in enumerate(cluster_ids):
        by_cluster[cluster_id].append(position)
    for cluster_id in sorted(by_cluster):
        members = by_cluster[cluster_id]
        for a, b in combinations(members, 2):
            add_pair(a, b, 1, "positive")

    # ---------------------------------------------------------------- #
    # Negatives: per offer, the most similar offers from other clusters
    # under an alternating metric, then random negatives.  The metric is
    # drawn per offer up front, then the top-k searches run as one batch
    # per metric — one sparse-matrix pass instead of one per offer.
    # ---------------------------------------------------------------- #
    cluster_array = np.array(cluster_ids)
    group_ids = np.unique(cluster_array, return_inverse=True)[1]
    n = len(offers)
    cluster_counts: dict[str, int] = defaultdict(int)
    for cluster_id in cluster_ids:
        cluster_counts[cluster_id] += 1
    # Number of distinct cross-cluster pairs the split can ever produce:
    # once ``negatives`` reaches it, every further search or random draw is
    # guaranteed fruitless (all negative pairs are cross-cluster and
    # deduped), so the loops below use it as their exhaustion bound.  The
    # bound counts distinct *offer keys* — the identity ``add_pair`` dedups
    # on — not split positions: a split carrying the same offer id twice
    # must not inflate the bound, or the quota loops below would chase
    # pairs that can never exist and burn their full attempt budgets.
    keys_by_cluster: dict[str, set[int]] = defaultdict(set)
    for cluster_id, key in zip(cluster_ids, offer_keys):
        keys_by_cluster[cluster_id].add(key)
    within_key_pairs: set[tuple[int, int]] = set()
    for members in keys_by_cluster.values():
        within_key_pairs.update(combinations(sorted(members), 2))
    max_cross_pairs = id_span * (id_span - 1) // 2 - len(within_key_pairs)

    base_fetch = corner_negatives_per_offer + 8
    drawn: list[str] = []
    corner_candidates: dict[int, list[int]] = {}
    if corner_negatives_per_offer > 0:
        drawn = [
            metric_names[int(rng.integers(len(metric_names)))] for _ in range(n)
        ]
        positions_by_metric: dict[str, list[int]] = defaultdict(list)
        for position, metric in enumerate(drawn):
            positions_by_metric[metric].append(position)
        for metric in metric_names:
            positions = positions_by_metric.get(metric)
            if not positions:
                continue
            # Same-cluster rows are excluded by group id, compared chunk by
            # chunk inside the engine — no (positions, n) boolean matrix.
            # Over-fetch: some candidates may already be paired (mirrored
            # pairs); the paper then takes "the next most similar pair".
            batches = index.engine.top_k_batch(
                positions,
                metric,
                k=base_fetch,
                exclude_groups=(group_ids[positions], group_ids),
            )
            corner_candidates.update(zip(positions, batches))

    for position in range(n):
        cluster = cluster_ids[position]
        if corner_negatives_per_offer > 0:
            quota = 0
            candidates = corner_candidates[position]
            consumed = 0
            fetch = base_fetch
            # Every search for this offer draws from the same candidate
            # universe: all rows outside its cluster.  Exhaustion is judged
            # against that count, never against the length of one batch —
            # a batch short for any other reason must not skip widening.
            cross_universe = n - cluster_counts[cluster]
            while quota < corner_negatives_per_offer:
                if used_dense is not None:
                    quota += consume_corner_candidates(
                        position,
                        candidates,
                        consumed,
                        corner_negatives_per_offer - quota,
                    )
                else:
                    for candidate in candidates[consumed:]:
                        if add_pair(position, candidate, 0, "corner_negative"):
                            quota += 1
                            if quota >= corner_negatives_per_offer:
                                break
                consumed = len(candidates)
                if quota >= corner_negatives_per_offer:
                    break
                if consumed >= cross_universe:
                    # Every cross-cluster candidate has been seen: truly
                    # exhausted.  (A batch that is merely *short* — fewer
                    # rows than requested without covering the universe —
                    # falls through to the re-query below instead of
                    # silently ending the search.)
                    break
                # The fixed over-fetch was fully consumed by deduped or
                # mirrored pairs: widen the search and take the next most
                # similar offers (top-k ordering is deterministic, so the
                # wider result extends the previous one as a prefix)
                # rather than falling back to random negatives.
                fetch = min(2 * fetch, n)
                candidates = index.engine.top_k(
                    position,
                    drawn[position],
                    k=fetch,
                    exclude=cluster_array == cluster_array[position],
                )
                if len(candidates) <= consumed:
                    break  # the cross-cluster universe itself is exhausted

        added_random = 0
        attempts = 0
        while (
            added_random < random_negatives_per_offer
            and negatives < max_cross_pairs
            and attempts < 50
        ):
            attempts += 1
            candidate = int(rng.integers(n))
            if cluster_ids[candidate] == cluster:
                continue
            if add_pair(position, candidate, 0, "random_negative"):
                added_random += 1

    # Top-up: if dedup against mirrored pairs left an offer short of its
    # negative quota, add random negatives so every split reaches its exact
    # target size (the paper's test sets contain exactly 4,500 pairs).
    target_negatives = n * (corner_negatives_per_offer + random_negatives_per_offer)
    attempts = 0
    while (
        negatives < target_negatives
        and negatives < max_cross_pairs
        and attempts < 50 * n
    ):
        attempts += 1
        a = int(rng.integers(n))
        b = int(rng.integers(n))
        if cluster_ids[a] == cluster_ids[b]:
            continue
        add_pair(a, b, 0, "random_negative")

    dataset = PairDataset(name=name)
    dataset.pairs = [
        LabeledPair(
            pair_id=f"{name}-{position:06d}",
            offer_a=offers[a],
            offer_b=offers[b],
            label=label,
            provenance=provenance,
        )
        for position, (a, b, label, provenance) in enumerate(added)
    ]
    return dataset
