"""The three benchmark dimensions and the 27 variants (Section 2).

* :class:`CornerCaseRatio` — fraction of the 500 selected products that
  have at least four textually highly similar products in the set (80%,
  50%, 20%),
* :class:`UnseenRatio` — fraction of test-set products not represented in
  training/validation (0%, 50%, 100%),
* :class:`DevSetSize` — small/medium/large development sets.

A pair-wise variant fixes all three; a multi-class variant fixes corner-
cases and development size (the unseen dimension is meaningless when the
label space is the set of known products).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CornerCaseRatio",
    "UnseenRatio",
    "DevSetSize",
    "PairwiseVariant",
    "MulticlassVariant",
    "ALL_PAIRWISE_VARIANTS",
    "ALL_MULTICLASS_VARIANTS",
]


class CornerCaseRatio(enum.Enum):
    """Fraction of corner-case products in each 500-product set."""

    CC80 = 0.80
    CC50 = 0.50
    CC20 = 0.20

    @property
    def label(self) -> str:
        return f"{int(self.value * 100)}%"

    @classmethod
    def from_label(cls, label: str) -> "CornerCaseRatio":
        for member in cls:
            if member.label == label:
                return member
        raise ValueError(f"unknown corner-case ratio: {label!r}")


class UnseenRatio(enum.Enum):
    """Fraction of test products replaced with unseen products."""

    SEEN = 0.0
    HALF_SEEN = 0.5
    UNSEEN = 1.0

    @property
    def label(self) -> str:
        return {0.0: "Seen", 0.5: "Half-Seen", 1.0: "Unseen"}[self.value]

    @classmethod
    def from_label(cls, label: str) -> "UnseenRatio":
        for member in cls:
            if member.label == label:
                return member
        raise ValueError(f"unknown unseen ratio: {label!r}")


class DevSetSize(enum.Enum):
    """Development (training + validation) set size."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    @property
    def label(self) -> str:
        return self.value.capitalize()

    @property
    def training_offers_per_product(self) -> int | None:
        """Offers per product in the training split (None = all)."""
        return {"small": 2, "medium": 3, "large": None}[self.value]

    @property
    def corner_negatives_per_offer(self) -> int:
        """Corner-case negatives generated per offer (Section 3.6)."""
        return {"small": 1, "medium": 2, "large": 3}[self.value]


@dataclass(frozen=True)
class PairwiseVariant:
    """One of the 27 pair-wise benchmark variants."""

    corner_cases: CornerCaseRatio
    dev_size: DevSetSize
    unseen: UnseenRatio

    @property
    def name(self) -> str:
        return (
            f"cc{int(self.corner_cases.value * 100)}"
            f"_{self.dev_size.value}"
            f"_unseen{int(self.unseen.value * 100)}"
        )

    def __str__(self) -> str:
        return (
            f"{self.corner_cases.label} corner-cases / {self.dev_size.label} "
            f"dev / {self.unseen.label} test"
        )


@dataclass(frozen=True)
class MulticlassVariant:
    """One of the 9 multi-class benchmark variants."""

    corner_cases: CornerCaseRatio
    dev_size: DevSetSize

    @property
    def name(self) -> str:
        return f"cc{int(self.corner_cases.value * 100)}_{self.dev_size.value}"

    def __str__(self) -> str:
        return f"{self.corner_cases.label} corner-cases / {self.dev_size.label} dev"


ALL_PAIRWISE_VARIANTS: tuple[PairwiseVariant, ...] = tuple(
    PairwiseVariant(cc, dev, unseen)
    for cc in CornerCaseRatio
    for dev in DevSetSize
    for unseen in UnseenRatio
)

ALL_MULTICLASS_VARIANTS: tuple[MulticlassVariant, ...] = tuple(
    MulticlassVariant(cc, dev) for cc in CornerCaseRatio for dev in DevSetSize
)
