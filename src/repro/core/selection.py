"""Product selection along the corner-case dimension (Section 3.4).

For a target corner-case ratio, iterate over the curated DBSCAN groups,
randomly pick a seed product cluster per group, and add its four most
similar product clusters from the same group — alternating randomly between
similarity metrics to avoid selection bias — until the corner-case quota is
met; fill the remainder with random products.  The procedure runs once on
the seen part and once on the unseen part of the grouped corpus.

Scoring routes through the shared :class:`SimilarityEngine`: each cluster
is represented by one engine row (its representative offer), the per-group
candidate slice is ranked in one vectorized call per drawn metric, and the
ranking is cached so repeated draws of the same metric for the same seed
never re-score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.schema import ProductCluster
from repro.errors import CornerSelectionError
from repro.grouping.curation import GroupedCorpus, ProductGroup
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import SimilarityMetric, SimilarityRegistry

__all__ = ["ProductSelection", "select_products"]


def _rank_rows(
    engine: SimilarityEngine,
    query_row: int,
    candidate_rows: list[int],
    metric: SimilarityMetric,
) -> list[tuple[int, float]]:
    """Engine ranking, falling back to the metric's own callable for
    custom metrics the engine does not know."""
    if metric.name in SimilarityEngine.METRICS:
        return engine.rank(query_row, candidate_rows, metric.name)
    return metric.rank(
        engine.titles[query_row], [engine.titles[row] for row in candidate_rows]
    )


@dataclass
class ProductSelection:
    """500 selected product clusters with corner-case annotations."""

    part: str  # "seen" | "unseen"
    corner_case_ratio: float
    clusters: list[ProductCluster] = field(default_factory=list)
    corner_cluster_ids: set[str] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.clusters)

    def is_corner(self, cluster_id: str) -> bool:
        return cluster_id in self.corner_cluster_ids

    @property
    def n_corner(self) -> int:
        return len(self.corner_cluster_ids)

    def cluster_ids(self) -> list[str]:
        return [cluster.cluster_id for cluster in self.clusters]


def _similar_clusters_in_group(
    seed: ProductCluster,
    group: ProductGroup,
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    cluster_rows: dict[str, int],
    *,
    n_similar: int,
    already_selected: set[str],
) -> list[ProductCluster]:
    """The ``n_similar`` most similar unselected clusters to ``seed``.

    Each pick draws a fresh metric from the registry, mirroring the paper's
    "randomly alternating between the most similar examples"; the engine
    ranks the group slice once per distinct metric.
    """
    candidates = [
        cluster
        for cluster in group.clusters
        if cluster.cluster_id != seed.cluster_id
        and cluster.cluster_id not in already_selected
    ]
    if len(candidates) < n_similar:
        return []
    query_row = cluster_rows[seed.cluster_id]
    candidate_rows = [cluster_rows[cluster.cluster_id] for cluster in candidates]
    rankings: dict[str, list[tuple[int, float]]] = {}
    chosen: list[ProductCluster] = []
    chosen_ids: set[str] = set()
    while len(chosen) < n_similar:
        metric = registry.draw()
        ranked = rankings.get(metric.name)
        if ranked is None:
            ranked = _rank_rows(engine, query_row, candidate_rows, metric)
            rankings[metric.name] = ranked
        picked = None
        for index, _score in ranked:
            candidate = candidates[index]
            if candidate.cluster_id not in chosen_ids:
                picked = candidate
                break
        if picked is None:
            return []
        chosen.append(picked)
        chosen_ids.add(picked.cluster_id)
    return chosen


def _local_engine(
    groups: list[ProductGroup], registry: SimilarityRegistry
) -> tuple[SimilarityEngine, dict[str, int]]:
    """A representative-title engine when no corpus-level one is supplied."""
    clusters = [cluster for group in groups for cluster in group.clusters]
    engine = registry.engine_for(
        [cluster.representative_title() for cluster in clusters]
    )
    rows = {cluster.cluster_id: row for row, cluster in enumerate(clusters)}
    return engine, rows


def select_products(
    grouped: GroupedCorpus,
    *,
    part: str,
    corner_case_ratio: float,
    n_products: int = 500,
    n_similar: int = 4,
    registry: SimilarityRegistry,
    rng: np.random.Generator,
    engine: SimilarityEngine | None = None,
    cluster_rows: dict[str, int] | None = None,
) -> ProductSelection:
    """Select ``n_products`` clusters with the requested corner-case ratio.

    ``engine`` and ``cluster_rows`` (cluster id → engine row of the
    cluster's representative offer) let the builder share one corpus-level
    engine across all ratios; without them a local engine over the part's
    representative titles is built on the fly.
    """
    if part not in ("seen", "unseen"):
        raise ValueError(f"part must be 'seen' or 'unseen', got {part!r}")
    if not 0.0 <= corner_case_ratio <= 1.0:
        raise ValueError("corner_case_ratio must lie in [0, 1]")

    groups = list(grouped.useful_groups(part))
    if not groups:
        raise ValueError(f"no useful groups available in part {part!r}")
    if engine is None or cluster_rows is None:
        engine, cluster_rows = _local_engine(groups, registry)
    n_corner_target = int(round(n_products * corner_case_ratio))
    # Round the quota down to a whole number of (seed + n_similar) bundles.
    bundle = n_similar + 1
    n_corner_target = (n_corner_target // bundle) * bundle

    selection = ProductSelection(part=part, corner_case_ratio=corner_case_ratio)
    selected_ids: set[str] = set()

    group_order = [groups[int(i)] for i in rng.permutation(len(groups))]
    cursor = 0
    stalled_rounds = 0
    while len(selection.corner_cluster_ids) < n_corner_target:
        if stalled_rounds > len(group_order):
            raise CornerSelectionError(
                "not enough corner-case products: needed "
                f"{n_corner_target}, found {len(selection.corner_cluster_ids)} "
                f"in part {part!r} (corner-case ratio {corner_case_ratio})",
                needed=n_corner_target,
                found=len(selection.corner_cluster_ids),
                part=part,
                corner_case_ratio=corner_case_ratio,
                kind="corner",
            )
        group = group_order[cursor % len(group_order)]
        cursor += 1

        seeds = [
            cluster
            for cluster in group.clusters
            if cluster.cluster_id not in selected_ids
        ]
        if len(seeds) < bundle:
            stalled_rounds += 1
            continue
        seed = seeds[int(rng.integers(len(seeds)))]
        similar = _similar_clusters_in_group(
            seed,
            group,
            registry,
            engine,
            cluster_rows,
            n_similar=n_similar,
            already_selected=selected_ids | {seed.cluster_id},
        )
        if not similar:
            stalled_rounds += 1
            continue
        stalled_rounds = 0
        for cluster in (seed, *similar):
            selection.clusters.append(cluster)
            selection.corner_cluster_ids.add(cluster.cluster_id)
            selected_ids.add(cluster.cluster_id)

    # Fill the remainder with random products from all useful groups.
    pool = [
        cluster
        for group in groups
        for cluster in group.clusters
        if cluster.cluster_id not in selected_ids
    ]
    n_random = n_products - len(selection.clusters)
    if len(pool) < n_random:
        raise CornerSelectionError(
            f"not enough random products to fill the selection: need "
            f"{n_random}, pool has {len(pool)} (part {part!r}, corner-case "
            f"ratio {corner_case_ratio})",
            needed=n_random,
            found=len(pool),
            part=part,
            corner_case_ratio=corner_case_ratio,
            kind="random_fill",
        )
    for index in rng.permutation(len(pool))[:n_random]:
        cluster = pool[int(index)]
        selection.clusters.append(cluster)
        selected_ids.add(cluster.cluster_id)
    return selection
