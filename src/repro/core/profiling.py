"""Benchmark profiling (Section 4, Tables 1 and 2) and build-stage timing."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.benchmark import WDCProductsBenchmark
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.corpus.schema import ProductOffer
from repro.text.tokenize import tokenize
from repro.text.vocabulary import SubwordTokenizer

__all__ = [
    "Table1Row",
    "table1_statistics",
    "Table2Row",
    "table2_profile",
    "benchmark_totals",
    "StageTimingRow",
    "build_profile",
]


# --------------------------------------------------------------------- #
# Pipeline stage timings
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StageTimingRow:
    """Wall-clock seconds of one named pipeline stage."""

    stage: str
    seconds: float
    share: float  # fraction of the total build time


def build_profile(artifacts) -> list[StageTimingRow]:
    """Per-stage wall-clock profile of a :class:`BuildArtifacts`.

    Stage names containing ``:`` are *nested* breakdowns of a top-level
    stage: ``ratio:*`` rows report each corner-case ratio's own build time
    (with parallel ratio builds their sum can exceed the ``ratios``
    wall-clock, which is the point of running them concurrently) and
    ``cleansing:*`` rows split the cleansing stage into its five §3.2
    sub-stages.  Shares are computed against the sum of the top-level
    stages only; nested rows carry share 0.
    """
    timings: dict[str, float] = getattr(artifacts, "stage_timings", {})
    total = sum(seconds for stage, seconds in timings.items() if ":" not in stage)
    rows = []
    for stage, seconds in timings.items():
        share = seconds / total if total > 0 and ":" not in stage else 0.0
        rows.append(StageTimingRow(stage=stage, seconds=seconds, share=share))
    return rows


# --------------------------------------------------------------------- #
# Table 1 — split sizes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Table1Row:
    """One (type, corner-cases) row of Table 1."""

    split_type: str  # "Training" | "Validation" | "Test"
    corner_cases: str  # "80%" | "50%" | "20%"
    pairwise: dict[str, tuple[int, int, int]]  # size -> (all, pos, neg)
    multiclass: dict[str, int]  # size -> n offers


def _pair_counts(dataset) -> tuple[int, int, int]:
    summary = dataset.summary()
    return summary["all"], summary["pos"], summary["neg"]


def table1_statistics(benchmark: WDCProductsBenchmark) -> list[Table1Row]:
    """Compute every row of Table 1 from a built benchmark.

    Custom builds may cover a subset of the corner-case ratios; only the
    ratios actually present are reported.
    """
    built_ratios = {cc for cc, _ in benchmark.train_sets}
    rows: list[Table1Row] = []
    for corner_cases in CornerCaseRatio:
        if corner_cases not in built_ratios:
            continue
        rows.append(
            Table1Row(
                split_type="Training",
                corner_cases=corner_cases.label,
                pairwise={
                    dev.value: _pair_counts(benchmark.train_sets[(corner_cases, dev)])
                    for dev in DevSetSize
                },
                multiclass={
                    dev.value: len(benchmark.multiclass_train[(corner_cases, dev)])
                    for dev in DevSetSize
                },
            )
        )
        rows.append(
            Table1Row(
                split_type="Validation",
                corner_cases=corner_cases.label,
                pairwise={
                    dev.value: _pair_counts(benchmark.valid_sets[(corner_cases, dev)])
                    for dev in DevSetSize
                },
                multiclass={
                    dev.value: len(benchmark.multiclass_valid[corner_cases])
                    for dev in DevSetSize
                },
            )
        )
        test_counts = _pair_counts(
            benchmark.test_sets[(corner_cases, UnseenRatio.SEEN)]
        )
        rows.append(
            Table1Row(
                split_type="Test",
                corner_cases=corner_cases.label,
                pairwise={dev.value: test_counts for dev in DevSetSize},
                multiclass={
                    dev.value: len(benchmark.multiclass_test[corner_cases])
                    for dev in DevSetSize
                },
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Table 2 — attribute density, length and vocabulary
# --------------------------------------------------------------------- #
_ATTRIBUTES = ("title", "description", "price", "priceCurrency", "brand")


@dataclass(frozen=True)
class Table2Row:
    """One (dev size, corner-cases) row of Table 2."""

    dev_size: str
    corner_cases: str
    n_entities: int
    density: dict[str, float] = field(default_factory=dict)  # percent
    median_length: dict[str, int] = field(default_factory=dict)  # words
    vocabulary_words: int = 0
    vocabulary_tokens: int = 0


def _attribute_value(offer: ProductOffer, attribute: str) -> str | None:
    if attribute == "title":
        return offer.title
    if attribute == "description":
        return offer.description
    if attribute == "price":
        return None if offer.price is None else f"{offer.price}"
    if attribute == "priceCurrency":
        return offer.price_currency
    if attribute == "brand":
        return offer.brand
    raise ValueError(f"unknown attribute: {attribute}")


def _merged_offers(
    benchmark: WDCProductsBenchmark,
    corner_cases: CornerCaseRatio,
    dev_size: DevSetSize,
) -> tuple[list[ProductOffer], int]:
    """All unique offers of the (train, valid, seen-test) merge + #entities."""
    offers: dict[str, ProductOffer] = {}
    entity_ids: set[str] = set()
    train = benchmark.multiclass_train[(corner_cases, dev_size)]
    valid = benchmark.multiclass_valid[corner_cases]
    test = benchmark.multiclass_test[corner_cases]
    for dataset in (train, valid, test):
        for offer, label in zip(dataset.offers, dataset.labels):
            offers[offer.offer_id] = offer
            entity_ids.add(label)
    return list(offers.values()), len(entity_ids)


def table2_profile(
    benchmark: WDCProductsBenchmark,
    *,
    subword_tokenizer: SubwordTokenizer | None = None,
) -> list[Table2Row]:
    """Compute Table 2: density, median lengths, vocabulary per merged set.

    ``subword_tokenizer`` stands in for RoBERTa's vocabulary; when omitted,
    one is trained on all benchmark offer titles/descriptions.
    """
    if subword_tokenizer is None:
        texts: list[str] = []
        for offer in benchmark.unique_offers().values():
            texts.append(offer.title)  # type: ignore[union-attr]
            description = offer.description  # type: ignore[union-attr]
            if description:
                texts.append(description)
        subword_tokenizer = SubwordTokenizer(vocab_size=8192).train(texts)

    rows: list[Table2Row] = []
    for corner_cases in CornerCaseRatio:
        for dev_size in DevSetSize:
            offers, n_entities = _merged_offers(benchmark, corner_cases, dev_size)
            density: dict[str, float] = {}
            median_length: dict[str, int] = {}
            for attribute in _ATTRIBUTES:
                values = [_attribute_value(offer, attribute) for offer in offers]
                filled = [value for value in values if value]
                density[attribute] = (
                    100.0 * len(filled) / len(values) if values else 0.0
                )
                lengths = [len(value.split()) for value in filled]
                median_length[attribute] = (
                    int(statistics.median(lengths)) if lengths else 0
                )

            words: set[str] = set()
            pieces: set[int] = set()
            for offer in offers:
                for text in (offer.title, offer.description or ""):
                    words.update(tokenize(text))
                    pieces.update(subword_tokenizer.encode(text))
            rows.append(
                Table2Row(
                    dev_size=dev_size.label,
                    corner_cases=corner_cases.label,
                    n_entities=n_entities,
                    density=density,
                    median_length=median_length,
                    vocabulary_words=len(words),
                    vocabulary_tokens=len(pieces),
                )
            )
    return rows


def benchmark_totals(benchmark: WDCProductsBenchmark) -> dict[str, int]:
    """Overall counts: unique offers, entities, matches, non-matches.

    These are the WDC-Products row values of Table 6.
    """
    offers = benchmark.unique_offers()
    entities: set[str] = set()
    for collection in (
        benchmark.multiclass_train,
        benchmark.multiclass_valid,
        benchmark.multiclass_test,
    ):
        for dataset in collection.values():
            entities.update(dataset.labels)
    matches = 0
    non_matches = 0
    for datasets in (benchmark.train_sets, benchmark.valid_sets, benchmark.test_sets):
        for dataset in datasets.values():
            summary = dataset.summary()
            matches += summary["pos"]
            non_matches += summary["neg"]
    return {
        "offers": len(offers),
        "entities": len(entities),
        "matches": matches,
        "non_matches": non_matches,
    }
