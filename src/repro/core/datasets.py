"""Dataset containers for the pair-wise and multi-class formulations."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.corpus.schema import ProductOffer

__all__ = ["LabeledPair", "PairDataset", "MulticlassDataset"]


@dataclass(frozen=True)
class LabeledPair:
    """One labeled offer pair.

    ``provenance`` records how the pair was generated ("positive",
    "corner_negative" or "random_negative") — useful for profiling and for
    sampling Figure-1-style examples, but never exposed as a feature.
    """

    pair_id: str
    offer_a: ProductOffer
    offer_b: ProductOffer
    label: int
    provenance: str = ""

    @property
    def is_match(self) -> bool:
        return self.label == 1

    def key(self) -> tuple[str, str]:
        """Unordered pair key for deduplication."""
        a, b = self.offer_a.offer_id, self.offer_b.offer_id
        return (a, b) if a <= b else (b, a)


@dataclass
class PairDataset:
    """A named collection of labeled pairs (one split of one variant)."""

    name: str
    pairs: list[LabeledPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[LabeledPair]:
        return iter(self.pairs)

    def positives(self) -> list[LabeledPair]:
        return [pair for pair in self.pairs if pair.label == 1]

    def negatives(self) -> list[LabeledPair]:
        return [pair for pair in self.pairs if pair.label == 0]

    def labels(self) -> list[int]:
        return [pair.label for pair in self.pairs]

    def offers(self) -> list[ProductOffer]:
        """Unique offers appearing in the dataset."""
        seen: dict[str, ProductOffer] = {}
        for pair in self.pairs:
            seen.setdefault(pair.offer_a.offer_id, pair.offer_a)
            seen.setdefault(pair.offer_b.offer_id, pair.offer_b)
        return list(seen.values())

    def summary(self) -> dict[str, int]:
        positives = len(self.positives())
        return {"all": len(self.pairs), "pos": positives, "neg": len(self.pairs) - positives}


@dataclass
class MulticlassDataset:
    """Offers labeled with their product id (the multi-class formulation)."""

    name: str
    offers: list[ProductOffer] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.offers) != len(self.labels):
            raise ValueError("offers and labels must be aligned")

    def __len__(self) -> int:
        return len(self.offers)

    def label_space(self) -> list[str]:
        return sorted(set(self.labels))

    def titles(self) -> list[str]:
        return [offer.title for offer in self.offers]
