"""End-to-end benchmark construction (the Figure-2 pipeline).

``BenchmarkBuilder`` chains every stage: synthetic corpus generation →
cleansing → grouping/curation → per-corner-case-ratio product selection →
offer splitting → pair generation → multi-class datasets.  The returned
:class:`BuildArtifacts` keeps all intermediate artifacts so profiling
benchmarks and tests can inspect each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cleansing.pipeline import CleansingPipeline, CleansingReport
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.core.multiclass import build_multiclass_datasets
from repro.core.pairs import generate_pairs
from repro.core.selection import ProductSelection, select_products
from repro.core.splitting import OfferSplit, split_offers
from repro.corpus.generator import CorpusConfig, CorpusGenerator, GeneratedCorpus
from repro.corpus.schema import SyntheticCorpus
from repro.grouping.curation import GroupedCorpus, group_products
from repro.similarity.embedding import LsaEmbeddingModel
from repro.similarity.registry import SimilarityRegistry
from repro.utils.rng import RngStream

__all__ = ["BuildConfig", "BuildArtifacts", "BenchmarkBuilder"]

_TEST_CORNER_NEGATIVES = 3  # test & large-validation setting of Section 3.6


@dataclass(frozen=True)
class BuildConfig:
    """Scale parameters of the benchmark build."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    seed: int = 42
    n_products: int = 500
    n_similar: int = 4
    corner_case_ratios: tuple[CornerCaseRatio, ...] = tuple(CornerCaseRatio)

    @classmethod
    def small(cls, *, seed: int = 42) -> "BuildConfig":
        """Reduced configuration for tests: 60 products per set."""
        return cls(corpus=CorpusConfig.small(), seed=seed, n_products=60)


@dataclass
class BuildArtifacts:
    """The benchmark plus every intermediate pipeline artifact."""

    config: BuildConfig
    generated: GeneratedCorpus
    cleansed: SyntheticCorpus
    cleansing_report: CleansingReport
    grouped: GroupedCorpus
    selections: dict[tuple[CornerCaseRatio, str], ProductSelection] = field(
        default_factory=dict
    )
    splits: dict[CornerCaseRatio, OfferSplit] = field(default_factory=dict)
    benchmark: WDCProductsBenchmark = field(default_factory=WDCProductsBenchmark)
    embedding_model: LsaEmbeddingModel | None = None

    def selected_cluster_ids(self) -> set[str]:
        """Products appearing in any selection (any ratio, any part)."""
        selected: set[str] = set()
        for selection in self.selections.values():
            selected.update(selection.cluster_ids())
        return selected

    def pretraining_clusters(
        self, serializer=None
    ) -> list[tuple[str, str, list[str]]]:
        """Identifier clusters usable for checkpoint pre-training.

        Only clusters *never selected* for the benchmark are returned, so a
        checkpoint pretrained on them cannot leak information about any
        benchmark product — in particular the unseen test products stay
        genuinely unseen.  ``serializer`` maps an offer to its text; pass
        the same serializer the downstream matcher uses so the checkpoint's
        training distribution matches fine-tuning (default: brand + title).
        """
        if serializer is None:
            def serializer(offer):
                if offer.brand:
                    return f"{offer.brand} {offer.title}"
                return offer.title

        selected = self.selected_cluster_ids()
        result: list[tuple[str, str, list[str]]] = []
        for cluster in self.cleansed.clusters(min_size=2):
            if cluster.cluster_id in selected:
                continue
            texts = [serializer(offer) for offer in cluster.offers]
            result.append((cluster.cluster_id, cluster.family_id, texts))
        return result


class BenchmarkBuilder:
    """Runs the six pipeline steps of Figure 2."""

    def __init__(self, config: BuildConfig | None = None):
        self.config = config if config is not None else BuildConfig()

    def build(self) -> BuildArtifacts:
        config = self.config
        stream = RngStream(config.seed, "benchmark")

        # Steps 1-2: corpus extraction and cleansing.
        generated = CorpusGenerator(config.corpus).generate()
        pipeline = CleansingPipeline()
        cleansed = pipeline.run(generated.corpus)

        # Step 3: grouping similar products (+ curation).
        grouped = group_products(cleansed)

        # Embedding model for the metric registry, trained on corpus titles
        # (the stand-in for the paper's fastText model).
        embedding_model = LsaEmbeddingModel(dim=32).fit(
            [offer.title for offer in cleansed.offers]
        )

        artifacts = BuildArtifacts(
            config=config,
            generated=generated,
            cleansed=cleansed,
            cleansing_report=pipeline.report,
            grouped=grouped,
            embedding_model=embedding_model,
        )

        # Steps 4-6 per corner-case ratio.
        for corner_cases in config.corner_case_ratios:
            self._build_ratio(artifacts, corner_cases, embedding_model, stream)
        return artifacts

    # ------------------------------------------------------------------ #
    def _build_ratio(
        self,
        artifacts: BuildArtifacts,
        corner_cases: CornerCaseRatio,
        embedding_model: LsaEmbeddingModel,
        stream: RngStream,
    ) -> None:
        config = self.config
        ratio_name = corner_cases.label
        registry = SimilarityRegistry(
            embedding_model=embedding_model,
            rng=stream.generator("registry", ratio_name),
        )

        # Step 4: product selection (seen and unseen sets of n_products).
        selections: dict[str, ProductSelection] = {}
        for part in ("seen", "unseen"):
            selections[part] = select_products(
                artifacts.grouped,
                part=part,
                corner_case_ratio=corner_cases.value,
                n_products=config.n_products,
                n_similar=config.n_similar,
                registry=registry,
                rng=stream.generator("selection", ratio_name, part),
            )
            artifacts.selections[(corner_cases, part)] = selections[part]

        # Step 5: offer splitting (incl. the three test product sets).
        split = split_offers(
            selections["seen"],
            selections["unseen"],
            registry=registry,
            rng=stream.generator("splitting", ratio_name),
        )
        artifacts.splits[corner_cases] = split

        # Step 6: pair generation for every development size and test set.
        benchmark = artifacts.benchmark
        for dev_size in DevSetSize:
            pair_rng = stream.generator("pairs", ratio_name, dev_size.value)
            benchmark.train_sets[(corner_cases, dev_size)] = generate_pairs(
                split.train_offers(dev_size),
                name=f"train-{ratio_name}-{dev_size.value}",
                corner_negatives_per_offer=dev_size.corner_negatives_per_offer,
                rng=pair_rng,
                embedding_model=embedding_model,
            )
            benchmark.valid_sets[(corner_cases, dev_size)] = generate_pairs(
                split.valid_offers(),
                name=f"valid-{ratio_name}-{dev_size.value}",
                corner_negatives_per_offer=dev_size.corner_negatives_per_offer,
                rng=pair_rng,
                embedding_model=embedding_model,
            )
            train, valid, test = build_multiclass_datasets(
                split,
                dev_size=dev_size,
                name_prefix=f"multiclass-{ratio_name}",
            )
            benchmark.multiclass_train[(corner_cases, dev_size)] = train
            benchmark.multiclass_valid[corner_cases] = valid
            benchmark.multiclass_test[corner_cases] = test

        for unseen in UnseenRatio:
            test_rng = stream.generator("pairs", ratio_name, "test", unseen.label)
            benchmark.test_sets[(corner_cases, unseen)] = generate_pairs(
                split.test_offers(unseen),
                name=f"test-{ratio_name}-{unseen.label.lower()}",
                corner_negatives_per_offer=_TEST_CORNER_NEGATIVES,
                rng=test_rng,
                embedding_model=embedding_model,
            )
