"""End-to-end benchmark construction (the Figure-2 pipeline).

The canonical entry point is :func:`build_one_corpus`, a module-level
stage runner that takes one :class:`BuildConfig` and chains every stage as
an explicitly named step:

1. ``corpus``    — synthetic corpus generation,
2. ``cleansing`` — the Section-3.2 cleansing pipeline,
3. ``grouping``  — DBSCAN grouping + curation,
4. ``embedding`` — LSA embedding fit (the fastText stand-in),
5. ``engine``    — the shared :class:`SimilarityEngine` precomputation
   (one tokenization/incidence-matrix/embedding pass for the whole corpus),
6. ``blocking``  — optional (``BuildConfig.blocking_top_k > 0``): the
   corpus-level top-k candidate join producing labeled blocked pairs for
   materialization-free matcher training,
7. ``ratio:*``   — per-corner-case-ratio selection → splitting → pair
   generation → multi-class datasets.

Being module-level (and therefore picklable), :func:`build_one_corpus` is
also the unit of work a :class:`~repro.shard.ShardedBenchmarkSession`
ships to worker *processes* — the corpus-level stages are serial Python,
so the corpus itself is the parallel unit beyond the ratio thread pool.
:class:`BenchmarkBuilder` remains as the single-corpus special case: a
thin compatible wrapper whose ``build()`` delegates here.

The per-ratio builds are mutually independent: each derives its random
streams by name from the master seed and only reads the shared artifacts,
so stage 7 runs them concurrently on a thread pool (the engine's
NumPy/SciPy kernels release the GIL).  Results are merged back in
configuration order, which keeps a seeded build byte-identical whether
parallelism is enabled or not.  Per-stage wall-clock timings are recorded
in :attr:`BuildArtifacts.stage_timings`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.blocking.candidates import BlockedPairSet, CandidateBlocker
from repro.cleansing.pipeline import CleansingPipeline, CleansingReport
from repro.core.benchmark import WDCProductsBenchmark
from repro.core.datasets import MulticlassDataset, PairDataset
from repro.core.dimensions import CornerCaseRatio, DevSetSize, UnseenRatio
from repro.core.multiclass import build_multiclass_eval, build_multiclass_train
from repro.core.pairs import generate_pairs
from repro.core.selection import ProductSelection, select_products
from repro.core.splitting import OfferSplit, split_offers
from repro.corpus.generator import CorpusConfig, CorpusGenerator, GeneratedCorpus
from repro.corpus.schema import SyntheticCorpus
from repro.grouping.curation import GroupedCorpus, group_products
from repro.similarity.embedding import LsaEmbeddingModel
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import SimilarityRegistry, validate_metric_names
from repro.utils.rng import RngStream
from repro.utils.timer import Timer

__all__ = [
    "BuildConfig",
    "BuildArtifacts",
    "BenchmarkBuilder",
    "build_one_corpus",
]

_TEST_CORNER_NEGATIVES = 3  # test & large-validation setting of Section 3.6


@dataclass(frozen=True)
class BuildConfig:
    """Scale parameters of the benchmark build."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    seed: int = 42
    n_products: int = 500
    n_similar: int = 4
    corner_case_ratios: tuple[CornerCaseRatio, ...] = tuple(CornerCaseRatio)
    parallel_ratio_builds: bool = True
    max_workers: int | None = None
    # Bound on the engine's per-corpus Generalized-Jaccard pair cache; the
    # cache is shared (lock-protected) by every concurrent ratio build.
    gj_cache_entries: int = 1 << 20
    # When positive, the build runs an extra timed ``blocking`` stage: a
    # corpus-level top-k candidate join (``CandidateBlocker``) whose
    # blocked pair set is stored on the artifacts for materialization-free
    # matcher training and blocking-recall evaluation.
    blocking_top_k: int = 0
    blocking_metrics: tuple[str, ...] = ("cosine",)
    # Out-of-core artifact store.  With ``store_backend="sqlite"`` and a
    # ``store_dir``, the build runs a final timed ``store`` stage that
    # persists the artifacts into an SQLite + mmap-sidecar store at that
    # directory (see :mod:`repro.io.store`) — the layout shard workers
    # hand back by path instead of pickling artifacts through the pool.
    # The default ``"pickle"`` backend keeps the historical in-memory
    # behaviour (whole-object payloads, no store stage).
    store_dir: str | None = None
    store_backend: str = "pickle"

    def __post_init__(self) -> None:
        validate_metric_names(
            self.blocking_metrics, context="BuildConfig.blocking_metrics"
        )
        if self.store_backend not in ("pickle", "sqlite"):
            raise ValueError(
                f"store_backend must be 'pickle' or 'sqlite', got "
                f"{self.store_backend!r}"
            )
        if self.store_backend == "sqlite" and not self.store_dir:
            raise ValueError("store_backend='sqlite' requires store_dir")

    @classmethod
    def small(cls, *, seed: int = 42, **overrides) -> "BuildConfig":
        """Reduced configuration for tests: 60 products per set.

        ``overrides`` may replace any field.  Explicit overrides always
        win over the small defaults — in particular a caller-supplied
        ``corpus`` is used verbatim instead of the ``CorpusConfig.small()``
        default.
        """
        overrides.setdefault("corpus", CorpusConfig.small())
        overrides.setdefault("n_products", 60)
        overrides.setdefault("seed", seed)
        return cls(**overrides)


@dataclass
class _RatioArtifacts:
    """Everything one corner-case ratio contributes to the benchmark."""

    corner_cases: CornerCaseRatio
    selections: dict[str, ProductSelection]
    split: OfferSplit
    train_sets: dict[DevSetSize, PairDataset]
    valid_sets: dict[DevSetSize, PairDataset]
    test_sets: dict[UnseenRatio, PairDataset]
    multiclass_train: dict[DevSetSize, MulticlassDataset]
    multiclass_valid: MulticlassDataset
    multiclass_test: MulticlassDataset
    elapsed: float


@dataclass
class BuildArtifacts:
    """The benchmark plus every intermediate pipeline artifact."""

    config: BuildConfig
    generated: GeneratedCorpus
    cleansed: SyntheticCorpus
    cleansing_report: CleansingReport
    grouped: GroupedCorpus
    selections: dict[tuple[CornerCaseRatio, str], ProductSelection] = field(
        default_factory=dict
    )
    splits: dict[CornerCaseRatio, OfferSplit] = field(default_factory=dict)
    benchmark: WDCProductsBenchmark = field(default_factory=WDCProductsBenchmark)
    embedding_model: LsaEmbeddingModel | None = None
    engine: SimilarityEngine | None = None
    blocker: CandidateBlocker | None = None
    blocked_candidates: BlockedPairSet | None = None
    stage_timings: dict[str, float] = field(default_factory=dict)

    def selected_cluster_ids(self) -> set[str]:
        """Products appearing in any selection (any ratio, any part)."""
        selected: set[str] = set()
        for selection in self.selections.values():
            selected.update(selection.cluster_ids())
        return selected

    def pretraining_clusters(
        self, serializer=None
    ) -> list[tuple[str, str, list[str]]]:
        """Identifier clusters usable for checkpoint pre-training.

        Only clusters *never selected* for the benchmark are returned, so a
        checkpoint pretrained on them cannot leak information about any
        benchmark product — in particular the unseen test products stay
        genuinely unseen.  ``serializer`` maps an offer to its text; pass
        the same serializer the downstream matcher uses so the checkpoint's
        training distribution matches fine-tuning (default: brand + title).
        """
        if serializer is None:
            def serializer(offer):
                if offer.brand:
                    return f"{offer.brand} {offer.title}"
                return offer.title

        selected = self.selected_cluster_ids()
        result: list[tuple[str, str, list[str]]] = []
        for cluster in self.cleansed.clusters(min_size=2):
            if cluster.cluster_id in selected:
                continue
            texts = [serializer(offer) for offer in cluster.offers]
            result.append((cluster.cluster_id, cluster.family_id, texts))
        return result


# --------------------------------------------------------------------- #
# Stages 1-6: shared artifacts
# --------------------------------------------------------------------- #
def _stage_corpus(config: BuildConfig) -> GeneratedCorpus:
    return CorpusGenerator(config.corpus).generate()


def _stage_cleansing(
    generated: GeneratedCorpus,
) -> tuple[SyntheticCorpus, CleansingReport]:
    pipeline = CleansingPipeline()
    cleansed = pipeline.run(generated.corpus)
    return cleansed, pipeline.report


def _stage_grouping(cleansed: SyntheticCorpus) -> GroupedCorpus:
    return group_products(cleansed)


def _stage_embedding(cleansed: SyntheticCorpus) -> LsaEmbeddingModel:
    # Embedding model for the metric registry, trained on corpus titles
    # (the stand-in for the paper's fastText model).
    return LsaEmbeddingModel(dim=32).fit(
        [offer.title for offer in cleansed.offers]
    )


def _stage_engine(
    config: BuildConfig,
    cleansed: SyntheticCorpus,
    grouped: GroupedCorpus,
    embedding_model: LsaEmbeddingModel,
) -> tuple[SimilarityEngine, dict[str, int], dict[str, int]]:
    """One corpus-level engine plus the offer-id and cluster-id row maps."""
    engine = SimilarityEngine(
        [offer.title for offer in cleansed.offers],
        embedding_model=embedding_model,
        gj_cache_entries=config.gj_cache_entries,
    )
    offer_rows = {
        offer.offer_id: row for row, offer in enumerate(cleansed.offers)
    }
    cluster_rows: dict[str, int] = {}
    for groups in (grouped.seen_groups, grouped.unseen_groups):
        for group in groups:
            for cluster in group.clusters:
                representative = cluster.representative_offer()
                cluster_rows[cluster.cluster_id] = offer_rows[
                    representative.offer_id
                ]
    return engine, offer_rows, cluster_rows


def _stage_blocking(
    config: BuildConfig, cleansed: SyntheticCorpus, engine: SimilarityEngine
) -> tuple[CandidateBlocker, BlockedPairSet]:
    """Corpus-level candidate join: every offer's top-k most similar.

    The blocked pair set is the materialization-free counterpart of
    the pair datasets built in stage 7 — labeled candidates matchers
    can train on without any pre-built pair sets.
    """
    offers = list(cleansed.offers)
    blocker = CandidateBlocker(
        engine,
        offers=offers,
        group_labels=[offer.cluster_id for offer in offers],
    )
    blocked = blocker.candidates(
        k=config.blocking_top_k, metrics=config.blocking_metrics
    )
    return blocker, blocked


# --------------------------------------------------------------------- #
# Stage 7: one corner-case ratio
# --------------------------------------------------------------------- #
def _build_ratio(
    config: BuildConfig,
    corner_cases: CornerCaseRatio,
    grouped: GroupedCorpus,
    embedding_model: LsaEmbeddingModel,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
    cluster_rows: dict[str, int],
    stream: RngStream,
) -> _RatioArtifacts:
    ratio_name = corner_cases.label
    registry = SimilarityRegistry(
        embedding_model=embedding_model,
        rng=stream.generator("registry", ratio_name),
    )

    with Timer() as timer:
        # Step 4: product selection (seen and unseen sets of n_products).
        selections: dict[str, ProductSelection] = {}
        for part in ("seen", "unseen"):
            selections[part] = select_products(
                grouped,
                part=part,
                corner_case_ratio=corner_cases.value,
                n_products=config.n_products,
                n_similar=config.n_similar,
                registry=registry,
                rng=stream.generator("selection", ratio_name, part),
                engine=engine,
                cluster_rows=cluster_rows,
            )

        # Step 5: offer splitting (incl. the three test product sets).
        split = split_offers(
            selections["seen"],
            selections["unseen"],
            registry=registry,
            rng=stream.generator("splitting", ratio_name),
            engine=engine,
            offer_rows=offer_rows,
        )

        # Step 6: pair generation for every development size and test
        # set, plus the multi-class datasets (valid/test built once —
        # they do not depend on the development-set size).
        train_sets: dict[DevSetSize, PairDataset] = {}
        valid_sets: dict[DevSetSize, PairDataset] = {}
        multiclass_train: dict[DevSetSize, MulticlassDataset] = {}
        for dev_size in DevSetSize:
            pair_rng = stream.generator("pairs", ratio_name, dev_size.value)
            train_sets[dev_size] = generate_pairs(
                split.train_offers(dev_size),
                name=f"train-{ratio_name}-{dev_size.value}",
                corner_negatives_per_offer=dev_size.corner_negatives_per_offer,
                rng=pair_rng,
                engine=engine,
                offer_rows=offer_rows,
            )
            valid_sets[dev_size] = generate_pairs(
                split.valid_offers(),
                name=f"valid-{ratio_name}-{dev_size.value}",
                corner_negatives_per_offer=dev_size.corner_negatives_per_offer,
                rng=pair_rng,
                engine=engine,
                offer_rows=offer_rows,
            )
            multiclass_train[dev_size] = build_multiclass_train(
                split,
                dev_size=dev_size,
                name_prefix=f"multiclass-{ratio_name}",
            )
        multiclass_valid, multiclass_test = build_multiclass_eval(
            split, name_prefix=f"multiclass-{ratio_name}"
        )

        test_sets: dict[UnseenRatio, PairDataset] = {}
        for unseen in UnseenRatio:
            test_rng = stream.generator("pairs", ratio_name, "test", unseen.label)
            test_sets[unseen] = generate_pairs(
                split.test_offers(unseen),
                name=f"test-{ratio_name}-{unseen.label.lower()}",
                corner_negatives_per_offer=_TEST_CORNER_NEGATIVES,
                rng=test_rng,
                engine=engine,
                offer_rows=offer_rows,
            )

    return _RatioArtifacts(
        corner_cases=corner_cases,
        selections=selections,
        split=split,
        train_sets=train_sets,
        valid_sets=valid_sets,
        test_sets=test_sets,
        multiclass_train=multiclass_train,
        multiclass_valid=multiclass_valid,
        multiclass_test=multiclass_test,
        elapsed=timer.elapsed,
    )


def _merge_ratio(artifacts: BuildArtifacts, result: _RatioArtifacts) -> None:
    corner_cases = result.corner_cases
    for part, selection in result.selections.items():
        artifacts.selections[(corner_cases, part)] = selection
    artifacts.splits[corner_cases] = result.split
    benchmark = artifacts.benchmark
    for dev_size in DevSetSize:
        benchmark.train_sets[(corner_cases, dev_size)] = result.train_sets[
            dev_size
        ]
        benchmark.valid_sets[(corner_cases, dev_size)] = result.valid_sets[
            dev_size
        ]
        benchmark.multiclass_train[(corner_cases, dev_size)] = (
            result.multiclass_train[dev_size]
        )
    benchmark.multiclass_valid[corner_cases] = result.multiclass_valid
    benchmark.multiclass_test[corner_cases] = result.multiclass_test
    for unseen in UnseenRatio:
        benchmark.test_sets[(corner_cases, unseen)] = result.test_sets[unseen]


# --------------------------------------------------------------------- #
def build_one_corpus(config: BuildConfig) -> BuildArtifacts:
    """Run every pipeline stage for one corpus and return its artifacts.

    This is the reusable stage runner behind both
    :meth:`BenchmarkBuilder.build` (the single-shard special case) and the
    per-shard worker processes of a
    :class:`~repro.shard.ShardedBenchmarkSession` — it is module-level and
    takes only a picklable :class:`BuildConfig`, so it can be shipped to a
    :class:`~concurrent.futures.ProcessPoolExecutor` unchanged.
    """
    stream = RngStream(config.seed, "benchmark")
    timings: dict[str, float] = {}

    with Timer() as timer:
        generated = _stage_corpus(config)
    timings["corpus"] = timer.elapsed

    with Timer() as timer:
        cleansed, cleansing_report = _stage_cleansing(generated)
    timings["cleansing"] = timer.elapsed
    for stage, seconds in cleansing_report.stage_seconds.items():
        timings[f"cleansing:{stage}"] = seconds

    with Timer() as timer:
        grouped = _stage_grouping(cleansed)
    timings["grouping"] = timer.elapsed

    with Timer() as timer:
        embedding_model = _stage_embedding(cleansed)
    timings["embedding"] = timer.elapsed

    with Timer() as timer:
        engine, offer_rows, cluster_rows = _stage_engine(
            config, cleansed, grouped, embedding_model
        )
    timings["engine"] = timer.elapsed

    blocker: CandidateBlocker | None = None
    blocked: BlockedPairSet | None = None
    if config.blocking_top_k > 0:
        with Timer() as timer:
            blocker, blocked = _stage_blocking(config, cleansed, engine)
        timings["blocking"] = timer.elapsed

    artifacts = BuildArtifacts(
        config=config,
        generated=generated,
        cleansed=cleansed,
        cleansing_report=cleansing_report,
        grouped=grouped,
        embedding_model=embedding_model,
        engine=engine,
        blocker=blocker,
        blocked_candidates=blocked,
        stage_timings=timings,
    )

    # Stage 7 per corner-case ratio: independent, hence parallelizable.
    ratios = list(config.corner_case_ratios)
    with Timer() as timer:
        if config.parallel_ratio_builds and len(ratios) > 1:
            workers = config.max_workers or len(ratios)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                ratio_results = list(
                    pool.map(
                        lambda cc: _build_ratio(
                            config,
                            cc,
                            grouped,
                            embedding_model,
                            engine,
                            offer_rows,
                            cluster_rows,
                            stream,
                        ),
                        ratios,
                    )
                )
        else:
            ratio_results = [
                _build_ratio(
                    config,
                    cc,
                    grouped,
                    embedding_model,
                    engine,
                    offer_rows,
                    cluster_rows,
                    stream,
                )
                for cc in ratios
            ]
    timings["ratios"] = timer.elapsed

    # Merge in configuration order so dict ordering — and therefore the
    # serialized benchmark — is independent of completion order.
    for result in ratio_results:
        _merge_ratio(artifacts, result)
        timings[f"ratio:{result.corner_cases.label}"] = result.elapsed

    if config.store_dir and config.store_backend == "sqlite":
        # Deferred import: repro.core.__init__ imports this module, and
        # repro.io.store imports core submodules — a module-level import
        # here would make the cycle real.
        from repro.io.store import write_store

        with Timer() as timer:
            write_store(config.store_dir, artifacts)
        timings["store"] = timer.elapsed
    return artifacts


class BenchmarkBuilder:
    """The single-corpus entry point: one config, one benchmark.

    A thin wrapper over :func:`build_one_corpus`, kept for compatibility
    and as the single-shard special case of the sharded session API
    (:class:`~repro.shard.ShardedBenchmarkSession` schedules many of these
    stage runs across worker processes).
    """

    def __init__(self, config: BuildConfig | None = None):
        self.config = config if config is not None else BuildConfig()

    def build(self) -> BuildArtifacts:
        return build_one_corpus(self.config)
