"""Offer splitting (Section 3.5).

Offers of each selected seen product are split into training (the rest),
validation (2 offers) and test (2 offers); for corner-case products the
validation/test offer pairs are chosen from the most *dissimilar* pairs of
the cluster so the resulting positive pairs are hard.  Development-set
sizes carve nested subsets out of the training offers (large ⊇ medium ⊇
small), and the unseen dimension is materialized by swapping seen test
products for products from the unseen selection while preserving the
corner-case ratio.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.dimensions import DevSetSize, UnseenRatio
from repro.core.selection import ProductSelection
from repro.corpus.schema import ProductCluster, ProductOffer
from repro.similarity.engine import SimilarityEngine
from repro.similarity.registry import SimilarityRegistry

__all__ = ["SplitProduct", "TestProduct", "OfferSplit", "split_offers"]

_MAX_OFFERS_PER_SEEN_CLUSTER = 15
_EVAL_OFFERS = 2  # validation and test each receive two offers
_CORNER_SLICE = 0.2  # "slice this list at the first fifth"


@dataclass
class SplitProduct:
    """A seen product's offers distributed over the splits."""

    cluster: ProductCluster
    is_corner: bool
    train_large: list[ProductOffer] = field(default_factory=list)
    train_medium: list[ProductOffer] = field(default_factory=list)
    train_small: list[ProductOffer] = field(default_factory=list)
    valid: list[ProductOffer] = field(default_factory=list)
    test: list[ProductOffer] = field(default_factory=list)

    @property
    def cluster_id(self) -> str:
        return self.cluster.cluster_id

    def train_offers(self, dev_size: DevSetSize) -> list[ProductOffer]:
        if dev_size is DevSetSize.SMALL:
            return self.train_small
        if dev_size is DevSetSize.MEDIUM:
            return self.train_medium
        return self.train_large


@dataclass(frozen=True)
class TestProduct:
    """One product of a test set: its two offers plus provenance flags."""

    cluster_id: str
    offers: tuple[ProductOffer, ProductOffer]
    is_corner: bool
    is_unseen: bool


@dataclass
class OfferSplit:
    """Complete Section-3.5 output for one corner-case ratio."""

    corner_case_ratio: float
    seen: list[SplitProduct] = field(default_factory=list)
    test_sets: dict[UnseenRatio, list[TestProduct]] = field(default_factory=dict)

    def train_offers(self, dev_size: DevSetSize) -> list[tuple[str, ProductOffer]]:
        """(cluster_id, offer) pairs of the chosen training split."""
        return [
            (product.cluster_id, offer)
            for product in self.seen
            for offer in product.train_offers(dev_size)
        ]

    def valid_offers(self) -> list[tuple[str, ProductOffer]]:
        return [
            (product.cluster_id, offer)
            for product in self.seen
            for offer in product.valid
        ]

    def test_offers(self, unseen: UnseenRatio) -> list[tuple[str, ProductOffer]]:
        return [
            (product.cluster_id, offer)
            for product in self.test_sets[unseen]
            for offer in product.offers
        ]

    def all_offer_ids(self) -> dict[str, set[str]]:
        """Offer ids per logical split — used to verify leakage-freedom."""
        ids: dict[str, set[str]] = {"train": set(), "valid": set(), "test": set()}
        for product in self.seen:
            ids["train"].update(offer.offer_id for offer in product.train_large)
            ids["valid"].update(offer.offer_id for offer in product.valid)
            ids["test"].update(offer.offer_id for offer in product.test)
        for test_set in self.test_sets.values():
            ids["test"].update(
                offer.offer_id for product in test_set for offer in product.offers
            )
        return ids


def _pairs_by_ascending_similarity(
    offers: list[ProductOffer],
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
) -> list[tuple[int, int]]:
    """All index pairs of ``offers`` sorted by increasing title similarity.

    The metric is drawn at random per product, as in Section 3.5; the
    scores come from one exact ``pairwise_matrix`` call on the engine.
    """
    metric = registry.draw()
    if metric.name in SimilarityEngine.METRICS:
        rows = [offer_rows[offer.offer_id] for offer in offers]
        matrix = engine.pairwise_matrix(rows, metric.name)
    else:  # custom registry metrics carry only a per-pair callable
        matrix = metric.pairwise([offer.title for offer in offers])
    scored = [
        (float(matrix[i, j]), i, j)
        for i, j in itertools.combinations(range(len(offers)), 2)
    ]
    scored.sort(key=lambda item: (item[0], item[1], item[2]))
    return [(i, j) for _, i, j in scored]


def _pick_disjoint_corner_pairs(
    offers: list[ProductOffer],
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
    rng: np.random.Generator,
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Two disjoint offer pairs from the dissimilar (corner) side.

    The corner slice is the first fifth of the ascending-similarity pair
    list; it is widened until it contains two disjoint pairs (guaranteed to
    exist for clusters with >= 4 offers).
    """
    ordered = _pairs_by_ascending_similarity(offers, registry, engine, offer_rows)
    slice_size = max(2, int(len(ordered) * _CORNER_SLICE))
    while slice_size <= len(ordered):
        corner_side = ordered[:slice_size]
        order = rng.permutation(len(corner_side))
        for first_index in order:
            first = corner_side[int(first_index)]
            for second in corner_side:
                if set(first) & set(second):
                    continue
                return first, second
        slice_size += max(1, len(ordered) // 10)
    raise ValueError("cluster too small to produce disjoint evaluation pairs")


def _random_disjoint_pairs(
    n_offers: int, rng: np.random.Generator
) -> tuple[tuple[int, int], tuple[int, int]]:
    order = [int(i) for i in rng.permutation(n_offers)]
    return (order[0], order[1]), (order[2], order[3])


def _split_seen_product(
    cluster: ProductCluster,
    *,
    is_corner: bool,
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
    rng: np.random.Generator,
) -> SplitProduct:
    offers = list(cluster.offers)
    if len(offers) > _MAX_OFFERS_PER_SEEN_CLUSTER:
        keep = rng.choice(len(offers), size=_MAX_OFFERS_PER_SEEN_CLUSTER, replace=False)
        offers = [offers[int(i)] for i in sorted(keep)]
    if len(offers) < 7:
        raise ValueError(
            f"seen cluster {cluster.cluster_id} has {len(offers)} offers; >= 7 required"
        )

    if is_corner:
        test_pair, valid_pair = _pick_disjoint_corner_pairs(
            offers, registry, engine, offer_rows, rng
        )
    else:
        test_pair, valid_pair = _random_disjoint_pairs(len(offers), rng)

    eval_indices = set(test_pair) | set(valid_pair)
    train = [offer for index, offer in enumerate(offers) if index not in eval_indices]

    product = SplitProduct(
        cluster=cluster,
        is_corner=is_corner,
        train_large=train,
        valid=[offers[valid_pair[0]], offers[valid_pair[1]]],
        test=[offers[test_pair[0]], offers[test_pair[1]]],
    )

    # Nested medium (3 offers) and small (2 of the 3) training subsets; for
    # corner products the small pair is again drawn from the dissimilar side.
    if is_corner and len(train) >= 3:
        ordered = _pairs_by_ascending_similarity(train, registry, engine, offer_rows)
        slice_size = max(1, int(len(ordered) * _CORNER_SLICE))
        small_pair = ordered[int(rng.integers(slice_size))]
    else:
        shuffled = [int(i) for i in rng.permutation(len(train))]
        small_pair = (shuffled[0], shuffled[1] if len(shuffled) > 1 else shuffled[0])
    small = sorted(set(small_pair))
    remaining = [index for index in range(len(train)) if index not in small]
    medium = small + ([remaining[int(rng.integers(len(remaining)))]] if remaining else [])
    product.train_small = [train[index] for index in small]
    product.train_medium = [train[index] for index in sorted(medium)]
    return product


def _sample_unseen_offers(
    cluster: ProductCluster,
    *,
    is_corner: bool,
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
    rng: np.random.Generator,
) -> tuple[ProductOffer, ProductOffer]:
    """Exactly two offers per unseen product (Figure 3, right)."""
    offers = list(cluster.offers)
    if len(offers) < 2:
        raise ValueError(
            f"unseen cluster {cluster.cluster_id} has fewer than two offers"
        )
    if len(offers) == 2:
        return offers[0], offers[1]
    if is_corner:
        ordered = _pairs_by_ascending_similarity(offers, registry, engine, offer_rows)
        slice_size = max(1, int(len(ordered) * _CORNER_SLICE))
        i, j = ordered[int(rng.integers(slice_size))]
        return offers[i], offers[j]
    picked = rng.choice(len(offers), size=2, replace=False)
    return offers[int(picked[0])], offers[int(picked[1])]


def _build_test_sets(
    seen_products: list[SplitProduct],
    unseen_selection: ProductSelection,
    registry: SimilarityRegistry,
    engine: SimilarityEngine,
    offer_rows: dict[str, int],
    rng: np.random.Generator,
) -> dict[UnseenRatio, list[TestProduct]]:
    """Materialize the three test sets (0% / 50% / 100% unseen).

    Replacement preserves the corner-case ratio: corner seen products are
    swapped for corner unseen products and random for random.
    """
    seen_tests = [
        TestProduct(
            cluster_id=product.cluster_id,
            offers=(product.test[0], product.test[1]),
            is_corner=product.is_corner,
            is_unseen=False,
        )
        for product in seen_products
    ]

    unseen_tests: list[TestProduct] = []
    for cluster in unseen_selection.clusters:
        is_corner = unseen_selection.is_corner(cluster.cluster_id)
        offers = _sample_unseen_offers(
            cluster,
            is_corner=is_corner,
            registry=registry,
            engine=engine,
            offer_rows=offer_rows,
            rng=rng,
        )
        unseen_tests.append(
            TestProduct(
                cluster_id=cluster.cluster_id,
                offers=offers,
                is_corner=is_corner,
                is_unseen=True,
            )
        )

    def half_mix() -> list[TestProduct]:
        mixed = list(seen_tests)
        for flag in (True, False):
            seen_slots = [i for i, t in enumerate(mixed) if t.is_corner is flag]
            replacements = [t for t in unseen_tests if t.is_corner is flag]
            n_replace = len(seen_slots) // 2
            n_replace = min(n_replace, len(replacements))
            slot_order = rng.permutation(len(seen_slots))[:n_replace]
            replacement_order = rng.permutation(len(replacements))[:n_replace]
            for slot_index, replacement_index in zip(slot_order, replacement_order):
                mixed[seen_slots[int(slot_index)]] = replacements[int(replacement_index)]
        return mixed

    return {
        UnseenRatio.SEEN: seen_tests,
        UnseenRatio.HALF_SEEN: half_mix(),
        UnseenRatio.UNSEEN: unseen_tests,
    }


def _local_engine(
    selections: tuple[ProductSelection, ...], registry: SimilarityRegistry
) -> tuple[SimilarityEngine, dict[str, int]]:
    """An offer-title engine when no corpus-level one is supplied."""
    offers = [
        offer
        for selection in selections
        for cluster in selection.clusters
        for offer in cluster.offers
    ]
    engine = registry.engine_for([offer.title for offer in offers])
    rows = {offer.offer_id: row for row, offer in enumerate(offers)}
    return engine, rows


def split_offers(
    seen_selection: ProductSelection,
    unseen_selection: ProductSelection,
    *,
    registry: SimilarityRegistry,
    rng: np.random.Generator,
    engine: SimilarityEngine | None = None,
    offer_rows: dict[str, int] | None = None,
) -> OfferSplit:
    """Run the complete Section-3.5 splitting for one corner-case ratio.

    ``engine`` and ``offer_rows`` (offer id → engine row) let the builder
    share one corpus-level engine; without them a local engine over the
    selections' offer titles is built on the fly.
    """
    if seen_selection.part != "seen" or unseen_selection.part != "unseen":
        raise ValueError("selections must be (seen, unseen) in that order")
    if engine is None or offer_rows is None:
        engine, offer_rows = _local_engine(
            (seen_selection, unseen_selection), registry
        )

    split = OfferSplit(corner_case_ratio=seen_selection.corner_case_ratio)
    for cluster in seen_selection.clusters:
        split.seen.append(
            _split_seen_product(
                cluster,
                is_corner=seen_selection.is_corner(cluster.cluster_id),
                registry=registry,
                engine=engine,
                offer_rows=offer_rows,
                rng=rng,
            )
        )
    split.test_sets = _build_test_sets(
        split.seen, unseen_selection, registry, engine, offer_rows, rng
    )
    return split
