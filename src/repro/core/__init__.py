"""The WDC Products benchmark core (the paper's contribution).

Implements Sections 3.4-3.6 and 4: product selection along the
corner-case dimension, offer splitting with the seen/unseen and
development-set-size dimensions, pair generation, the multi-class
formulation, benchmark profiling (Tables 1-2) and the label-quality study.
"""

from repro.core.dimensions import (
    ALL_PAIRWISE_VARIANTS,
    ALL_MULTICLASS_VARIANTS,
    CornerCaseRatio,
    DevSetSize,
    UnseenRatio,
    PairwiseVariant,
    MulticlassVariant,
)
from repro.core.datasets import LabeledPair, MulticlassDataset, PairDataset
from repro.core.selection import ProductSelection, select_products
from repro.core.splitting import OfferSplit, split_offers
from repro.core.pairs import generate_pairs
from repro.core.multiclass import (
    build_multiclass_datasets,
    build_multiclass_eval,
    build_multiclass_train,
)
from repro.core.benchmark import MulticlassTask, PairwiseTask, WDCProductsBenchmark
from repro.core.builder import BenchmarkBuilder, BuildArtifacts, BuildConfig
from repro.core.profiling import (
    StageTimingRow,
    benchmark_totals,
    build_profile,
    table1_statistics,
    table2_profile,
)
from repro.core.label_quality import LabelQualityResult, LabelQualityStudy

__all__ = [
    "CornerCaseRatio",
    "UnseenRatio",
    "DevSetSize",
    "PairwiseVariant",
    "MulticlassVariant",
    "ALL_PAIRWISE_VARIANTS",
    "ALL_MULTICLASS_VARIANTS",
    "LabeledPair",
    "PairDataset",
    "MulticlassDataset",
    "ProductSelection",
    "select_products",
    "OfferSplit",
    "split_offers",
    "generate_pairs",
    "build_multiclass_datasets",
    "build_multiclass_eval",
    "build_multiclass_train",
    "WDCProductsBenchmark",
    "PairwiseTask",
    "MulticlassTask",
    "BenchmarkBuilder",
    "BuildArtifacts",
    "BuildConfig",
    "table1_statistics",
    "table2_profile",
    "benchmark_totals",
    "StageTimingRow",
    "build_profile",
    "LabelQualityResult",
    "LabelQualityStudy",
]
