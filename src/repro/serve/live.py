"""Mutable, queryable shard state behind the match service.

A :class:`LiveShard` owns one shard's live corpus: a root (mutable)
:class:`~repro.similarity.engine.SimilarityEngine`, the offer objects
aligned to its rows, the ``offer_id ↔ row`` maps, and — unless grouping
is disabled — an :class:`~repro.grouping.incremental.IncrementalDBSCAN`
whose assignments stay exactly equal to a cold batch re-clustering of
the live rows.

Shards come from three places:

* :meth:`LiveShard.from_artifacts` — an in-memory ``BuildArtifacts`` (or
  any object with ``.engine`` and ``.cleansed.offers``), including the
  per-shard artifacts of a :class:`~repro.shard.session.ShardedArtifacts`,
* :meth:`LiveShard.from_handle` — a picklable
  :class:`~repro.io.store.StoredShardHandle`; the store is opened
  *lazily* (first use, or :meth:`MatchService.start`'s off-loop warmup),
  and the engine's memory-mapped CSR arrays are copied into growable
  buffers only if the shard is ever mutated,
* :meth:`LiveShard.empty` — a fresh shard that starts with no rows and
  is populated entirely through :meth:`append`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.corpus.schema import ProductOffer
from repro.grouping.incremental import IncrementalDBSCAN, partition_sha
from repro.similarity.engine import SimilarityEngine

__all__ = ["LiveShard"]


class LiveShard:
    """One shard's mutable corpus: engine + offers + incremental clusters."""

    def __init__(
        self,
        engine: SimilarityEngine,
        offers: Sequence[ProductOffer],
        *,
        shard: int = 0,
        grouping: bool = True,
        eps: float = 0.35,
        min_samples: int = 1,
    ) -> None:
        self.shard = int(shard)
        self._grouping = bool(grouping)
        self._eps = float(eps)
        self._min_samples = int(min_samples)
        self._loader: Callable[[], tuple[SimilarityEngine, list[ProductOffer]]] | None = None
        self._bind(engine, list(offers))

    @classmethod
    def from_artifacts(
        cls, artifacts, *, shard: int = 0, **kwargs
    ) -> "LiveShard":
        """A live shard over built artifacts (``.engine`` + ``.cleansed``)."""
        engine = artifacts.engine
        if engine is None:
            raise ValueError("artifacts hold no similarity engine")
        return cls(engine, list(artifacts.cleansed.offers), shard=shard, **kwargs)

    @classmethod
    def from_handle(
        cls, handle, *, shard: int | None = None, **kwargs
    ) -> "LiveShard":
        """A live shard over a :class:`StoredShardHandle`, opened lazily.

        Nothing touches the store until the shard is first used; the
        service's ``start()`` triggers the open off the event loop.
        """
        live = cls.__new__(cls)
        live.shard = int(handle.shard if shard is None else shard)
        live._grouping = bool(kwargs.pop("grouping", True))
        live._eps = float(kwargs.pop("eps", 0.35))
        live._min_samples = int(kwargs.pop("min_samples", 1))
        if kwargs:
            raise TypeError(f"unknown arguments: {sorted(kwargs)}")

        def load() -> tuple[SimilarityEngine, list[ProductOffer]]:
            stored = handle.open(strict=True)
            engine = stored.engine
            if engine is None:
                raise ValueError(
                    f"stored shard {handle.shard} holds no engine"
                )
            return engine, list(stored.cleansed.offers)

        live._loader = load
        return live

    @classmethod
    def empty(cls, *, shard: int = 0, **kwargs) -> "LiveShard":
        """A shard that starts empty and grows purely through appends."""
        return cls(SimilarityEngine([]), [], shard=shard, **kwargs)

    # ------------------------------------------------------------------ #
    # Lazy materialization
    # ------------------------------------------------------------------ #
    def _bind(
        self, engine: SimilarityEngine, offers: list[ProductOffer]
    ) -> None:
        if len(offers) != len(engine):
            raise ValueError(
                f"{len(offers)} offers for an engine of {len(engine)} rows"
            )
        self.engine = engine
        self._offers: list[ProductOffer] = offers
        self._row_by_offer: dict[str, int] = {}
        for row in engine.live_rows():
            offer_id = offers[int(row)].offer_id
            if offer_id in self._row_by_offer:
                raise ValueError(f"duplicate offer id {offer_id!r} in shard")
            self._row_by_offer[offer_id] = int(row)
        self.clusterer: IncrementalDBSCAN | None = (
            IncrementalDBSCAN(
                engine, eps=self._eps, min_samples=self._min_samples
            )
            if self._grouping
            else None
        )
        self._loader = None

    def ensure_open(self) -> "LiveShard":
        """Materialize a handle-backed shard (no-op when already open)."""
        if self._loader is not None:
            engine, offers = self._loader()
            self._bind(engine, offers)
        return self

    @property
    def is_open(self) -> bool:
        return self._loader is None

    # ------------------------------------------------------------------ #
    # Deltas
    # ------------------------------------------------------------------ #
    def append(self, offers: Sequence[ProductOffer]) -> np.ndarray:
        """Append offers; returns their engine rows.

        The engine rows extend, the incremental clusterer absorbs the
        new rows, and the offers become immediately matchable.  A
        duplicate (or resurrected) ``offer_id`` raises before any state
        changes.
        """
        self.ensure_open()
        new_offers = list(offers)
        seen: dict[str, int] = {}
        for position, offer in enumerate(new_offers):
            if offer.offer_id in self._row_by_offer or offer.offer_id in seen:
                raise ValueError(f"duplicate offer id {offer.offer_id!r}")
            seen[offer.offer_id] = position
        rows = self.engine.append([offer.title for offer in new_offers])
        self._offers.extend(new_offers)
        for offer, row in zip(new_offers, rows):
            self._row_by_offer[offer.offer_id] = int(row)
        if self.clusterer is not None:
            self.clusterer.append(rows)
        return rows

    def retire(self, offer_ids: Iterable[str]) -> np.ndarray:
        """Retire offers by id; returns the tombstoned engine rows."""
        self.ensure_open()
        ids = list(offer_ids)
        rows = np.array(
            [self._row_for(offer_id) for offer_id in ids], dtype=np.intp
        )
        retired = self.engine.retire(rows)
        for offer_id in ids:
            del self._row_by_offer[offer_id]
        if self.clusterer is not None:
            self.clusterer.retire(rows)
        return retired

    def _row_for(self, offer_id: str) -> int:
        row = self._row_by_offer.get(offer_id)
        if row is None:
            raise KeyError(f"unknown (or retired) offer id {offer_id!r}")
        return row

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        self.ensure_open()
        return self.engine.live_count

    def has_offer(self, offer_id: str) -> bool:
        self.ensure_open()
        return offer_id in self._row_by_offer

    def offer_at(self, row: int) -> ProductOffer:
        self.ensure_open()
        return self._offers[int(row)]

    def live_offers(self) -> list[ProductOffer]:
        self.ensure_open()
        return [self._offers[int(row)] for row in self.engine.live_rows()]

    def top_k(
        self, token_sets: Sequence[set[str]], metric: str, *, k: int
    ) -> list[tuple[list[int], np.ndarray]]:
        """Per-query ``(rows, scores)`` over the live universe."""
        self.ensure_open()
        return self.engine.external_top_k_batch(token_sets, metric, k=k)

    def assignments(self) -> dict[str, int]:
        """Canonical ``offer_id -> cluster`` over the live offers."""
        self.ensure_open()
        if self.clusterer is None:
            raise ValueError("shard built with grouping=False")
        return {
            self._offers[row].offer_id: label
            for row, label in sorted(self.clusterer.assignments().items())
        }

    def clusters_sha(self) -> str:
        """sha256 pin of the canonical offer-id partition."""
        self.ensure_open()
        if self.clusterer is None:
            raise ValueError("shard built with grouping=False")
        return partition_sha(
            {
                self._offers[row].offer_id: label
                for row, label in self.clusterer.assignments().items()
            }
        )

    def __repr__(self) -> str:
        if self._loader is not None:
            return f"LiveShard(shard={self.shard}, unopened)"
        return (
            f"LiveShard(shard={self.shard}, live={self.engine.live_count}, "
            f"rows={len(self.engine)})"
        )
