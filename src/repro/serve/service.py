"""Async match serving: micro-batched queries over live shards.

``await service.match(offers, k=10)`` is the query path the batch
pipeline never had.  The design is a single-writer queue-and-worker
loop:

* **Bounded admission.** ``match``/``append``/``retire`` enqueue onto a
  bounded :class:`asyncio.Queue`; a full queue sheds the request with a
  typed :class:`~repro.errors.ServiceOverloadError` instead of letting
  latency grow without limit.  Shedding is the *caller's* backpressure
  signal — the benchmark records its rate.
* **Micro-batching.** One worker task drains up to ``max_batch`` queued
  items at a time and coalesces adjacent queries into a single
  ``external_top_k_batch`` call per shard, so N concurrent awaiters
  cost one batched sparse matmul, not N.  Items are processed in
  arrival order, so a query enqueued after an append observes it.
* **Deadlines.** Each query carries an optional deadline; the worker
  drops requests that expired while queued
  (:class:`~repro.errors.ServiceDeadlineError`) — a backlog burns down
  instead of computing answers nobody is waiting for.
* **One scoring thread.** NumPy/SciPy kernels release the GIL, but the
  engines' Python-side mutation state is single-writer; all scoring and
  every mutation run serialized on one executor thread, off the event
  loop (keeping ``async def`` bodies free of blocking calls — enforced
  tree-wide by repro-lint's ``ASY001``).

Cross-shard merging is deterministic: per query, shard results merge by
``(-score, shard position, row)`` and truncate to ``k``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.corpus.schema import ProductOffer
from repro.errors import (
    ServiceClosedError,
    ServiceDeadlineError,
    ServiceOverloadError,
)
from repro.serve.live import LiveShard
from repro.text.tokenize import tokenize

__all__ = ["Match", "MatchService", "ServiceStats"]


@dataclass(frozen=True)
class Match:
    """One ranked result: which live offer, where, how similar."""

    offer_id: str
    shard: int
    row: int
    score: float


@dataclass(frozen=True)
class ServiceStats:
    """Monotonic counters snapshot (single event loop, so coherent)."""

    queries: int
    completed: int
    shed: int
    deadline_expired: int
    appends: int
    retires: int
    batches: int
    errors: int


class _Query:
    __slots__ = ("token_sets", "k", "metric", "deadline", "future")

    def __init__(self, token_sets, k, metric, deadline, future):
        self.token_sets = token_sets
        self.k = k
        self.metric = metric
        self.deadline = deadline
        self.future = future


class _Mutation:
    __slots__ = ("kind", "shard", "payload", "future")

    def __init__(self, kind, shard, payload, future):
        self.kind = kind
        self.shard = shard
        self.payload = payload
        self.future = future


class MatchService:
    """Async, micro-batching match API over one or more live shards."""

    def __init__(
        self,
        shards: Sequence[LiveShard],
        *,
        metric: str = "cosine",
        max_batch: int = 64,
        max_pending: int = 256,
        default_timeout: float | None = None,
    ) -> None:
        if not shards:
            raise ValueError("MatchService needs at least one shard")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.shards = list(shards)
        self.metric = metric
        self._max_batch = int(max_batch)
        self._max_pending = int(max_pending)
        self._default_timeout = default_timeout
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._running = False
        self._queries = 0
        self._completed = 0
        self._shed = 0
        self._deadline_expired = 0
        self._appends = 0
        self._retires = 0
        self._batches = 0
        self._errors = 0

    @classmethod
    def from_session(cls, artifacts, *, grouping: bool = True,
                     eps: float = 0.35, min_samples: int = 1,
                     **kwargs) -> "MatchService":
        """A service over a session's per-shard artifacts.

        ``artifacts`` is a :class:`~repro.shard.session.ShardedArtifacts`
        (or anything with ``shards`` + ``shard_ids``); works for both
        in-memory and store-backed sessions, since stored shards expose
        the same ``.engine`` / ``.cleansed`` surface.
        """
        live = [
            LiveShard.from_artifacts(
                shard_artifacts,
                shard=shard_id,
                grouping=grouping,
                eps=eps,
                min_samples=min_samples,
            )
            for shard_id, shard_artifacts in zip(
                artifacts.shard_ids, artifacts.shards
            )
        ]
        return cls(live, **kwargs)

    @classmethod
    def from_handles(cls, handles: Sequence, *, grouping: bool = True,
                     eps: float = 0.35, min_samples: int = 1,
                     **kwargs) -> "MatchService":
        """A service over stored shards, opened lazily at ``start()``."""
        live = [
            LiveShard.from_handle(
                handle, grouping=grouping, eps=eps, min_samples=min_samples
            )
            for handle in handles
        ]
        return cls(live, **kwargs)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "MatchService":
        if self._running:
            raise ValueError("service already running")
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="match-serve"
        )
        # Store-backed shards open here, off the event loop (sqlite +
        # mmap setup are blocking).
        await loop.run_in_executor(self._executor, self._open_shards)
        self._running = True
        self._worker = loop.create_task(self._run())
        return self

    def _open_shards(self) -> None:
        for shard in self.shards:
            shard.ensure_open()

    async def stop(self) -> None:
        """Drain queued work, then stop the worker and executor."""
        if not self._running:
            return
        self._running = False  # admission closes first
        assert self._queue is not None and self._worker is not None
        await self._queue.put(None)  # sentinel behind all queued work
        await self._worker
        self._worker = None
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    async def __aenter__(self) -> "MatchService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def stats(self) -> ServiceStats:
        return ServiceStats(
            queries=self._queries,
            completed=self._completed,
            shed=self._shed,
            deadline_expired=self._deadline_expired,
            appends=self._appends,
            retires=self._retires,
            batches=self._batches,
            errors=self._errors,
        )

    # ------------------------------------------------------------------ #
    # Public async API
    # ------------------------------------------------------------------ #
    @staticmethod
    def _token_set(query) -> set[str]:
        title = query.title if isinstance(query, ProductOffer) else str(query)
        return set(tokenize(title))

    def _admit(self, item) -> None:
        if not self._running or self._queue is None:
            raise ServiceClosedError("match service is not running")
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._shed += 1
            raise ServiceOverloadError(
                f"admission queue full ({self._max_pending} pending); "
                "back off and retry"
            ) from None

    async def match(
        self,
        queries: Sequence,
        *,
        k: int = 10,
        metric: str | None = None,
        timeout: float | None = None,
    ) -> list[list[Match]]:
        """Top-``k`` live offers per query, merged across shards.

        ``queries`` are titles or :class:`ProductOffer`\\ s — they need
        not (and normally do not) exist in any shard's universe.
        Raises :class:`ServiceOverloadError` when shed at admission and
        :class:`ServiceDeadlineError` when the request expired queued.
        """
        token_sets = [self._token_set(query) for query in queries]
        if not token_sets:
            return []
        loop = asyncio.get_running_loop()
        if timeout is None:
            timeout = self._default_timeout
        deadline = None if timeout is None else loop.time() + timeout
        future: asyncio.Future = loop.create_future()
        self._queries += 1
        self._admit(
            _Query(token_sets, int(k), metric or self.metric, deadline, future)
        )
        return await future

    async def append(
        self, offers: Sequence[ProductOffer], *, shard: int | None = None
    ) -> tuple[int, list[int]]:
        """Append offers to one shard; returns ``(shard_id, rows)``.

        ``shard=None`` routes to the shard with the fewest live rows
        (ties to the earlier shard) — deterministic load balancing.
        Mutations serialize with query batches in arrival order and are
        never deadline-dropped.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._admit(_Mutation("append", shard, list(offers), future))
        return await future

    async def retire(self, offer_ids: Sequence[str]) -> dict[int, list[int]]:
        """Retire offers by id; returns ``{shard_id: rows}``.

        Owning shards are resolved at apply time (consistent with the
        mutations queued ahead); an unknown id raises ``KeyError``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._admit(_Mutation("retire", None, list(offer_ids), future))
        return await future

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        assert self._queue is not None
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < self._max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            self._batches += 1
            await self._process(batch)

    async def _process(self, batch: list) -> None:
        """Process one drained batch in arrival order.

        Adjacent queries coalesce into one scoring run; mutations are
        barriers between runs, so every query sees exactly the corpus
        state its arrival position implies.
        """
        loop = asyncio.get_running_loop()
        position = 0
        while position < len(batch):
            item = batch[position]
            if isinstance(item, _Query):
                run = [item]
                position += 1
                while position < len(batch) and isinstance(batch[position], _Query):
                    run.append(batch[position])
                    position += 1
                await self._serve_queries(loop, run)
            else:
                position += 1
                await self._apply_mutation(loop, item)

    async def _serve_queries(self, loop, run: list[_Query]) -> None:
        now = loop.time()
        live: list[_Query] = []
        for query in run:
            if query.deadline is not None and now > query.deadline:
                self._deadline_expired += 1
                if not query.future.done():
                    query.future.set_exception(
                        ServiceDeadlineError(
                            "request expired in queue "
                            f"({now - query.deadline:.3f}s past deadline)"
                        )
                    )
                continue
            live.append(query)
        if not live:
            return
        try:
            results = await loop.run_in_executor(
                self._executor, self._score_run, live
            )
        except Exception as error:  # noqa: BLE001 — forwarded to awaiters
            self._errors += len(live)
            for query in live:
                if not query.future.done():
                    query.future.set_exception(error)
            return
        for query, result in zip(live, results):
            self._completed += 1
            if not query.future.done():
                query.future.set_result(result)

    async def _apply_mutation(self, loop, mutation: _Mutation) -> None:
        try:
            result = await loop.run_in_executor(
                self._executor, self._mutate, mutation
            )
        except Exception as error:  # noqa: BLE001 — forwarded to awaiter
            self._errors += 1
            if not mutation.future.done():
                mutation.future.set_exception(error)
            return
        if mutation.kind == "append":
            self._appends += len(mutation.payload)
        else:
            self._retires += len(mutation.payload)
        if not mutation.future.done():
            mutation.future.set_result(result)

    # ------------------------------------------------------------------ #
    # Executor-thread work (sync, serialized)
    # ------------------------------------------------------------------ #
    def _score_run(self, run: list[_Query]):
        results: list[list[list[Match]] | None] = [None] * len(run)
        by_metric: dict[str, list[int]] = {}
        for index, query in enumerate(run):
            by_metric.setdefault(query.metric, []).append(index)
        for metric in sorted(by_metric):
            indices = by_metric[metric]
            flat_sets: list[set[str]] = []
            spans: list[tuple[int, int]] = []
            for index in indices:
                spans.append((len(flat_sets), len(run[index].token_sets)))
                flat_sets.extend(run[index].token_sets)
            k_max = max(run[index].k for index in indices)
            per_shard = [
                shard.top_k(flat_sets, metric, k=k_max)
                for shard in self.shards
            ]
            for (start, count), index in zip(spans, indices):
                k = run[index].k
                answers: list[list[Match]] = []
                for flat in range(start, start + count):
                    merged: list[tuple[float, int, int]] = []
                    for shard_pos, shard_result in enumerate(per_shard):
                        rows, scores = shard_result[flat]
                        for row, score in zip(rows, scores):
                            merged.append((-float(score), shard_pos, int(row)))
                    merged.sort()
                    answers.append(
                        [
                            Match(
                                offer_id=self.shards[pos].offer_at(row).offer_id,
                                shard=self.shards[pos].shard,
                                row=row,
                                score=-negated,
                            )
                            for negated, pos, row in merged[:k]
                        ]
                    )
                results[index] = answers
        return results

    def _mutate(self, mutation: _Mutation):
        if mutation.kind == "append":
            position = (
                self._least_loaded()
                if mutation.shard is None
                else self._shard_position(mutation.shard)
            )
            shard = self.shards[position]
            rows = shard.append(mutation.payload)
            return shard.shard, [int(row) for row in rows]
        if mutation.kind == "retire":
            grouped: dict[int, list[str]] = {}
            for offer_id in mutation.payload:
                grouped.setdefault(self._owner_of(offer_id), []).append(offer_id)
            retired: dict[int, list[int]] = {}
            for position in sorted(grouped):
                shard = self.shards[position]
                rows = shard.retire(grouped[position])
                retired[shard.shard] = [int(row) for row in rows]
            return retired
        raise ValueError(f"unknown mutation kind {mutation.kind!r}")

    def _least_loaded(self) -> int:
        loads = [len(shard) for shard in self.shards]
        return int(np.argmin(loads))

    def _shard_position(self, shard_id: int) -> int:
        for position, shard in enumerate(self.shards):
            if shard.shard == shard_id:
                return position
        raise KeyError(f"unknown shard id {shard_id}")

    def _owner_of(self, offer_id: str) -> int:
        for position, shard in enumerate(self.shards):
            if shard.has_offer(offer_id):
                return position
        raise KeyError(f"unknown (or retired) offer id {offer_id!r}")
