"""Online match serving: live shards + async micro-batched query API.

The batch pipeline builds a corpus once and sweeps it; this package
keeps that corpus *live*.  :class:`LiveShard` binds one shard's mutable
:class:`~repro.similarity.engine.SimilarityEngine` to its offers and an
exact :class:`~repro.grouping.incremental.IncrementalDBSCAN`;
:class:`MatchService` fronts one or more live shards with a bounded,
deadline-aware ``await service.match(offers, k)`` API that micro-batches
concurrent queries and serializes mutations with them in arrival order.
"""

from repro.serve.live import LiveShard
from repro.serve.service import Match, MatchService, ServiceStats

__all__ = ["LiveShard", "Match", "MatchService", "ServiceStats"]
