"""Classic machine-learning substrate (scikit-learn stand-in).

Implements the estimators the paper's symbolic baselines rely on — a linear
SVM trained with hinge-loss SGD (Pegasos) and a CART random forest — plus
grid search and the evaluation metrics used throughout Section 5
(precision/recall/F1 for the match class, micro-F1 for multi-class, and
Cohen's kappa for the label-quality study).
"""

from repro.ml.metrics import (
    PRF1,
    cohen_kappa,
    confusion_counts,
    macro_f1,
    micro_f1,
    precision_recall_f1,
)
from repro.ml.svm import LinearSVM, MulticlassLinearSVM
from repro.ml.tree import DecisionTree
from repro.ml.random_forest import RandomForest
from repro.ml.grid_search import GridSearch

__all__ = [
    "PRF1",
    "precision_recall_f1",
    "confusion_counts",
    "micro_f1",
    "macro_f1",
    "cohen_kappa",
    "LinearSVM",
    "MulticlassLinearSVM",
    "DecisionTree",
    "RandomForest",
    "GridSearch",
]
