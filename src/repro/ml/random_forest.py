"""Bagged random forest over :class:`repro.ml.tree.DecisionTree`.

Magellan's matcher of choice in the paper is a scikit-learn Random Forest
fed with attribute-wise similarity features; this module provides the
equivalent estimator.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTree

__all__ = ["RandomForest"]


class RandomForest:
    """Random forest: bootstrap sampling + per-split feature subsampling."""

    def __init__(
        self,
        *,
        n_trees: int = 25,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees: list[DecisionTree] = []
        self.classes_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must be aligned")
        self.classes_ = np.unique(labels)
        n_samples = features.shape[0]
        max_features = self._resolve_max_features(features.shape[1])
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for tree_index in range(self.n_trees):
            sample = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(2**31)),
            )
            tree.fit(features[sample], labels[sample])
            self.trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Average the class distributions over all trees."""
        if not self.trees or self.classes_ is None:
            raise RuntimeError("RandomForest.fit() must be called first")
        features = np.asarray(features, dtype=np.float64)
        class_pos = {label: idx for idx, label in enumerate(self.classes_.tolist())}
        votes = np.zeros((features.shape[0], len(self.classes_)))
        for tree in self.trees:
            proba = tree.predict_proba(features)
            assert tree.classes_ is not None
            # Trees trained on bootstrap samples may miss rare classes, so
            # their columns must be re-aligned to the forest's class order.
            for col, label in enumerate(tree.classes_.tolist()):
                votes[:, class_pos[label]] += proba[:, col]
        return votes / len(self.trees)

    def predict(self, features: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probabilities, axis=1)]
