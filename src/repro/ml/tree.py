"""CART decision tree with Gini impurity (Random-Forest building block)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return 1.0 - float(np.sum(proportions * proportions))


class DecisionTree:
    """Binary-split CART classifier.

    Supports random feature subsampling per split (``max_features``) so the
    same class serves as the base learner of :class:`~repro.ml.RandomForest`.
    """

    def __init__(
        self,
        *,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root: _Node | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must be aligned")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.classes_ = np.unique(labels)
        class_index = {label: idx for idx, label in enumerate(self.classes_.tolist())}
        encoded = np.array([class_index[label] for label in labels.tolist()])
        rng = np.random.default_rng(self.seed)
        self.root = self._grow(features, encoded, depth=0, rng=rng)
        return self

    def _class_counts(self, encoded: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return np.bincount(encoded, minlength=len(self.classes_)).astype(np.float64)

    def _grow(
        self,
        features: np.ndarray,
        encoded: np.ndarray,
        *,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        counts = self._class_counts(encoded)
        node = _Node(counts=counts)
        n_samples, n_features = features.shape
        if (
            depth >= self.max_depth
            or n_samples < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node

        n_candidates = self.max_features or n_features
        n_candidates = min(n_candidates, n_features)
        candidates = rng.choice(n_features, size=n_candidates, replace=False)

        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0
        parent_impurity = _gini(counts)
        for feature in candidates:
            column = features[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            # Midpoints between consecutive unique values, subsampled when
            # the column is high-cardinality to bound split-search cost.
            midpoints = (values[:-1] + values[1:]) / 2.0
            if len(midpoints) > 16:
                midpoints = midpoints[
                    np.linspace(0, len(midpoints) - 1, 16).astype(int)
                ]
            for threshold in midpoints:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_counts = self._class_counts(encoded[mask])
                right_counts = counts - left_counts
                gain = parent_impurity - (
                    n_left / n_samples * _gini(left_counts)
                    + n_right / n_samples * _gini(right_counts)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = float(threshold)

        if best_feature < 0:
            return node

        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(features[mask], encoded[mask], depth=depth + 1, rng=rng)
        node.right = self._grow(
            features[~mask], encoded[~mask], depth=depth + 1, rng=rng
        )
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.root is None or self.classes_ is None:
            raise RuntimeError("DecisionTree.fit() must be called first")
        features = np.asarray(features, dtype=np.float64)
        probabilities = np.zeros((features.shape[0], len(self.classes_)))
        for row in range(features.shape[0]):
            node = self.root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                if features[row, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            total = node.counts.sum()
            probabilities[row] = node.counts / total if total else node.counts
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probabilities, axis=1)]

    def depth(self) -> int:
        """Actual depth of the grown tree (root = depth 0)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)
