"""Evaluation metrics used by the paper.

Pair-wise experiments report precision, recall and F1 *for the match class*
(Tables 3 and 4); multi-class experiments report micro-F1 (Table 5); the
label-quality study (Section 4) reports inter-annotator agreement as
Cohen's kappa.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PRF1",
    "confusion_counts",
    "precision_recall_f1",
    "micro_f1",
    "macro_f1",
    "cohen_kappa",
]


@dataclass(frozen=True)
class PRF1:
    """Precision/recall/F1 triple for the positive (match) class."""

    precision: float
    recall: float
    f1: float

    def as_percentages(self) -> "PRF1":
        return PRF1(self.precision * 100.0, self.recall * 100.0, self.f1 * 100.0)


def confusion_counts(
    y_true: Sequence[int], y_pred: Sequence[int], *, positive: int = 1
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` for the ``positive`` label."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must be aligned")
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    tp = int(np.sum((true == positive) & (pred == positive)))
    fp = int(np.sum((true != positive) & (pred == positive)))
    fn = int(np.sum((true == positive) & (pred != positive)))
    tn = int(np.sum((true != positive) & (pred != positive)))
    return tp, fp, fn, tn


def precision_recall_f1(
    y_true: Sequence[int], y_pred: Sequence[int], *, positive: int = 1
) -> PRF1:
    """Precision/recall/F1 of the positive class; zero-safe.

    >>> precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0]).f1
    0.5
    """
    tp, fp, fn, _ = confusion_counts(y_true, y_pred, positive=positive)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0.0:
        return PRF1(precision, recall, 0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return PRF1(precision, recall, f1)


def micro_f1(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Micro-averaged F1 for multi-class single-label prediction.

    With every example carrying exactly one gold and one predicted label,
    micro-F1 equals accuracy — which is how Table 5 reports multi-class
    matching performance.
    """
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must be aligned")
    if not len(y_true):
        return 0.0
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    return float(np.mean(true == pred))


def macro_f1(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Macro-averaged F1 over all classes appearing in gold or prediction."""
    labels = sorted(set(np.asarray(y_true).tolist()) | set(np.asarray(y_pred).tolist()))
    if not labels:
        return 0.0
    scores = [precision_recall_f1(y_true, y_pred, positive=label).f1 for label in labels]
    return float(np.mean(scores))


def cohen_kappa(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Cohen's kappa agreement between two annotators.

    >>> round(cohen_kappa([1, 1, 0, 0], [1, 1, 0, 0]), 3)
    1.0
    """
    if len(labels_a) != len(labels_b):
        raise ValueError("annotator label lists must be aligned")
    if not len(labels_a):
        raise ValueError("cannot compute kappa on empty annotations")
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    categories = sorted(set(a.tolist()) | set(b.tolist()))
    n = len(a)
    observed = float(np.mean(a == b))
    expected = 0.0
    for category in categories:
        expected += float(np.mean(a == category)) * float(np.mean(b == category))
    if expected >= 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)
