"""Linear SVMs trained with hinge-loss SGD (Pegasos-style).

The Word-(Co)Occurrence baseline of Section 5.1 feeds binary co-occurrence
features to a LinearSVM.  ``LinearSVM`` is the binary estimator;
``MulticlassLinearSVM`` wraps it one-vs-rest for the multi-class
formulation of the benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM", "MulticlassLinearSVM"]


class LinearSVM:
    """Binary linear SVM with L2 regularization.

    Optimized with mini-batch sub-gradient descent on the hinge loss using
    the Pegasos step-size schedule ``eta_t = 1 / (lambda * t)``.  Supports
    class weighting so the heavily imbalanced pair-wise training sets
    (1 positive : 4 negatives) do not collapse to the majority class.
    """

    def __init__(
        self,
        *,
        reg_lambda: float = 1e-4,
        epochs: int = 20,
        batch_size: int = 64,
        positive_weight: float = 1.0,
        seed: int = 0,
    ) -> None:
        if reg_lambda <= 0:
            raise ValueError("reg_lambda must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.reg_lambda = reg_lambda
        self.epochs = epochs
        self.batch_size = batch_size
        self.positive_weight = positive_weight
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on ``features`` (n, d) and binary ``labels`` in {0, 1}."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must be aligned")
        signs = np.where(labels > 0, 1.0, -1.0)
        sample_weights = np.where(labels > 0, self.positive_weight, 1.0)

        n_samples, n_features = features.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features, dtype=np.float64)
        bias = 0.0
        step = 0
        batch = max(1, min(self.batch_size, n_samples))
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                step += 1
                idx = order[start : start + batch]
                x = features[idx]
                y = signs[idx]
                w = sample_weights[idx]
                margins = y * (x @ weights + bias)
                active = margins < 1.0
                eta = 1.0 / (self.reg_lambda * step)
                grad_w = self.reg_lambda * weights
                grad_b = 0.0
                if np.any(active):
                    coeff = (w[active] * y[active]) / len(idx)
                    grad_w = grad_w - coeff @ x[active]
                    grad_b = -float(np.sum(coeff))
                weights = weights - eta * grad_w
                bias = bias - eta * grad_b
                # Pegasos projection keeps ||w|| bounded for stability.
                norm = np.linalg.norm(weights)
                radius = 1.0 / np.sqrt(self.reg_lambda)
                if norm > radius:
                    weights *= radius / norm
        self.weights = weights
        self.bias = bias
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("LinearSVM.fit() must be called first")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict binary labels in {0, 1}."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)


class MulticlassLinearSVM:
    """One-vs-rest linear SVM for multi-class entity recognition.

    Trains all per-class scorers jointly as a weight *matrix* with the same
    Pegasos updates, which is dramatically faster than fitting hundreds of
    independent binary models for the 500-class benchmark.
    """

    def __init__(
        self,
        *,
        reg_lambda: float = 1e-4,
        epochs: int = 25,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        self.reg_lambda = reg_lambda
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.weights: np.ndarray | None = None  # (d, C)
        self.bias: np.ndarray | None = None  # (C,)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MulticlassLinearSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        class_index = {label: idx for idx, label in enumerate(self.classes_.tolist())}
        n_samples, n_features = features.shape
        n_classes = len(self.classes_)

        # +1 for the true class, -1 for all others.
        signs = -np.ones((n_samples, n_classes), dtype=np.float64)
        for row, label in enumerate(labels.tolist()):
            signs[row, class_index[label]] = 1.0

        rng = np.random.default_rng(self.seed)
        weights = np.zeros((n_features, n_classes), dtype=np.float64)
        bias = np.zeros(n_classes, dtype=np.float64)
        step = 0
        batch = max(1, min(self.batch_size, n_samples))
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                step += 1
                idx = order[start : start + batch]
                x = features[idx]
                y = signs[idx]
                margins = y * (x @ weights + bias)
                active = (margins < 1.0).astype(np.float64)
                eta = 1.0 / (self.reg_lambda * step)
                coeff = (active * y) / len(idx)  # (b, C)
                grad_w = self.reg_lambda * weights - x.T @ coeff
                grad_b = -coeff.sum(axis=0)
                weights = weights - eta * grad_w
                bias = bias - eta * grad_b
        self.weights = weights
        self.bias = bias
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None or self.bias is None or self.classes_ is None:
            raise RuntimeError("MulticlassLinearSVM.fit() must be called first")
        features = np.asarray(features, dtype=np.float64)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(scores, axis=1)]
