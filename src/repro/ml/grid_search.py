"""Grid search over estimator hyper-parameters.

Both symbolic baselines in Section 5.1 are tuned with "a grid search over
various parameter combinations"; ``GridSearch`` provides that, scoring each
combination on a held-out validation set (the benchmark always ships fixed
validation splits, so no cross-validation is needed).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ml.metrics import precision_recall_f1

__all__ = ["GridSearch"]

EstimatorFactory = Callable[..., Any]
Scorer = Callable[[np.ndarray, np.ndarray], float]


def _f1_scorer(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return precision_recall_f1(y_true, y_pred).f1


@dataclass
class GridSearch:
    """Exhaustive search over a parameter grid with validation-set scoring.

    ``factory`` is called with each combination of keyword arguments from
    ``param_grid``; the resulting estimator must expose ``fit`` and
    ``predict``.
    """

    factory: EstimatorFactory
    param_grid: Mapping[str, Sequence[Any]]
    scorer: Scorer = _f1_scorer
    best_params: dict[str, Any] = field(default_factory=dict)
    best_score: float = float("-inf")
    best_estimator: Any = None
    history: list[tuple[dict[str, Any], float]] = field(default_factory=list)

    def fit(
        self,
        train_features: np.ndarray,
        train_labels: np.ndarray,
        valid_features: np.ndarray,
        valid_labels: np.ndarray,
    ) -> "GridSearch":
        names = list(self.param_grid.keys())
        value_lists = [list(self.param_grid[name]) for name in names]
        if not names:
            combinations: list[tuple[Any, ...]] = [()]
        else:
            combinations = list(itertools.product(*value_lists))

        self.history = []
        for combination in combinations:
            params = dict(zip(names, combination))
            estimator = self.factory(**params)
            estimator.fit(train_features, train_labels)
            predictions = estimator.predict(valid_features)
            score = self.scorer(np.asarray(valid_labels), np.asarray(predictions))
            self.history.append((params, score))
            if score > self.best_score:
                self.best_score = score
                self.best_params = params
                self.best_estimator = estimator
        if self.best_estimator is None:
            raise RuntimeError("grid search evaluated no parameter combinations")
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.best_estimator is None:
            raise RuntimeError("GridSearch.fit() must be called first")
        return self.best_estimator.predict(features)
