"""Deduplication and short-offer removal (§3.2).

"We concatenate the attributes title, description, and brand and drop any
duplicate rows on this combined attribute, keeping only the first
occurrence.  Finally, we remove all product offers where the title
attribute contains less than five tokens."
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.corpus.schema import ProductOffer
from repro.text.tokenize import tokenize

__all__ = ["dedup_key", "deduplicate_offers", "remove_short_offers"]

_MIN_TITLE_TOKENS = 5


def dedup_key(offer: ProductOffer) -> str:
    """Concatenated title + description + brand, the paper's dedup key."""
    return "\x1f".join(
        (offer.title or "", offer.description or "", offer.brand or "")
    )


def deduplicate_offers(offers: Iterable[ProductOffer]) -> list[ProductOffer]:
    """Drop duplicate rows on the combined attribute, keeping the first."""
    seen: set[str] = set()
    kept: list[ProductOffer] = []
    for offer in offers:
        key = dedup_key(offer)
        if key in seen:
            continue
        seen.add(key)
        kept.append(offer)
    return kept


def remove_short_offers(
    offers: Iterable[ProductOffer], *, min_tokens: int = _MIN_TITLE_TOKENS
) -> list[ProductOffer]:
    """Keep offers whose title has at least ``min_tokens`` word tokens."""
    return [offer for offer in offers if len(tokenize(offer.title)) >= min_tokens]
