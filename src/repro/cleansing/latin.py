"""Non-Latin character filtering (second language-cleansing step, §3.2).

The paper keeps offers containing fewer than four non-Latin characters —
tolerating the occasional non-Latin glyph inside model names and branding
while removing titles written in non-Latin scripts.

Counting is prefiltered with one C-level regex scan: codepoints below
U+0250 (Basic Latin through Latin Extended-B) can never count, so the
per-character Unicode-name classification — cached per distinct codepoint —
only ever runs on the rare candidates a text actually contains.
"""

from __future__ import annotations

import re
import unicodedata
from functools import lru_cache

from repro.corpus.schema import ProductOffer

__all__ = ["count_non_latin_characters", "keep_latin_offer"]

_DEFAULT_THRESHOLD = 4

# Any character that could possibly be non-Latin: everything above the
# Latin Extended-B block.  The regex scan finds candidates in C; the
# classification below then decides each distinct candidate once.
_CANDIDATE_RE = re.compile("[ɐ-\U0010FFFF]")


@lru_cache(maxsize=16384)
def _is_non_latin(char: str) -> bool:
    """Alphabetic characters outside the Latin script count as non-Latin."""
    if not char.isalpha():
        return False
    if ord(char) < 0x250:  # Basic Latin + Latin-1 + Latin Extended A/B
        return False
    try:
        return "LATIN" not in unicodedata.name(char)
    except ValueError:  # unnamed codepoint
        return True


def count_non_latin_characters(text: str) -> int:
    """Number of non-Latin alphabetic characters in ``text``.

    >>> count_non_latin_characters("SanDisk Ultra 64GB")
    0
    >>> count_non_latin_characters("жесткий диск")
    11
    """
    return sum(_is_non_latin(char) for char in _CANDIDATE_RE.findall(text))


def keep_latin_offer(
    offer: ProductOffer, *, threshold: int = _DEFAULT_THRESHOLD
) -> bool:
    """True when the offer has fewer than ``threshold`` non-Latin chars."""
    return count_non_latin_characters(offer.combined_text()) < threshold
