"""Orchestration of the four cleansing stages with a per-stage report."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cleansing.dedup import deduplicate_offers, remove_short_offers
from repro.cleansing.language import CharNgramLanguageIdentifier, default_identifier
from repro.cleansing.latin import keep_latin_offer
from repro.cleansing.outliers import find_cluster_outliers
from repro.corpus.schema import SyntheticCorpus
from repro.utils.timer import Timer

__all__ = ["CleansingPipeline", "CleansingReport"]


@dataclass
class CleansingReport:
    """Offer counts before/after each stage (the Figure 2 funnel)."""

    input_offers: int = 0
    after_language: int = 0
    after_latin: int = 0
    after_dedup: int = 0
    after_short_removal: int = 0
    after_outlier_removal: int = 0
    stage_removed: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def rows(self) -> list[tuple[str, int]]:
        """Stage/count rows for reporting."""
        return [
            ("input", self.input_offers),
            ("language identification", self.after_language),
            ("non-latin filter", self.after_latin),
            ("deduplication", self.after_dedup),
            ("short-title removal", self.after_short_removal),
            ("outlier removal", self.after_outlier_removal),
        ]


class CleansingPipeline:
    """Applies the Section 3.2 stages in order and records the funnel.

    The language stage scores the whole corpus through the identifier's
    batched NB kernel and both text filters reduce to boolean masks over
    an object array of offers; per-stage wall-clock goes to
    ``report.stage_seconds`` (surfaced as ``cleansing:*`` rows in the
    build profile).
    """

    def __init__(
        self,
        *,
        language_identifier: CharNgramLanguageIdentifier | None = None,
        language_margin: float = 4.0,
        min_title_tokens: int = 5,
        non_latin_threshold: int = 4,
        outlier_max_rare_fraction: float = 0.6,
    ) -> None:
        if language_identifier is None:
            # The default identifier is deterministic; share one trained
            # model instead of re-fitting the NB model per pipeline.
            language_identifier = default_identifier()
        self.language_identifier = language_identifier
        # Foreign offers beat English by tens of log-units; brand/model
        # jargon only by a few.  The margin keeps the jargon titles, like
        # fastText's much larger model would.
        self.language_margin = language_margin
        self.min_title_tokens = min_title_tokens
        self.non_latin_threshold = non_latin_threshold
        self.outlier_max_rare_fraction = outlier_max_rare_fraction
        self.report = CleansingReport()

    def run(self, corpus: SyntheticCorpus) -> SyntheticCorpus:
        """Return a cleansed copy of ``corpus`` (input is not mutated)."""
        report = CleansingReport(input_offers=len(corpus))
        offers = np.array(corpus.offers, dtype=object)

        # The first ~200 characters carry ample language signal; truncating
        # keeps the n-gram scoring cheap on long descriptions.
        with Timer() as timer:
            keep = self.language_identifier.is_english_batch(
                [offer.combined_text()[:200] for offer in offers],
                margin=self.language_margin,
            )
            offers = offers[keep]
        report.stage_seconds["language"] = timer.elapsed
        report.after_language = len(offers)
        report.stage_removed["language"] = report.input_offers - len(offers)

        before = len(offers)
        with Timer() as timer:
            keep = np.array(
                [
                    keep_latin_offer(offer, threshold=self.non_latin_threshold)
                    for offer in offers
                ],
                dtype=bool,
            )
            offers = offers[keep]
        report.stage_seconds["latin"] = timer.elapsed
        report.after_latin = len(offers)
        report.stage_removed["latin"] = before - len(offers)

        before = len(offers)
        with Timer() as timer:
            offers = np.array(deduplicate_offers(offers), dtype=object)
        report.stage_seconds["dedup"] = timer.elapsed
        report.after_dedup = len(offers)
        report.stage_removed["dedup"] = before - len(offers)

        before = len(offers)
        with Timer() as timer:
            offers = np.array(
                remove_short_offers(offers, min_tokens=self.min_title_tokens),
                dtype=object,
            )
        report.stage_seconds["short"] = timer.elapsed
        report.after_short_removal = len(offers)
        report.stage_removed["short"] = before - len(offers)

        before = len(offers)
        with Timer() as timer:
            intermediate = corpus.filtered(offers)
            outlier_ids: set[str] = set()
            for cluster in intermediate.clusters():
                for outlier in find_cluster_outliers(
                    cluster, max_rare_fraction=self.outlier_max_rare_fraction
                ):
                    outlier_ids.add(outlier.offer_id)
            keep = np.array(
                [offer.offer_id not in outlier_ids for offer in offers], dtype=bool
            )
            kept = list(offers[keep])
        report.stage_seconds["outliers"] = timer.elapsed
        report.after_outlier_removal = len(kept)
        report.stage_removed["outliers"] = before - len(kept)

        self.report = report
        return corpus.filtered(kept)
