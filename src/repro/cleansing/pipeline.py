"""Orchestration of the four cleansing stages with a per-stage report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cleansing.dedup import deduplicate_offers, remove_short_offers
from repro.cleansing.language import CharNgramLanguageIdentifier
from repro.cleansing.latin import keep_latin_offer
from repro.cleansing.outliers import find_cluster_outliers
from repro.corpus.schema import SyntheticCorpus

__all__ = ["CleansingPipeline", "CleansingReport"]


@dataclass
class CleansingReport:
    """Offer counts before/after each stage (the Figure 2 funnel)."""

    input_offers: int = 0
    after_language: int = 0
    after_latin: int = 0
    after_dedup: int = 0
    after_short_removal: int = 0
    after_outlier_removal: int = 0
    stage_removed: dict[str, int] = field(default_factory=dict)

    def rows(self) -> list[tuple[str, int]]:
        """Stage/count rows for reporting."""
        return [
            ("input", self.input_offers),
            ("language identification", self.after_language),
            ("non-latin filter", self.after_latin),
            ("deduplication", self.after_dedup),
            ("short-title removal", self.after_short_removal),
            ("outlier removal", self.after_outlier_removal),
        ]


class CleansingPipeline:
    """Applies the Section 3.2 stages in order and records the funnel."""

    def __init__(
        self,
        *,
        language_identifier: CharNgramLanguageIdentifier | None = None,
        language_margin: float = 4.0,
        min_title_tokens: int = 5,
        non_latin_threshold: int = 4,
        outlier_max_rare_fraction: float = 0.6,
    ) -> None:
        if language_identifier is None:
            language_identifier = CharNgramLanguageIdentifier().train()
        self.language_identifier = language_identifier
        # Foreign offers beat English by tens of log-units; brand/model
        # jargon only by a few.  The margin keeps the jargon titles, like
        # fastText's much larger model would.
        self.language_margin = language_margin
        self.min_title_tokens = min_title_tokens
        self.non_latin_threshold = non_latin_threshold
        self.outlier_max_rare_fraction = outlier_max_rare_fraction
        self.report = CleansingReport()

    def run(self, corpus: SyntheticCorpus) -> SyntheticCorpus:
        """Return a cleansed copy of ``corpus`` (input is not mutated)."""
        report = CleansingReport(input_offers=len(corpus))

        # The first ~200 characters carry ample language signal; truncating
        # keeps the n-gram scoring cheap on long descriptions.
        offers = [
            offer
            for offer in corpus.offers
            if self.language_identifier.is_english(
                offer.combined_text()[:200], margin=self.language_margin
            )
        ]
        report.after_language = len(offers)
        report.stage_removed["language"] = report.input_offers - len(offers)

        before = len(offers)
        offers = [
            offer
            for offer in offers
            if keep_latin_offer(offer, threshold=self.non_latin_threshold)
        ]
        report.after_latin = len(offers)
        report.stage_removed["latin"] = before - len(offers)

        before = len(offers)
        offers = deduplicate_offers(offers)
        report.after_dedup = len(offers)
        report.stage_removed["dedup"] = before - len(offers)

        before = len(offers)
        offers = remove_short_offers(offers, min_tokens=self.min_title_tokens)
        report.after_short_removal = len(offers)
        report.stage_removed["short"] = before - len(offers)

        before = len(offers)
        intermediate = corpus.filtered(offers)
        outlier_ids: set[str] = set()
        for cluster in intermediate.clusters():
            for outlier in find_cluster_outliers(
                cluster, max_rare_fraction=self.outlier_max_rare_fraction
            ):
                outlier_ids.add(outlier.offer_id)
        offers = [offer for offer in offers if offer.offer_id not in outlier_ids]
        report.after_outlier_removal = len(offers)
        report.stage_removed["outliers"] = before - len(offers)

        self.report = report
        return corpus.filtered(offers)
