"""The Section 3.2 cleansing pipeline.

Four stages, applied in the paper's order:

1. language identification on ``title + description`` (fastText stand-in),
2. non-Latin character filtering (keep offers with < 4 non-Latin chars),
3. deduplication on ``title + description + brand`` and removal of offers
   whose title has fewer than five tokens,
4. intra-cluster outlier removal via title word-occurrence statistics.
"""

from repro.cleansing.language import CharNgramLanguageIdentifier, default_identifier
from repro.cleansing.latin import count_non_latin_characters, keep_latin_offer
from repro.cleansing.dedup import dedup_key, deduplicate_offers, remove_short_offers
from repro.cleansing.outliers import find_cluster_outliers
from repro.cleansing.pipeline import CleansingPipeline, CleansingReport

__all__ = [
    "CharNgramLanguageIdentifier",
    "default_identifier",
    "count_non_latin_characters",
    "keep_latin_offer",
    "dedup_key",
    "deduplicate_offers",
    "remove_short_offers",
    "find_cluster_outliers",
    "CleansingPipeline",
    "CleansingReport",
]
