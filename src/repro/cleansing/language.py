"""Character n-gram Naive-Bayes language identification.

The paper applies fastText's language-identification model to the
concatenation of title and description and keeps rows whose top language is
English.  This module trains a multinomial Naive-Bayes classifier over
character 1-3-grams from built-in seed vocabulary for English plus the four
foreign languages the synthetic corpus injects — the same decision function
(argmax language score) at a fraction of the model size.

Scoring is vectorized: training materializes a ``(vocab x languages)``
log-likelihood matrix, and :meth:`CharNgramLanguageIdentifier.scores_batch`
reduces a whole corpus to one sparse n-gram count matrix times that matrix
(out-of-vocabulary n-grams contribute a per-language default, counted once
per text).  Per-word n-gram extraction is memoized — corpus text repeats
the same words endlessly, so each distinct word is featurized once.
"""

from __future__ import annotations

import math
import threading
from collections import Counter

import numpy as np
from scipy.sparse import csr_matrix

from repro.corpus.multilingual import FOREIGN_WORD_BANKS
from repro.text.tokenize import char_ngrams

__all__ = [
    "CharNgramLanguageIdentifier",
    "ENGLISH_SEED_WORDS",
    "default_identifier",
]

# Commerce-flavoured English seed vocabulary; mirrors the domain the
# classifier is applied to (offer titles and descriptions).
ENGLISH_SEED_WORDS: tuple[str, ...] = (
    "the", "and", "with", "for", "from", "this", "that", "your", "our",
    "free", "shipping", "warranty", "new", "used", "condition", "offer",
    "price", "fast", "quality", "excellent", "performance", "memory",
    "drive", "screen", "buy", "now", "available", "in", "stock", "original",
    "packaging", "delivery", "includes", "features", "compatible", "high",
    "speed", "wireless", "professional", "portable", "digital", "premium",
    "storage", "battery", "camera", "display", "monitor", "keyboard",
    "laptop", "phone", "watch", "shoes", "running", "coffee", "machine",
    "router", "cartridge", "headphones", "card", "graphics", "hard",
    "internal", "external", "edition", "gaming", "black", "white", "blue",
    "series", "model", "brand", "genuine", "replacement", "upgrade", "home",
    "office", "work", "day", "year", "best", "top", "great", "perfect",
)


class CharNgramLanguageIdentifier:
    """Multinomial NB over character n-grams with Laplace smoothing."""

    def __init__(self, *, ngram_sizes: tuple[int, ...] = (1, 2, 3), alpha: float = 0.5):
        self.ngram_sizes = ngram_sizes
        self.alpha = alpha
        self._log_priors: dict[str, float] = {}
        self._log_likelihoods: dict[str, dict[str, float]] = {}
        self._default_log_likelihood: dict[str, float] = {}
        self._trained = False
        # Vectorized model (built by train()): feature -> column, the
        # (vocab x languages) log-likelihood matrix, per-language defaults
        # and priors.  Scoring caches one summed (languages,) vector per
        # distinct *word* — corpus text repeats words endlessly, so the
        # n-gram extraction for a word runs once, ever.
        self._languages: tuple[str, ...] = ()
        self._feature_index: dict[str, int] = {}
        self._loglik_matrix: np.ndarray | None = None
        self._default_row: np.ndarray | None = None
        self._prior_row: np.ndarray | None = None
        self._word_ids: dict[str, int] = {}
        self._word_vectors: list[np.ndarray] = []
        # Guards id assignment and matrix snapshots so a trained instance
        # (notably the shared default identifier) is safe to score from
        # concurrent threads.  Reads of already-published ids stay lock-free.
        self._word_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _features(self, text: str) -> list[str]:
        features: list[str] = []
        for word in text.lower().split():
            for size in self.ngram_sizes:
                features.extend(char_ngrams(word, size=size))
        return features

    def train(self, documents: dict[str, list[str]] | None = None) -> "CharNgramLanguageIdentifier":
        """Fit on ``{language: [word, ...]}``; defaults to built-in banks.

        Training mass is balanced across languages (word lists are
        upsampled to the same n-gram count) and priors are uniform, so
        out-of-vocabulary n-grams — ubiquitous in brand and model tokens —
        are *neutral* evidence instead of systematically favouring the
        language with the smallest seed bank.
        """
        if documents is None:
            documents = {"en": list(ENGLISH_SEED_WORDS)}
            for language, bank in FOREIGN_WORD_BANKS.items():
                documents[language] = list(bank)

        raw_counts: dict[str, Counter[str]] = {}
        vocabulary: set[str] = set()
        for language, words in documents.items():
            counter: Counter[str] = Counter()
            for word in words:
                counter.update(self._features(word))
            raw_counts[language] = counter
            vocabulary.update(counter)
        vocab_size = max(len(vocabulary), 1)

        # Balance: scale each language's counts to the largest total mass.
        max_mass = max(sum(counter.values()) for counter in raw_counts.values())
        self._log_priors = {language: 0.0 for language in documents}
        self._log_likelihoods = {}
        self._default_log_likelihood = {}
        for language, counter in raw_counts.items():
            total = sum(counter.values())
            scale = max_mass / total if total else 1.0
            denominator = max_mass + self.alpha * vocab_size
            self._log_likelihoods[language] = {
                feature: math.log((count * scale + self.alpha) / denominator)
                for feature, count in counter.items()
            }
            self._default_log_likelihood[language] = math.log(
                self.alpha / denominator
            )

        # Materialize the dense (vocab x languages) model for batch scoring.
        self._languages = tuple(documents)
        self._feature_index = {
            feature: column for column, feature in enumerate(sorted(vocabulary))
        }
        matrix = np.empty((len(self._feature_index), len(self._languages)))
        self._default_row = np.empty(len(self._languages))
        self._prior_row = np.empty(len(self._languages))
        for col, language in enumerate(self._languages):
            likelihoods = self._log_likelihoods[language]
            default = self._default_log_likelihood[language]
            self._default_row[col] = default
            self._prior_row[col] = self._log_priors[language]
            column = np.full(len(self._feature_index), default)
            for feature, value in likelihoods.items():
                column[self._feature_index[feature]] = value
            matrix[:, col] = column
        self._loglik_matrix = matrix
        # Retraining invalidates the published word-vector cache; take the
        # lock so concurrent scorers never observe ids from the old model
        # paired with vectors from the new one.
        with self._word_lock:
            self._word_ids = {}
            self._word_vectors = []
        self._trained = True
        return self

    @property
    def languages(self) -> tuple[str, ...]:
        return self._languages

    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("CharNgramLanguageIdentifier.train() must be called")

    def _word_id(self, word: str) -> int:
        """Id of ``word``'s cached per-language log-likelihood vector.

        The vector is the sum of the word's n-gram likelihood rows plus the
        default row for its out-of-vocabulary n-grams — everything the word
        ever contributes to a text score, collapsed to ``len(languages)``
        floats.
        """
        cached = self._word_ids.get(word)
        if cached is None:
            assert self._loglik_matrix is not None
            columns = []
            out_of_vocabulary = 0
            for size in self.ngram_sizes:
                for feature in char_ngrams(word, size=size):
                    column = self._feature_index.get(feature)
                    if column is None:
                        out_of_vocabulary += 1
                    else:
                        columns.append(column)
            if columns:
                vector = self._loglik_matrix[columns].sum(axis=0)
            else:
                vector = np.zeros(len(self._languages))
            if out_of_vocabulary:
                vector = vector + out_of_vocabulary * self._default_row
            with self._word_lock:
                cached = self._word_ids.get(word)
                if cached is None:
                    cached = len(self._word_vectors)
                    self._word_vectors.append(vector)
                    self._word_ids[word] = cached
        return cached

    # ------------------------------------------------------------------ #
    def scores(self, text: str) -> dict[str, float]:
        """Per-language log-probability scores for ``text`` (reference).

        Sums likelihoods feature by feature; the batched path regroups the
        same terms through a matrix product, so the two agree to floating-
        point reassociation error (~1e-12 relative), not bit-for-bit.
        """
        self._require_trained()
        features = self._features(text)
        result: dict[str, float] = {}
        for language, log_prior in self._log_priors.items():
            likelihoods = self._log_likelihoods[language]
            default = self._default_log_likelihood[language]
            score = log_prior
            for feature in features:
                score += likelihoods.get(feature, default)
            result[language] = score
        return result

    def scores_batch(self, texts: list[str]) -> np.ndarray:
        """``(len(texts), len(self.languages))`` log-probability scores.

        One sparse text-word count matrix times the cached
        (words x languages) per-word score matrix: the n-gram likelihood
        sums (including OOV defaults) are folded into each distinct word's
        vector once, so repeated vocabulary costs one dict lookup.
        """
        self._require_trained()
        n = len(texts)
        rows: list[int] = []
        word_columns: list[int] = []
        word_id = self._word_id
        for row, text in enumerate(texts):
            words = text.lower().split()
            if not words:
                continue
            rows.extend([row] * len(words))
            word_columns.extend(word_id(word) for word in words)
        with self._word_lock:  # consistent (id space, matrix) snapshot
            n_words = len(self._word_vectors)
            word_matrix = (
                np.array(self._word_vectors)
                if n_words
                else np.zeros((1, len(self._languages)))
            )
        counts = csr_matrix(
            (
                np.ones(len(rows)),
                (np.array(rows, dtype=np.intp), np.array(word_columns, dtype=np.intp)),
            ),
            shape=(n, max(n_words, 1)),
            dtype=np.float64,
        )
        return np.asarray(counts @ word_matrix) + self._prior_row[None, :]

    def predict(self, text: str) -> str:
        """Language with the highest score; English wins exact ties.

        An all-out-of-vocabulary text (pure brand/model jargon) scores every
        language identically; resolving that tie toward English mirrors the
        precision of the much larger fastText model on such titles.
        """
        scores = self.scores(text)
        best = max(scores.values())
        if scores.get("en", float("-inf")) >= best:
            return "en"
        return min(scores, key=lambda language: (-scores[language], language))

    def is_english(self, text: str, *, margin: float = 0.0) -> bool:
        """The paper's keep-criterion: classifier confidence highest for en.

        ``margin`` (in log-probability units) lets a caller require foreign
        evidence to *beat* English by a gap before discarding an offer.
        """
        if not text.strip():
            return False
        scores = self.scores(text)
        english = scores.get("en", float("-inf"))
        best_foreign = max(
            (score for language, score in scores.items() if language != "en"),
            default=float("-inf"),
        )
        return english >= best_foreign - margin

    def is_english_batch(self, texts: list[str], *, margin: float = 0.0) -> np.ndarray:
        """Vectorized :meth:`is_english` over ``texts`` (boolean mask)."""
        self._require_trained()
        keep = np.zeros(len(texts), dtype=bool)
        nonblank = [row for row, text in enumerate(texts) if text.strip()]
        if not nonblank:
            return keep
        scores = self.scores_batch([texts[row] for row in nonblank])
        if "en" in self._languages:
            english = scores[:, self._languages.index("en")]
        else:
            english = np.full(len(nonblank), -np.inf)
        foreign_columns = [
            col for col, language in enumerate(self._languages) if language != "en"
        ]
        if foreign_columns:
            best_foreign = scores[:, foreign_columns].max(axis=1)
        else:
            best_foreign = np.full(len(nonblank), -np.inf)
        keep[nonblank] = english >= best_foreign - margin
        return keep


_DEFAULT_IDENTIFIER: CharNgramLanguageIdentifier | None = None
_DEFAULT_IDENTIFIER_LOCK = threading.Lock()


def default_identifier() -> CharNgramLanguageIdentifier:
    """The shared identifier trained on the built-in seed banks.

    Training the NB model is deterministic and scoring is thread-safe (the
    per-word vector cache publishes ids under a lock), so every
    :class:`CleansingPipeline` shares one instance instead of re-fitting
    per construction — and the cache warms across pipelines.
    """
    global _DEFAULT_IDENTIFIER
    if _DEFAULT_IDENTIFIER is None:
        with _DEFAULT_IDENTIFIER_LOCK:
            if _DEFAULT_IDENTIFIER is None:
                _DEFAULT_IDENTIFIER = CharNgramLanguageIdentifier().train()
    return _DEFAULT_IDENTIFIER
