"""Character n-gram Naive-Bayes language identification.

The paper applies fastText's language-identification model to the
concatenation of title and description and keeps rows whose top language is
English.  This module trains a multinomial Naive-Bayes classifier over
character 1-3-grams from built-in seed vocabulary for English plus the four
foreign languages the synthetic corpus injects — the same decision function
(argmax language score) at a fraction of the model size.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.corpus.multilingual import FOREIGN_WORD_BANKS
from repro.text.tokenize import char_ngrams

__all__ = ["CharNgramLanguageIdentifier", "ENGLISH_SEED_WORDS"]

# Commerce-flavoured English seed vocabulary; mirrors the domain the
# classifier is applied to (offer titles and descriptions).
ENGLISH_SEED_WORDS: tuple[str, ...] = (
    "the", "and", "with", "for", "from", "this", "that", "your", "our",
    "free", "shipping", "warranty", "new", "used", "condition", "offer",
    "price", "fast", "quality", "excellent", "performance", "memory",
    "drive", "screen", "buy", "now", "available", "in", "stock", "original",
    "packaging", "delivery", "includes", "features", "compatible", "high",
    "speed", "wireless", "professional", "portable", "digital", "premium",
    "storage", "battery", "camera", "display", "monitor", "keyboard",
    "laptop", "phone", "watch", "shoes", "running", "coffee", "machine",
    "router", "cartridge", "headphones", "card", "graphics", "hard",
    "internal", "external", "edition", "gaming", "black", "white", "blue",
    "series", "model", "brand", "genuine", "replacement", "upgrade", "home",
    "office", "work", "day", "year", "best", "top", "great", "perfect",
)


class CharNgramLanguageIdentifier:
    """Multinomial NB over character n-grams with Laplace smoothing."""

    def __init__(self, *, ngram_sizes: tuple[int, ...] = (1, 2, 3), alpha: float = 0.5):
        self.ngram_sizes = ngram_sizes
        self.alpha = alpha
        self._log_priors: dict[str, float] = {}
        self._log_likelihoods: dict[str, dict[str, float]] = {}
        self._default_log_likelihood: dict[str, float] = {}
        self._trained = False

    # ------------------------------------------------------------------ #
    def _features(self, text: str) -> list[str]:
        features: list[str] = []
        for word in text.lower().split():
            for size in self.ngram_sizes:
                features.extend(char_ngrams(word, size=size))
        return features

    def train(self, documents: dict[str, list[str]] | None = None) -> "CharNgramLanguageIdentifier":
        """Fit on ``{language: [word, ...]}``; defaults to built-in banks.

        Training mass is balanced across languages (word lists are
        upsampled to the same n-gram count) and priors are uniform, so
        out-of-vocabulary n-grams — ubiquitous in brand and model tokens —
        are *neutral* evidence instead of systematically favouring the
        language with the smallest seed bank.
        """
        if documents is None:
            documents = {"en": list(ENGLISH_SEED_WORDS)}
            for language, bank in FOREIGN_WORD_BANKS.items():
                documents[language] = list(bank)

        raw_counts: dict[str, Counter[str]] = {}
        vocabulary: set[str] = set()
        for language, words in documents.items():
            counter: Counter[str] = Counter()
            for word in words:
                counter.update(self._features(word))
            raw_counts[language] = counter
            vocabulary.update(counter)
        vocab_size = max(len(vocabulary), 1)

        # Balance: scale each language's counts to the largest total mass.
        max_mass = max(sum(counter.values()) for counter in raw_counts.values())
        self._log_priors = {language: 0.0 for language in documents}
        self._log_likelihoods = {}
        self._default_log_likelihood = {}
        for language, counter in raw_counts.items():
            total = sum(counter.values())
            scale = max_mass / total if total else 1.0
            denominator = max_mass + self.alpha * vocab_size
            self._log_likelihoods[language] = {
                feature: math.log((count * scale + self.alpha) / denominator)
                for feature, count in counter.items()
            }
            self._default_log_likelihood[language] = math.log(
                self.alpha / denominator
            )
        self._trained = True
        return self

    def scores(self, text: str) -> dict[str, float]:
        """Per-language log-probability scores for ``text``."""
        if not self._trained:
            raise RuntimeError("CharNgramLanguageIdentifier.train() must be called")
        features = self._features(text)
        result: dict[str, float] = {}
        for language, log_prior in self._log_priors.items():
            likelihoods = self._log_likelihoods[language]
            default = self._default_log_likelihood[language]
            score = log_prior
            for feature in features:
                score += likelihoods.get(feature, default)
            result[language] = score
        return result

    def predict(self, text: str) -> str:
        """Language with the highest score; English wins exact ties.

        An all-out-of-vocabulary text (pure brand/model jargon) scores every
        language identically; resolving that tie toward English mirrors the
        precision of the much larger fastText model on such titles.
        """
        scores = self.scores(text)
        best = max(scores.values())
        if scores.get("en", float("-inf")) >= best:
            return "en"
        return min(scores, key=lambda language: (-scores[language], language))

    def is_english(self, text: str, *, margin: float = 0.0) -> bool:
        """The paper's keep-criterion: classifier confidence highest for en.

        ``margin`` (in log-probability units) lets a caller require foreign
        evidence to *beat* English by a gap before discarding an offer.
        """
        if not text.strip():
            return False
        scores = self.scores(text)
        english = scores.get("en", float("-inf"))
        best_foreign = max(
            (score for language, score in scores.items() if language != "en"),
            default=float("-inf"),
        )
        return english >= best_foreign - margin
