"""Intra-cluster outlier removal via word-occurrence statistics (§3.2).

"We scan each cluster's offers and keep track of general title length while
building a dictionary of word counts across offers' titles.  We expect any
offer containing very unique words compared to all others in the cluster to
be noisy non-matching product offers."

An offer is flagged when the *fraction of its title tokens that are rare
inside the cluster* (appearing in at most one offer) exceeds a threshold.
Vendor-specific marketing words make some rare tokens normal, so the
threshold is deliberately permissive; it targets offers whose vocabulary is
mostly foreign to the cluster — which is exactly what a wrong-identifier
offer looks like.
"""

from __future__ import annotations

from collections import Counter

from repro.corpus.schema import ProductCluster, ProductOffer
from repro.text.tokenize import tokenize

__all__ = ["find_cluster_outliers"]


def find_cluster_outliers(
    cluster: ProductCluster,
    *,
    rare_document_frequency: int = 1,
    max_rare_fraction: float = 0.6,
    min_cluster_size: int = 3,
) -> list[ProductOffer]:
    """Return the offers of ``cluster`` considered noisy outliers.

    A token is *rare* when it appears in at most ``rare_document_frequency``
    offers of the cluster; an offer is an outlier when more than
    ``max_rare_fraction`` of its title tokens are rare.  Clusters smaller
    than ``min_cluster_size`` are left untouched (no statistics to rely on).
    """
    if len(cluster) < min_cluster_size:
        return []

    token_document_frequency: Counter[str] = Counter()
    tokenized: list[list[str]] = []
    for offer in cluster.offers:
        tokens = tokenize(offer.title)
        tokenized.append(tokens)
        token_document_frequency.update(set(tokens))

    outliers: list[ProductOffer] = []
    for offer, tokens in zip(cluster.offers, tokenized):
        if not tokens:
            outliers.append(offer)
            continue
        rare = sum(
            token_document_frequency[token] <= rare_document_frequency
            for token in tokens
        )
        if rare / len(tokens) > max_rare_fraction:
            outliers.append(offer)
    return outliers
