"""Word and subword vocabularies.

``Vocabulary`` is a plain word-level vocabulary used for word-occurrence
features and for the Table 2 vocabulary statistics.  ``SubwordTokenizer`` is
a greedy longest-match subword tokenizer standing in for RoBERTa's BPE
vocabulary: it learns frequent character merges from a corpus and encodes
unseen words as sequences of known subword pieces, which is the property the
neural matchers rely on (no out-of-vocabulary blowup on unseen products).
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable

from repro.text.tokenize import tokenize

__all__ = ["Vocabulary", "SubwordTokenizer"]

_DIGIT_LETTER_BOUNDARY = re.compile(r"(?<=\d)(?=[a-z])|(?<=[a-z])(?=\d)")


def _split_subword_units(word: str) -> list[str]:
    """Split a word at digit/letter boundaries (``2tb`` -> ``2``, ``tb``).

    Mirrors how byte-pair vocabularies treat glued number+unit tokens and —
    crucially for entity matching — makes ``2TB`` and ``2 TB`` tokenize
    identically, so exact-token attention can align them.
    """
    return [part for part in _DIGIT_LETTER_BOUNDARY.split(word) if part]


class Vocabulary:
    """A bidirectional token <-> id mapping with reserved special tokens."""

    PAD = "<pad>"
    UNK = "<unk>"
    CLS = "<cls>"
    SEP = "<sep>"
    SPECIALS = (PAD, UNK, CLS, SEP)

    def __init__(self, tokens: Iterable[str] = (), *, include_specials: bool = True):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        if include_specials:
            for special in self.SPECIALS:
                self.add(special)
        for token in tokens:
            self.add(token)

    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        *,
        min_count: int = 1,
        max_size: int | None = None,
        include_specials: bool = True,
    ) -> "Vocabulary":
        """Build a vocabulary from raw texts, most frequent tokens first."""
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(tokenize(text))
        ranked = [
            token
            for token, count in counts.most_common()
            if count >= min_count
        ]
        if max_size is not None:
            reserved = len(cls.SPECIALS) if include_specials else 0
            ranked = ranked[: max(0, max_size - reserved)]
        return cls(ranked, include_specials=include_specials)

    def add(self, token: str) -> int:
        """Insert ``token`` if absent and return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, falling back to ``<unk>``."""
        unk = self._token_to_id.get(self.UNK, 0)
        return self._token_to_id.get(token, unk)

    def token_of(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def encode(self, text: str) -> list[int]:
        return [self.id_of(token) for token in tokenize(text)]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterable[str]:
        return iter(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[self.CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.SEP]


class SubwordTokenizer:
    """Greedy longest-match subword tokenizer (BPE-style stand-in).

    Training collects the most frequent words and the most frequent
    character n-grams (lengths 2..``max_piece_len``); encoding splits each
    word greedily into the longest known pieces, guaranteeing full coverage
    via single-character fallback pieces.
    """

    def __init__(
        self,
        *,
        vocab_size: int = 4096,
        max_piece_len: int = 6,
    ) -> None:
        if vocab_size < 64:
            raise ValueError("vocab_size too small to hold fallback pieces")
        self.vocab_size = vocab_size
        self.max_piece_len = max_piece_len
        self.vocab = Vocabulary()
        self._pieces: set[str] = set()
        self._trained = False

    def train(self, texts: Iterable[str]) -> "SubwordTokenizer":
        """Learn the piece inventory from ``texts``."""
        word_counts: Counter[str] = Counter()
        for text in texts:
            for token in tokenize(text):
                word_counts.update(_split_subword_units(token))

        piece_counts: Counter[str] = Counter()
        char_counts: Counter[str] = Counter()
        for word, count in word_counts.items():
            for char in word:
                char_counts[char] += count
            for size in range(2, self.max_piece_len + 1):
                for start in range(0, len(word) - size + 1):
                    piece_counts[word[start : start + size]] += count

        # Single characters are mandatory fallbacks; whole frequent words and
        # frequent n-grams fill the remaining budget.
        budget = self.vocab_size - len(Vocabulary.SPECIALS)
        selected: list[str] = [char for char, _ in char_counts.most_common()]
        remaining = budget - len(selected)
        if remaining > 0:
            frequent_words = [
                word
                for word, count in word_counts.most_common(remaining // 2)
                if count >= 2 and len(word) <= self.max_piece_len * 2
            ]
            selected.extend(frequent_words)
            remaining = budget - len(set(selected))
        if remaining > 0:
            for piece, _ in piece_counts.most_common():
                if piece not in self._pieces and piece not in selected:
                    selected.append(piece)
                    remaining -= 1
                    if remaining <= 0:
                        break

        self.vocab = Vocabulary()
        for piece in selected[:budget]:
            self.vocab.add(piece)
        self._pieces = {piece for piece in self.vocab if piece not in Vocabulary.SPECIALS}
        self._trained = True
        return self

    def encode_word(self, word: str) -> list[int]:
        """Greedy longest-match split of a single word into piece ids.

        Digit/letter boundaries are always split first so surface variants
        like ``2tb`` and ``2 tb`` map to the same piece sequence.
        """
        self._require_trained()
        ids: list[int] = []
        longest = max(self.max_piece_len * 2, 1)
        for unit in _split_subword_units(word):
            position = 0
            while position < len(unit):
                matched = None
                for end in range(min(len(unit), position + longest), position, -1):
                    candidate = unit[position:end]
                    if candidate in self._pieces:
                        matched = candidate
                        break
                if matched is None:
                    ids.append(self.vocab.unk_id)
                    position += 1
                else:
                    ids.append(self.vocab.id_of(matched))
                    position += len(matched)
        return ids

    def encode(self, text: str, *, max_length: int | None = None) -> list[int]:
        """Encode ``text`` into piece ids (no special tokens added)."""
        self._require_trained()
        ids: list[int] = []
        for word in tokenize(text):
            ids.extend(self.encode_word(word))
            if max_length is not None and len(ids) >= max_length:
                return ids[:max_length]
        return ids

    def encode_pair(
        self, left: str, right: str, *, max_length: int = 64
    ) -> list[int]:
        """Encode ``[CLS] left [SEP] right`` truncated to ``max_length``.

        Both sides get an equal token budget, mirroring how pair-wise
        Transformer matchers serialize two entity descriptions.
        """
        self._require_trained()
        budget = max_length - 3  # cls + two sep
        half = max(1, budget // 2)
        left_ids = self.encode(left, max_length=half)
        right_ids = self.encode(right, max_length=budget - len(left_ids))
        ids = [self.vocab.cls_id, *left_ids, self.vocab.sep_id, *right_ids]
        ids.append(self.vocab.sep_id)
        return ids[:max_length]

    @property
    def pad_id(self) -> int:
        return self.vocab.pad_id

    def __len__(self) -> int:
        return len(self.vocab)

    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("SubwordTokenizer.train() must be called first")
