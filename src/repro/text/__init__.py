"""Text processing substrate: tokenization, vocabularies and vectorizers.

This package stands in for the text stack the paper uses implicitly
(whitespace/punctuation tokenization for the symbolic metrics, RoBERTa's
subword vocabulary for the neural matchers, and binary word-occurrence
features for DBSCAN grouping and the Word-(Co)Occurrence baseline).
"""

from repro.text.tokenize import normalize_text, tokenize, word_shingles
from repro.text.vocabulary import SubwordTokenizer, Vocabulary
from repro.text.vectorize import (
    BinaryBowVectorizer,
    HashingVectorizer,
    TfidfVectorizer,
)

__all__ = [
    "normalize_text",
    "tokenize",
    "word_shingles",
    "Vocabulary",
    "SubwordTokenizer",
    "BinaryBowVectorizer",
    "HashingVectorizer",
    "TfidfVectorizer",
]
