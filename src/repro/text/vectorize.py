"""Vector-space representations of offer texts.

``BinaryBowVectorizer`` reproduces the "simple binary word occurrence after
lower-casing and removing tags and punctuation" feature space the paper uses
for DBSCAN grouping (Section 3.3) and for the Word-(Co)Occurrence baseline
(Section 5.1).  ``HashingVectorizer`` provides a fixed-width alternative
that needs no fitted vocabulary, and ``TfidfVectorizer`` supports the
embedding model and similarity search.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.text.tokenize import tokenize
from repro.text.vocabulary import Vocabulary

__all__ = ["BinaryBowVectorizer", "HashingVectorizer", "TfidfVectorizer"]


class BinaryBowVectorizer:
    """Binary bag-of-words features over a fitted word vocabulary."""

    def __init__(self, *, min_count: int = 1, max_size: int | None = None):
        self.min_count = min_count
        self.max_size = max_size
        self.vocabulary: Vocabulary | None = None

    def fit(self, texts: Iterable[str]) -> "BinaryBowVectorizer":
        self.vocabulary = Vocabulary.from_texts(
            texts,
            min_count=self.min_count,
            max_size=self.max_size,
            include_specials=False,
        )
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Return a dense ``(len(texts), |V|)`` float32 binary matrix."""
        vocab = self._require_fitted()
        matrix = np.zeros((len(texts), len(vocab)), dtype=np.float32)
        lookup = {token: idx for idx, token in enumerate(vocab)}
        for row, text in enumerate(texts):
            for token in tokenize(text):
                col = lookup.get(token)
                if col is not None:
                    matrix[row, col] = 1.0
        return matrix

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)

    def _require_fitted(self) -> Vocabulary:
        if self.vocabulary is None:
            raise RuntimeError("BinaryBowVectorizer.fit() must be called first")
        return self.vocabulary


class HashingVectorizer:
    """Stateless binary feature hashing into ``n_features`` buckets.

    Word co-occurrence features for arbitrary pairs can be computed without
    a fitted vocabulary, which keeps the Word-(Co)Occurrence baseline usable
    on unseen entities.
    """

    def __init__(self, n_features: int = 4096, *, seed: int = 17):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = n_features
        self.seed = seed

    def _bucket(self, token: str) -> int:
        # FNV-1a keeps hashing deterministic across processes (unlike hash()).
        value = 2166136261 ^ self.seed
        for byte in token.encode("utf-8"):
            value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
        return value % self.n_features

    def token_buckets(self, tokens: Sequence[str]) -> np.ndarray:
        """Bucket index of each token — the vocabulary-level hashing pass
        used by the batched featurizers to hash each distinct token once."""
        return np.array([self._bucket(token) for token in tokens], dtype=np.intp)

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        matrix = np.zeros((len(texts), self.n_features), dtype=np.float32)
        for row, text in enumerate(texts):
            for token in tokenize(text):
                matrix[row, self._bucket(token)] = 1.0
        return matrix

    def transform_pair_cooccurrence(
        self, left_texts: Sequence[str], right_texts: Sequence[str]
    ) -> np.ndarray:
        """Binary word *co-occurrence* features for aligned text pairs.

        A bucket is set when the underlying token appears in *both* sides of
        the pair — the feature input of the pair-wise Word-Cooc baseline.
        """
        if len(left_texts) != len(right_texts):
            raise ValueError("left and right text lists must be aligned")
        left = self.transform(left_texts)
        right = self.transform(right_texts)
        return left * right


class TfidfVectorizer:
    """TF-IDF weighting with smooth inverse document frequency."""

    def __init__(self, *, min_count: int = 1, max_size: int | None = None):
        self.min_count = min_count
        self.max_size = max_size
        self.vocabulary: Vocabulary | None = None
        self.idf: np.ndarray | None = None

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        self.vocabulary = Vocabulary.from_texts(
            texts,
            min_count=self.min_count,
            max_size=self.max_size,
            include_specials=False,
        )
        lookup = {token: idx for idx, token in enumerate(self.vocabulary)}
        doc_freq = np.zeros(len(self.vocabulary), dtype=np.float64)
        for text in texts:
            for token in sorted(set(tokenize(text))):
                col = lookup.get(token)
                if col is not None:
                    doc_freq[col] += 1.0
        n_docs = max(len(texts), 1)
        self.idf = np.log((1.0 + n_docs) / (1.0 + doc_freq)) + 1.0
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        if self.vocabulary is None or self.idf is None:
            raise RuntimeError("TfidfVectorizer.fit() must be called first")
        lookup = {token: idx for idx, token in enumerate(self.vocabulary)}
        matrix = np.zeros((len(texts), len(self.vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            for token in tokenize(text):
                col = lookup.get(token)
                if col is not None:
                    matrix[row, col] += 1.0
        matrix *= self.idf
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return (matrix / norms).astype(np.float32)

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)
