"""Tokenization helpers shared by the whole pipeline.

The paper lower-cases text and strips tags and punctuation before building
binary word-occurrence features (Section 3.3) and computing the token-based
similarity metrics (Section 3.4).  ``normalize_text`` and ``tokenize``
implement exactly that behaviour.
"""

from __future__ import annotations

import re

__all__ = ["normalize_text", "tokenize", "word_shingles", "char_ngrams"]

_TAG_RE = re.compile(r"<[^>]+>")
_PUNCT_RE = re.compile(r"[^\w\s]", re.UNICODE)
_WS_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Lower-case ``text``, strip HTML-ish tags and punctuation.

    >>> normalize_text("SanDisk <b>Ultra</b> 64GB, microSDXC!")
    'sandisk ultra 64gb microsdxc'
    """
    text = _TAG_RE.sub(" ", text)
    text = text.lower()
    text = _PUNCT_RE.sub(" ", text)
    return _WS_RE.sub(" ", text).strip()


def tokenize(text: str) -> list[str]:
    """Split normalized ``text`` into word tokens.

    >>> tokenize("WD Blue 2TB - 7200RPM")
    ['wd', 'blue', '2tb', '7200rpm']
    """
    normalized = normalize_text(text)
    if not normalized:
        return []
    return normalized.split(" ")


def word_shingles(tokens: list[str], size: int = 2) -> list[str]:
    """Return contiguous word shingles (n-grams over tokens).

    >>> word_shingles(["wd", "blue", "2tb"], size=2)
    ['wd blue', 'blue 2tb']
    """
    if size <= 0:
        raise ValueError(f"shingle size must be positive, got {size}")
    if len(tokens) < size:
        return []
    return [" ".join(tokens[i : i + size]) for i in range(len(tokens) - size + 1)]


def char_ngrams(text: str, size: int = 3, pad: bool = True) -> list[str]:
    """Return character n-grams, optionally padded with boundary markers.

    Padding mirrors what fastText-style models do for subword features and
    what the language identifier uses as evidence.

    >>> char_ngrams("ab", size=3)
    ['^ab', 'ab$']
    """
    if size <= 0:
        raise ValueError(f"ngram size must be positive, got {size}")
    if pad:
        text = "^" + text + "$"
    if len(text) < size:
        return [text] if text else []
    return [text[i : i + size] for i in range(len(text) - size + 1)]
