"""Character-based edit similarity metrics.

Used by the Magellan baseline (attribute-type-aware feature generation)
and by Generalized Jaccard's soft token matching.
"""

from __future__ import annotations

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
]


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs).

    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner loop for memory locality.
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, char_left in enumerate(left, start=1):
        current = [i]
        for j, char_right in enumerate(right, start=1):
            cost = 0 if char_left == char_right else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalized into a ``[0, 1]`` similarity."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity with the standard match-window definition."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)

    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        stop = min(i + window + 1, len(right))
        for j in range(start, stop):
            if right_matched[j] or right[j] != char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, char in enumerate(left):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if char != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, *, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    jaro = jaro_similarity(left, right)
    prefix = 0
    for char_left, char_right in zip(left, right):
        if char_left != char_right or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
