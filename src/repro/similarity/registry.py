"""The alternating similarity-metric registry of Section 3.4.

"For each corner-case selection, we randomly draw from a set of similarity
metrics to reduce selection bias."  ``SimilarityRegistry`` holds the four
metrics (Cosine, Dice, Generalized Jaccard, embedding) and hands out a
randomly chosen one per call.  Scoring is delegated to
:class:`~repro.similarity.engine.SimilarityEngine`: the builder path keeps
one corpus-level engine and passes drawn metric *names* to it, while the
registry's own convenience helpers (``rank_candidates`` / ``most_similar``
/ ``pairwise_scores``) build a throwaway engine over their arguments so
that even ad-hoc callers score through vectorized kernels instead of
per-pair Python loops.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.similarity.embedding import LsaEmbeddingModel
from repro.similarity.engine import SimilarityEngine
from repro.similarity.token_based import (
    cosine_similarity,
    dice_similarity,
    generalized_jaccard_similarity,
)

__all__ = ["SimilarityMetric", "SimilarityRegistry", "validate_metric_names"]

ScoreFn = Callable[[str, str], float]


def validate_metric_names(
    metrics: Sequence[str],
    *,
    available: Sequence[str] = SimilarityEngine.METRICS,
    context: str = "metrics",
) -> tuple[str, ...]:
    """Fail fast on metric names the engine/registry cannot score.

    Config objects call this at construction time so a typo'd metric name
    raises immediately — naming the unknown metric and the available ones —
    instead of failing deep inside the blocking stage.  Returns the
    validated names as a tuple.
    """
    names = tuple(metrics)
    if not names:
        raise ValueError(f"{context} must name at least one similarity metric")
    for name in names:
        if name not in available:
            raise ValueError(
                f"unknown similarity metric {name!r} in {context}; "
                f"available: {', '.join(available)}"
            )
    return names


@dataclass(frozen=True)
class SimilarityMetric:
    """A named title-to-title similarity function."""

    name: str
    score: ScoreFn

    def __call__(self, left: str, right: str) -> float:
        return self.score(left, right)

    # Per-pair fallbacks for metrics the engine has no kernel for.  Every
    # consumer shares these so custom metrics keep the engine's exact
    # tie-breaking: descending score, then ascending candidate position.
    def rank(
        self, query: str, candidates: Sequence[str]
    ) -> list[tuple[int, float]]:
        scores = [
            (position, self(query, candidate))
            for position, candidate in enumerate(candidates)
        ]
        scores.sort(key=lambda item: (-item[1], item[0]))
        return scores

    def pairwise(self, titles: Sequence[str]) -> np.ndarray:
        n = len(titles)
        matrix = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            matrix[i, i] = 1.0
            for j in range(i + 1, n):
                score = self(titles[i], titles[j])
                matrix[i, j] = score
                matrix[j, i] = score
        return matrix


class SimilarityRegistry:
    """Randomly alternating pool of similarity metrics.

    The embedding metric is optional: without a fitted
    :class:`LsaEmbeddingModel` the registry alternates between the three
    symbolic metrics only.
    """

    def __init__(
        self,
        *,
        embedding_model: LsaEmbeddingModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.embedding_model = embedding_model
        self.metrics: list[SimilarityMetric] = [
            SimilarityMetric("cosine", cosine_similarity),
            SimilarityMetric("dice", dice_similarity),
            SimilarityMetric("generalized_jaccard", generalized_jaccard_similarity),
        ]
        if embedding_model is not None:
            self.metrics.append(
                SimilarityMetric("lsa_embedding", embedding_model.similarity)
            )

    @property
    def names(self) -> list[str]:
        return [metric.name for metric in self.metrics]

    def draw(self) -> SimilarityMetric:
        """Randomly draw one metric (uniformly) from the pool."""
        index = int(self.rng.integers(len(self.metrics)))
        return self.metrics[index]

    def engine_for(self, titles: Sequence[str]) -> SimilarityEngine:
        """A throwaway engine over ``titles`` carrying this registry's model."""
        return SimilarityEngine(titles, embedding_model=self.embedding_model)

    def rank_candidates(
        self,
        query: str,
        candidates: Sequence[str],
        *,
        metric: SimilarityMetric | None = None,
    ) -> list[tuple[int, float]]:
        """Rank candidate titles by descending similarity to ``query``.

        Returns ``(candidate_index, score)`` pairs.  If ``metric`` is None a
        random metric is drawn, mirroring the paper's alternating selection.
        """
        chosen = metric if metric is not None else self.draw()
        if chosen.name not in SimilarityEngine.METRICS:
            # Custom metrics carry only a per-pair callable.
            return chosen.rank(query, candidates)
        # Embed only when the drawn metric actually needs the vectors.
        model = self.embedding_model if chosen.name == "lsa_embedding" else None
        engine = SimilarityEngine([query, *candidates], embedding_model=model)
        ranked = engine.rank(0, range(1, len(engine)), chosen.name)
        return [(position, score) for position, score in ranked]

    def most_similar(
        self,
        query: str,
        candidates: Sequence[str],
        *,
        top_k: int = 1,
        metric: SimilarityMetric | None = None,
    ) -> list[int]:
        """Indices of the ``top_k`` most similar candidates to ``query``."""
        ranked = self.rank_candidates(query, candidates, metric=metric)
        return [idx for idx, _ in ranked[:top_k]]

    def pairwise_scores(
        self, titles: Sequence[str], *, metric: SimilarityMetric
    ) -> np.ndarray:
        """Full symmetric similarity matrix for ``titles`` under ``metric``."""
        if metric.name not in SimilarityEngine.METRICS:
            return metric.pairwise(titles)
        model = self.embedding_model if metric.name == "lsa_embedding" else None
        engine = SimilarityEngine(titles, embedding_model=model)
        return engine.pairwise_matrix(range(len(engine)), metric.name)
