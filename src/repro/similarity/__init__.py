"""String and embedding similarity metrics (py_stringmatching + fastText stand-in).

Section 3.4 of the paper selects corner-cases by "randomly alternating
between the most similar examples on the product title according to a
variety of similarity metrics: Cosine, DICE and Generalized Jaccard ...
and a fastText embedding model".  ``repro.similarity`` implements those
metrics, several character-based metrics used by the Magellan baseline, an
LSA embedding model replacing fastText, and the alternating
``SimilarityRegistry`` that prevents selection bias toward one metric.
"""

from repro.similarity.token_based import (
    cosine_similarity,
    dice_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.similarity.character_based import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.embedding import LsaEmbeddingModel
from repro.similarity.engine import SimilarityEngine
from repro.similarity.index import TitleSimilaritySearch
from repro.similarity.registry import SimilarityMetric, SimilarityRegistry
from repro.similarity.signatures import (
    SIGNATURE_SAFE_METRICS,
    RowSignatures,
    global_token_order,
    length_window,
    overlap_lower_bound,
    prefix_lengths,
)

__all__ = [
    "cosine_similarity",
    "dice_similarity",
    "generalized_jaccard_similarity",
    "jaccard_similarity",
    "overlap_coefficient",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "LsaEmbeddingModel",
    "SimilarityEngine",
    "SimilarityMetric",
    "SimilarityRegistry",
    "TitleSimilaritySearch",
    "RowSignatures",
    "SIGNATURE_SAFE_METRICS",
    "global_token_order",
    "length_window",
    "overlap_lower_bound",
    "prefix_lengths",
]
