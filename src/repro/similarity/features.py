"""Batched featurization kernels shared by the matcher stack.

The Section-5 matchers historically scored every pair with scalar metric
functions — quadratic Python-call overhead on top of work that is, per
pair, a handful of arithmetic operations.  This module provides the
corpus-level counterpart of :class:`~repro.similarity.engine.SimilarityEngine`
for *pair-shaped* workloads:

* :class:`AttributeView` — a sparse token-incidence view over one textual
  attribute (title, description, brand, a serialized offer, …).  All
  token-set metrics of N explicit pairs (Jaccard, cosine, Dice, overlap)
  come out of one sparse row-product per chunk instead of N Python calls,
  and :meth:`AttributeView.hashed_incidence` folds the view's vocabulary
  through a :class:`~repro.text.vectorize.HashingVectorizer` once so binary
  hashed features are a sparse matmul away.
* :func:`levenshtein_similarity_batch` — a chunked NumPy edit-distance DP
  over padded char-code arrays.  The row recurrence's left-to-right
  dependency is resolved with a prefix-minimum scan, so each DP row is one
  vectorized step over the whole batch.
* :func:`jaro_winkler_similarity_batch` — the standard greedy Jaro match
  loop run position-wise across the batch (the per-string inner scan
  becomes a masked argmax), followed by vectorized transposition counting
  and prefix boosting.
* :func:`generalized_jaccard_batch` — Generalized Jaccard with soft token
  matching over N explicit set pairs.  Requested pairs are deduped by
  canonical token-set key, every needed symmetric-difference token pair is
  scored through :func:`jaro_winkler_similarity_batch` in one pass, and
  the greedy threshold matching runs as a masked argmax across all pairs
  at once — the batched replacement for the engine's per-pair rescoring
  loop.  :class:`BoundedPairCache` is its thread-safe, bounded score cache
  (one per corpus, shared by every engine view).

All kernels are drop-in parity replacements for the scalar functions in
``similarity/token_based.py`` and ``similarity/character_based.py``; the
test-suite pins them together at 1e-9.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from itertools import islice

import numpy as np
from scipy.sparse import csr_matrix

from repro.similarity.token_based import DEFAULT_SOFT_THRESHOLD
from repro.text.tokenize import tokenize

__all__ = [
    "AttributeView",
    "BoundedPairCache",
    "TOKEN_METRICS",
    "generalized_jaccard_batch",
    "levenshtein_similarity_batch",
    "jaro_winkler_similarity_batch",
]

TOKEN_METRICS = ("jaccard", "cosine", "dice", "overlap")

_PAIR_CHUNK = 8192  # rows per sparse pair-product block
_CHAR_CHUNK = 2048  # strings per char-kernel DP block
_GREEDY_CELL_BUDGET = 1 << 23  # dense cells per greedy-matching block (~64 MB)


# --------------------------------------------------------------------- #
# Sparse per-attribute token views
# --------------------------------------------------------------------- #
class AttributeView:
    """Sparse token-incidence view over one textual attribute.

    ``texts`` may contain ``None`` for missing values; those rows have an
    empty token set and ``present`` False.  Presence follows the *raw*
    string truthiness (an all-punctuation description is present but
    tokenizes to an empty set), matching the scalar featurizers' branch
    conditions exactly.
    """

    def __init__(self, texts: Sequence[str | None]) -> None:
        self.texts: list[str] = ["" if text is None else text for text in texts]
        self.present = np.array([bool(text) for text in self.texts], dtype=bool)
        token_sets = [set(tokenize(text)) for text in self.texts]
        vocabulary: dict[str, int] = {}
        rows: list[int] = []
        cols: list[int] = []
        for row, tokens in enumerate(token_sets):
            for token in tokens:
                cols.append(vocabulary.setdefault(token, len(vocabulary)))
                rows.append(row)
        self._init_parts(
            token_sets,
            list(vocabulary),
            csr_matrix(
                (np.ones(len(rows)), (rows, cols)),
                shape=(len(self.texts), max(len(vocabulary), 1)),
                dtype=np.float64,
            ),
            np.array([len(tokens) for tokens in token_sets], dtype=np.float64),
        )

    def _init_parts(
        self,
        token_sets: list[set[str]],
        vocabulary: list[str],
        matrix: csr_matrix,
        set_sizes: np.ndarray,
    ) -> None:
        self.token_sets = token_sets
        self._vocabulary = vocabulary
        self._matrix = matrix
        self._set_sizes = set_sizes
        self._hashed: dict[tuple[int, int], csr_matrix] = {}

    @classmethod
    def _from_parts(
        cls,
        texts: list[str],
        present: np.ndarray,
        token_sets: list[set[str]],
        vocabulary: list[str],
        matrix: csr_matrix,
        set_sizes: np.ndarray,
    ) -> "AttributeView":
        view = cls.__new__(cls)
        view.texts = texts
        view.present = present
        view._init_parts(token_sets, vocabulary, matrix, set_sizes)
        return view

    @classmethod
    def over_engine_titles(cls, engine) -> "AttributeView":
        """A view sharing a :class:`SimilarityEngine`'s title precomputation."""
        view = cls.__new__(cls)
        view.texts = list(engine.titles)
        view.present = np.array([bool(text) for text in view.texts], dtype=bool)
        view._init_parts(
            engine.token_sets,
            list(engine.vocabulary),  # insertion order == column order
            engine._matrix,
            engine._set_sizes,
        )
        return view

    def slice(self, rows: np.ndarray) -> "AttributeView":
        """A sub-view over ``rows`` sharing this view's tokenization."""
        rows = np.asarray(rows, dtype=np.intp)
        return AttributeView._from_parts(
            texts=[self.texts[int(i)] for i in rows],
            present=self.present[rows],
            token_sets=[self.token_sets[int(i)] for i in rows],
            vocabulary=self._vocabulary,
            matrix=self._matrix[rows],
            set_sizes=self._set_sizes[rows],
        )

    def __len__(self) -> int:
        return len(self.texts)

    def pair_metrics(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        metrics: Sequence[str] = TOKEN_METRICS,
    ) -> np.ndarray:
        """``(len(pairs), len(metrics))`` token-set scores for explicit pairs.

        Intersection counts come from chunked sparse row products; every
        metric then reduces to elementwise arithmetic on the counts and the
        per-row set sizes.  Empty-set semantics match the scalar metrics:
        Jaccard/Dice of two empty sets is 1.0, cosine/overlap with any
        empty side is 0.0.
        """
        unknown = set(metrics) - set(TOKEN_METRICS)
        if unknown:
            raise ValueError(f"unknown token metrics: {sorted(unknown)!r}")
        rows_a = np.asarray(list(rows_a), dtype=np.intp)
        rows_b = np.asarray(list(rows_b), dtype=np.intp)
        if rows_a.shape != rows_b.shape:
            raise ValueError("rows_a and rows_b must be aligned")
        n = rows_a.size
        out = np.empty((n, len(metrics)), dtype=np.float64)
        for start in range(0, n, _PAIR_CHUNK):
            chunk_a = rows_a[start : start + _PAIR_CHUNK]
            chunk_b = rows_b[start : start + _PAIR_CHUNK]
            left = self._matrix[chunk_a]
            right = self._matrix[chunk_b]
            inter = np.asarray(left.multiply(right).sum(axis=1)).ravel()
            sizes_a = self._set_sizes[chunk_a]
            sizes_b = self._set_sizes[chunk_b]
            both_empty = (sizes_a == 0.0) & (sizes_b == 0.0)
            any_empty = (sizes_a == 0.0) | (sizes_b == 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                for col, metric in enumerate(metrics):
                    if metric == "jaccard":
                        union = sizes_a + sizes_b - inter
                        scores = np.where(
                            both_empty, 1.0, inter / np.maximum(union, 1.0)
                        )
                    elif metric == "cosine":
                        scores = np.where(
                            any_empty,
                            0.0,
                            inter / np.sqrt(np.maximum(sizes_a * sizes_b, 1.0)),
                        )
                    elif metric == "dice":
                        scores = np.where(
                            both_empty,
                            1.0,
                            2.0 * inter / np.maximum(sizes_a + sizes_b, 1.0),
                        )
                    else:  # overlap
                        scores = np.where(
                            any_empty,
                            0.0,
                            inter / np.maximum(np.minimum(sizes_a, sizes_b), 1.0),
                        )
                    out[start : start + _PAIR_CHUNK, col] = scores
        return out

    def hashed_incidence(self, vectorizer) -> csr_matrix:
        """Binary ``(rows, n_features)`` bucket incidence under ``vectorizer``.

        The view's vocabulary is hashed once; the per-row incidence is then
        the sparse product of the token-incidence matrix with the
        (vocab x buckets) selection matrix.  Equals
        ``HashingVectorizer.transform`` row-for-row, cached per
        ``(n_features, seed)``.
        """
        key = (vectorizer.n_features, vectorizer.seed)
        cached = self._hashed.get(key)
        if cached is None:
            n_tokens = len(self._vocabulary)
            buckets = vectorizer.token_buckets(self._vocabulary)
            selector = csr_matrix(
                (np.ones(n_tokens), (np.arange(n_tokens), buckets)),
                shape=(max(n_tokens, 1), vectorizer.n_features),
                dtype=np.float64,
            )
            cached = (self._matrix @ selector).tocsr()
            cached.data = np.ones_like(cached.data)
            self._hashed[key] = cached
        return cached


# --------------------------------------------------------------------- #
# Chunked char-array kernels
# --------------------------------------------------------------------- #
def _encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pad ``strings`` into an int32 code-point matrix (+1 so 0 is padding).

    The whole chunk is encoded as one concatenated UTF-32 buffer and
    scattered into the padded matrix by offset — one ``encode`` per chunk
    instead of one per string.
    """
    lens = np.array([len(s) for s in strings], dtype=np.intp)
    width = max(int(lens.max()) if lens.size else 0, 1)
    codes = np.zeros((len(strings), width), dtype=np.int32)
    joined = "".join(strings)
    if joined:
        flat = (
            np.frombuffer(joined.encode("utf-32-le"), dtype=np.uint32).astype(
                np.int32
            )
            + 1
        )
        offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
        rows = np.repeat(np.arange(len(strings)), lens)
        codes[rows, np.arange(len(joined)) - offsets[rows]] = flat
    return codes, lens


def levenshtein_similarity_batch(
    lefts: Sequence[str], rights: Sequence[str]
) -> np.ndarray:
    """Vectorized ``levenshtein_similarity`` over aligned string pairs.

    The classic DP runs one row per left-hand character, with the row's
    sequential ``current[j-1]`` dependency eliminated analytically:
    ``current[j] = j + min_{k<=j}(candidate[k] - k)`` is a prefix-minimum
    scan, so every row is a constant number of whole-batch NumPy ops.
    """
    if len(lefts) != len(rights):
        raise ValueError("left and right string lists must be aligned")
    n = len(lefts)
    out = np.empty(n, dtype=np.float64)
    for start in range(0, n, _CHAR_CHUNK):
        chunk_l = list(lefts[start : start + _CHAR_CHUNK])
        chunk_r = list(rights[start : start + _CHAR_CHUNK])
        distances = _levenshtein_distance_block(chunk_l, chunk_r)
        longest = np.maximum(
            np.array([len(s) for s in chunk_l], dtype=np.float64),
            np.array([len(s) for s in chunk_r], dtype=np.float64),
        )
        block = np.where(
            longest == 0.0, 1.0, 1.0 - distances / np.maximum(longest, 1.0)
        )
        out[start : start + _CHAR_CHUNK] = block
    return out


def _levenshtein_distance_block(
    lefts: list[str], rights: list[str]
) -> np.ndarray:
    left_codes, left_lens = _encode_strings(lefts)
    right_codes, right_lens = _encode_strings(rights)
    n = left_codes.shape[0]
    width_r = right_codes.shape[1]
    col = np.arange(width_r + 1, dtype=np.int32)
    previous = np.broadcast_to(col, (n, width_r + 1)).copy()
    out = right_lens.astype(np.int32).copy()  # rows with empty left side
    max_len = int(left_lens.max()) if n else 0
    for i in range(1, max_len + 1):
        cost = (right_codes != left_codes[:, i - 1 : i]).astype(np.int32)
        candidate = np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost)
        candidate = np.concatenate(
            [np.full((n, 1), i, dtype=np.int32), candidate], axis=1
        )
        current = np.minimum.accumulate(candidate - col, axis=1) + col
        finished = np.flatnonzero(left_lens == i)
        if finished.size:
            out[finished] = current[finished, right_lens[finished]]
        previous = current
    return out.astype(np.float64)


def jaro_winkler_similarity_batch(
    lefts: Sequence[str],
    rights: Sequence[str],
    *,
    prefix_scale: float = 0.1,
    max_prefix: int = 4,
) -> np.ndarray:
    """Vectorized ``jaro_winkler_similarity`` over aligned string pairs.

    The greedy match loop runs once per left-hand position with the
    per-string window scan expressed as a masked ``argmax`` across the
    batch; transpositions come from compacting matched characters with a
    cumulative-sum scatter.  Identical pairs short-circuit to 1.0 exactly
    like the scalar function (including two empty strings).
    """
    if len(lefts) != len(rights):
        raise ValueError("left and right string lists must be aligned")
    n = len(lefts)
    out = np.empty(n, dtype=np.float64)
    for start in range(0, n, _CHAR_CHUNK):
        chunk_l = list(lefts[start : start + _CHAR_CHUNK])
        chunk_r = list(rights[start : start + _CHAR_CHUNK])
        out[start : start + _CHAR_CHUNK] = _jaro_winkler_block(
            chunk_l, chunk_r, prefix_scale=prefix_scale, max_prefix=max_prefix
        )
    return out


def _jaro_winkler_block(
    lefts: list[str],
    rights: list[str],
    *,
    prefix_scale: float,
    max_prefix: int,
) -> np.ndarray:
    left_codes, left_lens = _encode_strings(lefts)
    right_codes, right_lens = _encode_strings(rights)
    n, width_l = left_codes.shape
    width_r = right_codes.shape[1]

    window = np.maximum(np.maximum(left_lens, right_lens) // 2 - 1, 0)
    left_matched = np.zeros((n, width_l), dtype=bool)
    right_matched = np.zeros((n, width_r), dtype=bool)
    j_index = np.arange(width_r)
    for i in range(width_l):
        candidates = (
            (j_index >= (i - window)[:, None])
            & (j_index < np.minimum(i + window + 1, right_lens)[:, None])
            & ~right_matched
            & (right_codes == left_codes[:, i : i + 1])
            & (left_lens > i)[:, None]
        )
        first = candidates.argmax(axis=1)
        hit_rows = np.flatnonzero(candidates.any(axis=1))
        if hit_rows.size:
            right_matched[hit_rows, first[hit_rows]] = True
            left_matched[hit_rows, i] = True

    matches = left_matched.sum(axis=1)
    max_matches = int(matches.max()) if n else 0
    if max_matches:
        left_compact = _compact_matched(left_codes, left_matched, max_matches)
        right_compact = _compact_matched(right_codes, right_matched, max_matches)
        in_range = np.arange(max_matches) < matches[:, None]
        transpositions = ((left_compact != right_compact) & in_range).sum(axis=1) // 2
    else:
        transpositions = np.zeros(n, dtype=np.intp)

    safe_matches = np.maximum(matches, 1).astype(np.float64)
    jaro = (
        matches / np.maximum(left_lens, 1)
        + matches / np.maximum(right_lens, 1)
        + (matches - transpositions) / safe_matches
    ) / 3.0
    jaro = np.where(matches == 0, 0.0, jaro)
    equal = (left_lens == right_lens) & np.array(
        [left == right for left, right in zip(lefts, rights)]
    )
    jaro = np.where(equal, 1.0, jaro)

    prefix_width = min(max_prefix, width_l, width_r)
    if prefix_width > 0:
        agree = (
            (left_codes[:, :prefix_width] == right_codes[:, :prefix_width])
            & (np.arange(prefix_width) < np.minimum(left_lens, right_lens)[:, None])
        )
        prefix = np.cumprod(agree, axis=1).sum(axis=1)
    else:
        prefix = np.zeros(n, dtype=np.intp)
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _compact_matched(
    codes: np.ndarray, matched: np.ndarray, max_matches: int
) -> np.ndarray:
    """Gather matched char codes left-to-right into a dense (n, max) block."""
    positions = np.cumsum(matched, axis=1) - 1
    out = np.zeros((codes.shape[0], max_matches), dtype=codes.dtype)
    rows, cols = np.nonzero(matched)
    out[rows, positions[rows, cols]] = codes[rows, cols]
    return out


# --------------------------------------------------------------------- #
# Batched Generalized Jaccard
# --------------------------------------------------------------------- #
class BoundedPairCache:
    """Thread-safe bounded LRU cache over canonical ``(lo, hi)`` pair keys.

    One instance belongs to one corpus: keys must be stable across every
    consumer sharing the cache (the engine uses its corpus-global canonical
    token-set ids, which :meth:`SimilarityEngine.view` slices preserve), and
    all cached values must come from the same scoring configuration (the
    engine always scores at the default soft-match threshold).  Eviction is
    least-recently-used, so the hot pairs of concurrent ratio builds stay
    resident while one-off pairs age out.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: dict[tuple[int, int], float] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get_many(
        self, keys: Iterable[tuple[int, int]]
    ) -> dict[tuple[int, int], float]:
        """The cached subset of ``keys``; every hit is marked recently used."""
        hits: dict[tuple[int, int], float] = {}
        with self._lock:
            data = self._data
            for key in keys:
                value = data.get(key)
                if value is not None:
                    del data[key]  # re-insert to refresh recency
                    data[key] = value
                    hits[key] = value
        return hits

    def put_many(
        self, items: Iterable[tuple[tuple[int, int], float]]
    ) -> None:
        with self._lock:
            data = self._data
            for key, value in items:
                data[key] = value
            excess = len(data) - self.capacity
            if excess > 0:
                for key in list(islice(iter(data), excess)):
                    del data[key]

    # The lock is process-local: engines (and their caches) cross process
    # boundaries when shard builds return from worker processes, so pickling
    # ships the cached scores and rebuilds a fresh lock on the other side.
    def __getstate__(self) -> dict:
        with self._lock:
            return {"capacity": self.capacity, "data": dict(self._data)}

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self._data = state["data"]
        self._lock = threading.Lock()


TokenSets = Sequence[str | Iterable[str]]


def _as_token_set(value: str | Iterable[str]) -> set[str]:
    if isinstance(value, str):
        return set(tokenize(value))
    if isinstance(value, set):
        return value
    return set(value)


def generalized_jaccard_batch(
    lefts: TokenSets,
    rights: TokenSets,
    *,
    threshold: float = DEFAULT_SOFT_THRESHOLD,
    keys: tuple[Sequence[int], Sequence[int]] | None = None,
    cache: BoundedPairCache | None = None,
) -> np.ndarray:
    """Vectorized ``generalized_jaccard_similarity`` over aligned pairs.

    ``lefts``/``rights`` hold raw strings (tokenized internally) or
    pre-built token sets.  ``keys`` are optional canonical token-set ids
    per side — rows with equal ids must have equal token sets — which let
    the engine dedupe duplicate titles without re-hashing; without them,
    pairs are canonicalized by frozenset.  Each distinct unordered key
    pair is scored once, through ``cache`` when given (the cache key is
    the canonical pair, so callers must pass corpus-stable ids and a
    consistent ``threshold``).

    The scoring itself batches the paper's soft matching: identical
    tokens are matched outright, every symmetric-difference token pair is
    scored through :func:`jaro_winkler_similarity_batch` in one deduped
    pass, and the greedy descending-score matching runs as a masked
    argmax across all set pairs simultaneously.
    """
    if len(lefts) != len(rights):
        raise ValueError("left and right token-set lists must be aligned")
    sets_l = [_as_token_set(value) for value in lefts]
    sets_r = [_as_token_set(value) for value in rights]
    n = len(sets_l)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out

    if keys is None:
        canon: dict[frozenset, int] = {}
        keys_a = np.array(
            [canon.setdefault(frozenset(s), len(canon)) for s in sets_l],
            dtype=np.intp,
        )
        keys_b = np.array(
            [canon.setdefault(frozenset(s), len(canon)) for s in sets_r],
            dtype=np.intp,
        )
    else:
        keys_a = np.asarray(keys[0], dtype=np.intp)
        keys_b = np.asarray(keys[1], dtype=np.intp)
        if keys_a.shape != (n,) or keys_b.shape != (n,):
            raise ValueError("keys must align with the pair lists")

    sizes_a = np.array([len(s) for s in sets_l], dtype=np.intp)
    sizes_b = np.array([len(s) for s in sets_r], dtype=np.intp)
    both_empty = (sizes_a == 0) & (sizes_b == 0)
    any_empty = (sizes_a == 0) | (sizes_b == 0)
    identical = keys_a == keys_b
    out[any_empty] = 0.0
    out[both_empty] = 1.0
    # Identical non-empty sets match fully at any reachable threshold; a
    # threshold above 1.0 rejects even identical tokens (scalar semantics).
    out[identical & ~any_empty] = 1.0 if threshold <= 1.0 else 0.0

    hard = np.flatnonzero(~identical & ~any_empty)
    if hard.size == 0:
        return out

    # Dedup on canonical unordered key pairs; remember one representative
    # row per distinct pair (its orientation is the one scored, exactly as
    # the scalar cache stored the first-seen orientation).
    slots: dict[tuple[int, int], int] = {}
    slot_of = np.empty(hard.size, dtype=np.intp)
    unique_keys: list[tuple[int, int]] = []
    representatives: list[int] = []
    for position, index in enumerate(hard):
        key_a = int(keys_a[index])
        key_b = int(keys_b[index])
        key = (key_a, key_b) if key_a < key_b else (key_b, key_a)
        slot = slots.get(key)
        if slot is None:
            slot = len(unique_keys)
            slots[key] = slot
            unique_keys.append(key)
            representatives.append(int(index))
        slot_of[position] = slot

    values = np.empty(len(unique_keys), dtype=np.float64)
    if cache is not None:
        cached = cache.get_many(unique_keys)
        missing = [
            slot for slot, key in enumerate(unique_keys) if key not in cached
        ]
        for slot, key in enumerate(unique_keys):
            if key in cached:
                values[slot] = cached[key]
    else:
        missing = list(range(len(unique_keys)))
    if missing:
        computed = _generalized_jaccard_unique(
            [(sets_l[representatives[s]], sets_r[representatives[s]]) for s in missing],
            threshold=threshold,
        )
        values[missing] = computed
        if cache is not None:
            cache.put_many(
                (unique_keys[s], float(score))
                for s, score in zip(missing, computed)
            )
    out[hard] = values[slot_of]
    return out


def _generalized_jaccard_unique(
    set_pairs: list[tuple[set[str], set[str]]], *, threshold: float
) -> np.ndarray:
    """Score distinct, non-trivial (non-empty, non-identical) set pairs.

    Shared tokens are matched outright (only score-1.0 pairs are
    identical-token pairs, and the greedy pass consumes them first), so
    the soft matching is restricted to the symmetric difference — unless
    the threshold exceeds 1.0, where not even identical tokens match and
    the full sets enter the (then fruitless) soft pass.
    """
    n_pairs = len(set_pairs)
    rest_a: list[list[str]] = []
    rest_b: list[list[str]] = []
    mass = np.empty(n_pairs, dtype=np.float64)
    matches = np.empty(n_pairs, dtype=np.intp)
    total_sizes = np.empty(n_pairs, dtype=np.float64)
    for p, (a, b) in enumerate(set_pairs):
        if threshold <= 1.0:
            common = a & b
            rest_a.append(sorted(a - common))
            rest_b.append(sorted(b - common))
            base = len(common)
        else:
            rest_a.append(sorted(a))
            rest_b.append(sorted(b))
            base = 0
        mass[p] = float(base)
        matches[p] = base
        total_sizes[p] = len(a) + len(b)

    len_a = np.array([len(rest) for rest in rest_a], dtype=np.intp)
    len_b = np.array([len(rest) for rest in rest_b], dtype=np.intp)
    counts = len_a * len_b
    total = int(counts.sum())
    if total:
        # Rank-order the token vocabulary so integer order equals the
        # lexicographic order the scalar greedy tie-break uses.
        vocab = sorted(
            {token for rests in (rest_a, rest_b) for rest in rests for token in rest}
        )
        rank = {token: i for i, token in enumerate(vocab)}
        ids_a = np.fromiter(
            (rank[token] for rest in rest_a for token in rest),
            dtype=np.int64,
            count=int(len_a.sum()),
        )
        ids_b = np.fromiter(
            (rank[token] for rest in rest_b for token in rest),
            dtype=np.int64,
            count=int(len_b.sum()),
        )
        offsets_a = np.concatenate(([0], np.cumsum(len_a)[:-1]))
        offsets_b = np.concatenate(([0], np.cumsum(len_b)[:-1]))
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

        # The full cross product rest_a x rest_b of every pair, flattened
        # row-major so index order equals (token_a, token_b) lex order.
        pair_idx = np.repeat(np.arange(n_pairs), counts)
        within = np.arange(total) - starts[pair_idx]
        i_a = within // len_b[pair_idx]
        i_b = within - i_a * len_b[pair_idx]
        left_ids = ids_a[offsets_a[pair_idx] + i_a]
        right_ids = ids_b[offsets_b[pair_idx] + i_b]

        # One Jaro-Winkler pass over the distinct token pairs, canonically
        # ordered (JW is symmetric; ordering doubles the dedup rate).
        n_vocab = len(vocab)
        lo = np.minimum(left_ids, right_ids)
        hi = np.maximum(left_ids, right_ids)
        combos, inverse = np.unique(lo * n_vocab + hi, return_inverse=True)
        pair_scores = jaro_winkler_similarity_batch(
            [vocab[int(i)] for i in combos // n_vocab],
            [vocab[int(i)] for i in combos % n_vocab],
        )
        element_scores = pair_scores[inverse]

        # Greedy threshold matching, one masked argmax per round across a
        # bounded block of set pairs.  Blocks are padded to the chunk-wide
        # max rest sizes, so chunk boundaries follow a dense-cell budget —
        # one pathologically long title cannot inflate the padding of
        # thousands of small pairs into a multi-GB allocation.
        start = 0
        while start < n_pairs:
            stop = start + 1
            max_a = int(len_a[start])
            max_b = int(len_b[start])
            while stop < n_pairs and stop - start < _PAIR_CHUNK:
                next_a = max(max_a, int(len_a[stop]))
                next_b = max(max_b, int(len_b[stop]))
                if (stop - start + 1) * next_a * next_b > _GREEDY_CELL_BUDGET:
                    break
                max_a, max_b = next_a, next_b
                stop += 1
            chunk_total = int(counts[start:stop].sum())
            if chunk_total == 0:
                start = stop
                continue
            element_start = int(starts[start])
            elements = slice(element_start, element_start + chunk_total)
            block = np.full((stop - start, max_a, max_b), -np.inf)
            block[
                pair_idx[elements] - start, i_a[elements], i_b[elements]
            ] = element_scores[elements]
            block[block < threshold] = -np.inf
            flat = block.reshape(stop - start, max_a * max_b)
            row_range = np.arange(stop - start)
            while True:
                best = flat.argmax(axis=1)
                best_scores = flat[row_range, best]
                live = np.flatnonzero(best_scores >= threshold)
                if live.size == 0:
                    break
                chosen = best[live]
                mass[start + live] += best_scores[live]
                matches[start + live] += 1
                block[live, chosen // max_b, :] = -np.inf
                block[live, :, chosen % max_b] = -np.inf
            start = stop
    return mass / (total_sizes - matches)
